#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the Figure 1 hotels document, registers the mock services behind
its embedded calls, and evaluates the Figure 4 query

    /hotels/hotel[name="Best Western"][rating="5"]
           /nearby//restaurant[name=$X][address=$Y][rating="5"]

first naively (materialise everything, then query) and then lazily with
node-focused queries — showing that both agree on the answer while the
lazy evaluator invokes a fraction of the calls.

Run:  python examples/quickstart.py
"""

import repro
from repro import (
    EngineConfig,
    InMemorySink,
    ServiceBus,
    Strategy,
    compare_strategies,
    format_comparison,
    format_trace_profile,
)
from repro.workloads import (
    figure_1_document,
    figure_1_registry,
    figure_1_schema,
    paper_query,
)


def evaluate(strategy: Strategy, trace=None):
    # The one-shot facade: query + document + services in, outcome out.
    # (A pre-built bus is passed so we can inspect its invocation log;
    # a plain list of services or a registry works just as well.)
    bus = ServiceBus(figure_1_registry())
    outcome = repro.evaluate(
        paper_query(),
        figure_1_document(),
        services=bus,
        strategy=strategy,
        schema=figure_1_schema(),
        trace=trace,
    )
    return outcome, bus


def main() -> None:
    query = paper_query()
    print("Document: the paper's Figure 1 (4 hotels, 11 reachable calls)")
    print(f"Query   : {query.to_string()}")
    print()

    for strategy in (Strategy.NAIVE, Strategy.LAZY_NFQ, Strategy.LAZY_NFQ_TYPED):
        outcome, bus = evaluate(strategy)
        print(f"--- {strategy.value} ---")
        print(f"  calls invoked : {outcome.metrics.calls_invoked}")
        print(f"  per service   : {bus.log.calls_by_service()}")
        print(f"  bytes moved   : {outcome.metrics.total_bytes}")
        print(f"  simulated time: {outcome.metrics.simulated_sequential_s:.2f}s "
              f"(parallel rounds: {outcome.metrics.simulated_parallel_s:.2f}s)")
        print("  five-star restaurants near five-star Best Westerns:")
        for name, address in sorted(outcome.value_rows()):
            print(f"    - {name} @ {address}")
        print()

    print(
        "Same answers; the lazy evaluator skipped every call under the\n"
        "hotels that cannot match, and the typed one also skipped the\n"
        "museum services whose output type cannot produce restaurants."
    )

    rows = compare_strategies(
        [
            EngineConfig(strategy=Strategy.NAIVE),
            EngineConfig(strategy=Strategy.TOP_DOWN),
            EngineConfig(strategy=Strategy.LAZY_LPQ),
            EngineConfig(strategy=Strategy.LAZY_NFQ),
            EngineConfig(strategy=Strategy.LAZY_NFQ_TYPED),
        ],
        query,
        document_factory=figure_1_document,
        bus_factory=lambda: ServiceBus(figure_1_registry()),
        schema=figure_1_schema(),
    )
    print()
    print(format_comparison(rows, title="all strategies, side by side"))

    # Where did the time go?  Attach a trace sink and print the
    # per-phase breakdown (wall clock and simulated service clock).
    sink = InMemorySink()
    evaluate(Strategy.LAZY_NFQ, trace=sink)
    print()
    print(format_trace_profile(sink, title="lazy-nfq phase profile"))


if __name__ == "__main__":
    main()
