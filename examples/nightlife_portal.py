#!/usr/bin/env python3
"""The introduction's night-life portal.

"Consider a Web site about your city's night-life ... containing
information about, say, movies and restaurants."  The query asks for the
schedule of *The Hours*; the document's restaurants section is fed by
service calls (a restaurant list whose entries each embed a getMenu
call) that a lazy evaluator must never touch — "there is no point in
invoking any calls found below the path /goingout/restaurants".

Run:  python examples/nightlife_portal.py
"""

from repro import EngineConfig, LazyQueryEvaluator, Strategy
from repro.workloads import NightlifeParams, build_nightlife_workload


def main() -> None:
    workload = build_nightlife_workload(
        NightlifeParams(n_theaters=8, n_restaurants=40, seed=7)
    )
    print(f"Workload: {workload.name}")
    print(f"Query   : {workload.query.to_string()}")
    print()

    for strategy in (Strategy.NAIVE, Strategy.LAZY_NFQ, Strategy.LAZY_NFQ_TYPED):
        bus = workload.make_bus()
        engine = LazyQueryEvaluator(
            bus, schema=workload.schema, config=EngineConfig(strategy=strategy)
        )
        outcome = engine.evaluate(workload.query, workload.make_document())
        services = bus.log.calls_by_service()
        print(f"--- {strategy.value} ---")
        print(f"  services invoked: {services}")
        touched_restaurants = any(
            name in services for name in ("getRestaurantList", "getMenu")
        )
        print(f"  touched the restaurants section: {touched_restaurants}")
        schedules = sorted(
            child.label
            for row in outcome.rows
            for child in row.nodes[0].children
        )
        print(f"  schedules found: {len(schedules)}")
        for schedule in schedules:
            print(f"    - {schedule}")
        print()

    print(
        "The lazy evaluators answered from the movies section alone;\n"
        "with signatures, even the theaters' getReviews calls (which\n"
        "positionally *could* have returned shows) are pruned."
    )


if __name__ == "__main__":
    main()
