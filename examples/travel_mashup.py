#!/usr/bin/env python3
"""A mediator-style travel mash-up with query pushing.

A travel portal aggregates hotel data that arrives *entirely* through
services (the document starts with a single getHotels call), including
nested calls several levels deep.  The scenario exercises:

* dynamic nesting — call results bring new calls (Figure 3's pattern);
* query pushing (Section 7) — the engine ships the restaurant subquery
  with each getNearbyRestos invocation, so only five-star restaurants'
  name/address bindings travel back instead of whole restaurant lists.

Run:  python examples/travel_mashup.py
"""

from repro import (
    C,
    E,
    EngineConfig,
    LazyQueryEvaluator,
    PushMode,
    ServiceBus,
    Strategy,
    V,
    build_document,
)
from repro.workloads import (
    HotelsWorkloadParams,
    build_hotels_workload,
    paper_query,
)


def make_intensional_workload():
    """The hotels workload, but the document is a single call."""
    return build_hotels_workload(
        HotelsWorkloadParams(
            n_hotels=0,
            extra_hotels_via_service=25,
            target_name_fraction=0.4,
            intensional_restos_fraction=1.0,
            restaurants_per_hotel=12,
            five_star_fraction=0.25,
            seed=2024,
        )
    )


def main() -> None:
    workload = make_intensional_workload()
    query = paper_query()
    print("Document: <hotels> with a single embedded getHotels call —")
    print("          every hotel arrives intensionally.")
    print(f"Query   : {query.to_string()}")
    print()

    results = {}
    for push_mode in (PushMode.NONE, PushMode.FILTERED, PushMode.BINDINGS):
        bus = workload.make_bus()
        engine = LazyQueryEvaluator(
            bus,
            schema=workload.schema,
            config=EngineConfig(
                strategy=Strategy.LAZY_NFQ_TYPED, push_mode=push_mode
            ),
        )
        outcome = engine.evaluate(query, workload.make_document())
        results[push_mode] = outcome.value_rows()
        pushed = sum(1 for r in bus.log.records if r.push_mode != "none")
        print(f"--- push mode: {push_mode.value} ---")
        print(f"  calls invoked       : {outcome.metrics.calls_invoked}")
        print(f"  invocations pushed  : {pushed}")
        print(f"  bytes received      : {outcome.metrics.bytes_received}")
        print(f"  result rows         : {len(outcome.rows)}")
        if outcome.overlay is not None:
            print(f"  remote binding rows : {outcome.overlay.row_count}")
        print()

    assert results[PushMode.NONE] == results[PushMode.FILTERED]
    assert results[PushMode.NONE] == results[PushMode.BINDINGS]
    sample = sorted(results[PushMode.BINDINGS])[:5]
    print("Answers agree across push modes.  A few of them:")
    for name, address in sample:
        print(f"  - {name} @ {address}")


if __name__ == "__main__":
    main()
