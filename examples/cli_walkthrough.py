#!/usr/bin/env python3
"""A walkthrough of the ``repro-axml`` command-line interface.

Materialises the Figure 1 world into plain files (document, schema,
declarative service catalogue) in a temporary directory, then drives
the three CLI subcommands the way a shell user would:

    repro-axml validate --document hotels.xml --schema hotels.schema
    repro-axml analyze  --query ... --schema hotels.schema
    repro-axml eval     --document hotels.xml --services services.xml ...

Run:  python examples/cli_walkthrough.py
"""

import tempfile
from pathlib import Path

from repro.axml.xmlio import serialize_document
from repro.cli import main
from repro.workloads import figure_1_document
from repro.workloads.hotels import HOTELS_SCHEMA_TEXT

SERVICES_XML = """<services>
  <service name="getRating" in="data" out="data">
    <case key="22 Madison Av.">2</case>
    <case key="13 Penn St.">5</case>
    <case key="12 34th St. W">5</case>
    <default>3</default>
  </service>
  <service name="getNearbyRestos" in="data" out="restaurant*">
    <case key="75, 2nd Av.">
      <restaurant><name>Jo Mama</name><address>75, 2nd Av.</address>
        <rating>5</rating></restaurant>
      <restaurant><name>In Delis</name><address>2nd Ave.</address>
        <rating>4</rating></restaurant>
    </case>
    <default/>
  </service>
  <service name="getNearbyMuseums" in="data" out="museum*">
    <default><museum><name>City Museum</name>
      <address>Downtown</address></museum></default>
  </service>
  <service name="getHotels" in="data" out="hotel*"><default/></service>
</services>"""

QUERY = (
    '/hotels/hotel[name="Best Western"][rating="5"]'
    '/nearby//restaurant[name=$X][address=$Y][rating="5"]'
)


def run(title: str, argv: list[str]) -> None:
    print(f"\n$ repro-axml {' '.join(argv)}")
    print("-" * 60)
    code = main(argv)
    print(f"(exit code {code})  # {title}")


def main_demo() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "hotels.xml").write_text(
            serialize_document(figure_1_document())
        )
        (root / "hotels.schema").write_text(HOTELS_SCHEMA_TEXT)
        (root / "services.xml").write_text(SERVICES_XML)

        run(
            "check the document against the Figure 2 schema",
            [
                "validate",
                "--document", str(root / "hotels.xml"),
                "--schema", str(root / "hotels.schema"),
            ],
        )
        run(
            "inspect LPQs, NFQs, layers and termination",
            [
                "analyze",
                "--query", QUERY,
                "--schema", str(root / "hotels.schema"),
            ],
        )
        run(
            "lazy evaluation with typed pruning and pushed bindings",
            [
                "eval",
                "--document", str(root / "hotels.xml"),
                "--schema", str(root / "hotels.schema"),
                "--services", str(root / "services.xml"),
                "--strategy", "lazy-nfq-typed",
                "--push", "bindings",
                "--query", QUERY,
                "--save-document", str(root / "rewritten.xml"),
            ],
        )
        print("\nrewritten document (irrelevant calls still intensional):")
        print((root / "rewritten.xml").read_text()[:400] + " ...")


if __name__ == "__main__":
    main_demo()
