#!/usr/bin/env python3
"""A tour of the relevance machinery's internals.

Walks through what the engine does under the hood on the paper's
example: the LPQ family (Section 3.1), the NFQs (Figure 5), the
may-influence relation and layers (Section 4), the F-guide (Section 6.2)
and a step-by-step relevant rewriting.

Run:  python examples/fguide_tour.py
"""

from repro import FGuide, InvocationPolicy, ServiceBus, ServiceCall
from repro.lazy.influence import InfluenceAnalyzer
from repro.lazy.layers import compute_layers
from repro.lazy.relevance import build_nfqs, linear_path_queries
from repro.pattern.match import Matcher
from repro.workloads import (
    figure_1_document,
    figure_1_registry,
    paper_query,
)


def main() -> None:
    query = paper_query()
    document = figure_1_document()

    print(f"Query: {query.to_string()}\n")

    print("1. Linear path queries (Section 3.1):")
    for rq in linear_path_queries(query, dedupe=False):
        print(f"   {rq.pattern.to_string()}")

    nfqs = build_nfqs(query)
    print("\n2. Node-focused queries (Figure 5), after de-duplication:")
    for rq in nfqs:
        print(f"   [{rq.target.render()}] {rq.pattern.to_string()}")

    analyzer = InfluenceAnalyzer(nfqs)
    layers = compute_layers(nfqs, analyzer)
    print("\n3. May-influence layers (Sections 4.2-4.3):")
    targets = {n.uid: n for n in query.nodes()}
    for layer in layers:
        members = ", ".join(
            targets[rq.target_uid].render() for rq in layer.queries
        )
        parallel = "parallel" if layer.fully_parallel else "sequential"
        print(f"   layer {layer.index}: {{{members}}} ({parallel})")

    guide = FGuide(document)
    print(f"\n4. F-guide (Section 6.2): {guide.size()} trie nodes summarise "
          f"{guide.call_count()} calls:")
    for path in guide.paths():
        print(f"   /{'/'.join(path)}")

    print("\n5. A relevant rewriting, one invocation at a time:")
    bus = ServiceBus(figure_1_registry())
    step = 1
    while True:
        relevant = {}
        for rq in nfqs:
            for node in Matcher(rq.pattern).evaluate(document).distinct_nodes():
                relevant[node.node_id] = node
        if not relevant:
            break
        call = relevant[min(relevant)]
        outcome = bus.invoke(
            ServiceCall(
                service=call.label,
                parameters=call.children,
                call_node_id=call.node_id,
            ),
            policy=InvocationPolicy.single_attempt(),
        )
        reply, record = outcome.reply, outcome.record
        document.replace_call(call, reply.forest)
        print(
            f"   step {step}: invoked {call.label} "
            f"({len(relevant)} relevant calls pending, "
            f"{record.response_bytes}B returned)"
        )
        step += 1

    print("\n6. The document is now complete for the query; its snapshot")
    print("   result is the full result:")
    for row in Matcher(query).evaluate(document):
        name, address = row.values()
        print(f"   - {name} @ {address}")
    guide.detach()


if __name__ == "__main__":
    main()
