"""Ready-made mock services for examples, tests and benchmarks."""

from __future__ import annotations

from typing import Optional, Sequence

from ..axml.node import Node
from ..schema.regex import parse_regex
from ..schema.schema import FunctionSignature
from .service import Service


class ServiceFault(RuntimeError):
    """A simulated remote failure (network drop, SOAP fault...)."""


def make_signature(name: str, input_type: str, output_type: str) -> FunctionSignature:
    """Convenience builder using the Figure 2 regex syntax."""
    return FunctionSignature(
        name, parse_regex(input_type), parse_regex(output_type)
    )


def first_value(parameters: Sequence[Node]) -> Optional[str]:
    """The first value leaf found among the parameters (often the key)."""
    for parameter in parameters:
        for node in parameter.iter_subtree():
            if node.is_value:
                return node.label
    return None


class StaticService(Service):
    """Always returns clones of the same template forest."""

    def __init__(
        self,
        name: str,
        template: Sequence[Node],
        signature: Optional[FunctionSignature] = None,
        latency_s: float = 0.05,
        supports_push: bool = True,
    ) -> None:
        super().__init__(
            name,
            signature=signature,
            latency_s=latency_s,
            supports_push=supports_push,
        )
        self._template = list(template)

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        return [tree.clone() for tree in self._template]


class TableService(Service):
    """Keyed results: the first parameter value selects the forest.

    This is the natural mock for the paper's running services — e.g.
    ``getNearbyRestos("2nd Av.")`` returns the restaurants filed under
    that address.  Keys with no entry yield ``default`` (empty forest
    unless provided).
    """

    def __init__(
        self,
        name: str,
        table: dict[str, Sequence[Node]],
        default: Optional[Sequence[Node]] = None,
        signature: Optional[FunctionSignature] = None,
        latency_s: float = 0.05,
        supports_push: bool = True,
    ) -> None:
        super().__init__(
            name,
            signature=signature,
            latency_s=latency_s,
            supports_push=supports_push,
        )
        self._table = {key: list(forest) for key, forest in table.items()}
        self._default = list(default or ())

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        key = first_value(parameters)
        template = self._table.get(key or "", self._default)
        return [tree.clone() for tree in template]


class SequenceService(Service):
    """Returns the next forest of a fixed sequence on each invocation.

    Models the paper's observation that "two calls [to the same service]
    may yield different results" (a stock ticker, a temperature feed).
    After the sequence is exhausted, the last forest repeats.
    """

    def __init__(
        self,
        name: str,
        forests: Sequence[Sequence[Node]],
        signature: Optional[FunctionSignature] = None,
        latency_s: float = 0.05,
        supports_push: bool = True,
    ) -> None:
        if not forests:
            raise ValueError("SequenceService needs at least one forest")
        super().__init__(
            name,
            signature=signature,
            latency_s=latency_s,
            supports_push=supports_push,
        )
        self._forests = [list(forest) for forest in forests]
        self._cursor = 0

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        template = self._forests[min(self._cursor, len(self._forests) - 1)]
        self._cursor += 1
        return [tree.clone() for tree in template]


class EmptyService(Service):
    """Always returns the empty forest (a service with nothing to say)."""

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        return []


class FailingService(Service):
    """Fails for the first ``failures`` invocations, then delegates.

    Used by failure-injection tests: the engine must surface (or, when
    configured, tolerate) remote faults.
    """

    def __init__(
        self,
        name: str,
        delegate: Service,
        failures: int = 1,
        latency_s: float = 0.05,
    ) -> None:
        super().__init__(
            name,
            signature=delegate.signature,
            latency_s=latency_s,
            supports_push=delegate.supports_push,
        )
        self._delegate = delegate
        self._remaining_failures = failures

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        if self._remaining_failures > 0:
            self._remaining_failures -= 1
            raise ServiceFault(f"simulated fault in {self.name!r}")
        return self._delegate.produce(parameters)
