"""Ready-made mock services for examples, tests and benchmarks."""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..axml.node import Node
from ..schema.regex import parse_regex
from ..schema.schema import FunctionSignature
from .service import Service


class ServiceFault(RuntimeError):
    """A simulated remote failure (network drop, SOAP fault...)."""


class TimeoutFault(ServiceFault):
    """A simulated deadline miss: the reply did not arrive in time.

    Raised either by the bus when an attempt's simulated time exceeds
    the :class:`~repro.services.resilience.RetryPolicy` timeout, or by a
    :class:`FlakyService` configured to fail with timeouts.
    """


def make_signature(name: str, input_type: str, output_type: str) -> FunctionSignature:
    """Convenience builder using the Figure 2 regex syntax."""
    return FunctionSignature(
        name, parse_regex(input_type), parse_regex(output_type)
    )


def first_value(parameters: Sequence[Node]) -> Optional[str]:
    """The first value leaf found among the parameters (often the key)."""
    for parameter in parameters:
        for node in parameter.iter_subtree():
            if node.is_value:
                return node.label
    return None


class StaticService(Service):
    """Always returns clones of the same template forest."""

    def __init__(
        self,
        name: str,
        template: Sequence[Node],
        signature: Optional[FunctionSignature] = None,
        latency_s: float = 0.05,
        supports_push: bool = True,
    ) -> None:
        super().__init__(
            name,
            signature=signature,
            latency_s=latency_s,
            supports_push=supports_push,
        )
        self._template = list(template)

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        return [tree.clone() for tree in self._template]


class TableService(Service):
    """Keyed results: the first parameter value selects the forest.

    This is the natural mock for the paper's running services — e.g.
    ``getNearbyRestos("2nd Av.")`` returns the restaurants filed under
    that address.  Keys with no entry yield ``default`` (empty forest
    unless provided).
    """

    def __init__(
        self,
        name: str,
        table: dict[str, Sequence[Node]],
        default: Optional[Sequence[Node]] = None,
        signature: Optional[FunctionSignature] = None,
        latency_s: float = 0.05,
        supports_push: bool = True,
    ) -> None:
        super().__init__(
            name,
            signature=signature,
            latency_s=latency_s,
            supports_push=supports_push,
        )
        self._table = {key: list(forest) for key, forest in table.items()}
        self._default = list(default or ())

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        key = first_value(parameters)
        template = self._table.get(key or "", self._default)
        return [tree.clone() for tree in template]


class SequenceService(Service):
    """Returns the next forest of a fixed sequence on each invocation.

    Models the paper's observation that "two calls [to the same service]
    may yield different results" (a stock ticker, a temperature feed).
    After the sequence is exhausted, the last forest repeats.
    """

    def __init__(
        self,
        name: str,
        forests: Sequence[Sequence[Node]],
        signature: Optional[FunctionSignature] = None,
        latency_s: float = 0.05,
        supports_push: bool = True,
    ) -> None:
        if not forests:
            raise ValueError("SequenceService needs at least one forest")
        super().__init__(
            name,
            signature=signature,
            latency_s=latency_s,
            supports_push=supports_push,
        )
        self._forests = [list(forest) for forest in forests]
        self._cursor = 0

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        template = self._forests[min(self._cursor, len(self._forests) - 1)]
        self._cursor += 1
        return [tree.clone() for tree in template]


class EmptyService(Service):
    """Always returns the empty forest (a service with nothing to say)."""

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        return []


class FailingService(Service):
    """Fails for the first ``failures`` invocations, then delegates.

    Used by failure-injection tests: the engine must surface (or, when
    configured, tolerate) remote faults.
    """

    def __init__(
        self,
        name: str,
        delegate: Service,
        failures: int = 1,
        latency_s: float = 0.05,
    ) -> None:
        super().__init__(
            name,
            signature=delegate.signature,
            latency_s=latency_s,
            supports_push=delegate.supports_push,
        )
        self._delegate = delegate
        self._remaining_failures = failures

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        if self._remaining_failures > 0:
            self._remaining_failures -= 1
            raise ServiceFault(f"simulated fault in {self.name!r}")
        return self._delegate.produce(parameters)


class FlakyService(Service):
    """Fault injection: fails a seeded-random fraction of invocations.

    Wraps a delegate (keeping its name, signature, latency and push
    capability) and raises :class:`ServiceFault` — or
    :class:`TimeoutFault` when ``fault_kind="timeout"`` — with
    probability ``fault_rate`` on each invocation.  The RNG is seeded so
    a given wrapper produces the same fault pattern on every run;
    ``fault_rate=1.0`` always fails (the breaker-trip scenario).
    """

    def __init__(
        self,
        delegate: Service,
        fault_rate: float,
        seed: int = 2004,
        fault_kind: str = "fault",
    ) -> None:
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")
        if fault_kind not in ("fault", "timeout"):
            raise ValueError("fault_kind must be 'fault' or 'timeout'")
        super().__init__(
            delegate.name,
            signature=delegate.signature,
            latency_s=delegate.latency_s,
            supports_push=delegate.supports_push,
        )
        self._delegate = delegate
        self.fault_rate = fault_rate
        self.fault_kind = fault_kind
        self._rng = random.Random(seed)
        self.injected_faults = 0

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        if self._rng.random() < self.fault_rate:
            self.injected_faults += 1
            if self.fault_kind == "timeout":
                raise TimeoutFault(f"simulated timeout in {self.name!r}")
            raise ServiceFault(f"simulated flaky fault in {self.name!r}")
        return self._delegate.produce(parameters)


class SlowService(Service):
    """Fault injection: a delegate with extra simulated latency.

    Combined with a :class:`~repro.services.resilience.RetryPolicy`
    timeout below the padded latency, every attempt misses its deadline
    — the deterministic way to exercise :class:`TimeoutFault` handling.
    """

    def __init__(self, delegate: Service, extra_latency_s: float) -> None:
        super().__init__(
            delegate.name,
            signature=delegate.signature,
            latency_s=delegate.latency_s + extra_latency_s,
            supports_push=delegate.supports_push,
        )
        self._delegate = delegate

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        return self._delegate.produce(parameters)
