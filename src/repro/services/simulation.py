"""Simulated network accounting.

The paper's experiments ran against Web services over a network; here the
network is simulated so that experiments are deterministic, offline and
fast, while still exposing the quantities the paper reports on:

* number of service invocations (the thing lazy evaluation minimises),
* simulated elapsed time — fixed per-call latency plus a per-byte
  transfer component (sequential sum, and per-round maxima when calls
  are parallelised as in Section 4.4),
* bytes shipped each way (the thing query pushing minimises, Section 7).
"""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth model for simulated invocations.

    ``transfer_time(n)`` = ``per_kb_s * n / 1024`` — the fixed round-trip
    cost lives on each service (services can be slow regardless of the
    network).
    """

    per_kb_s: float = 0.002

    def transfer_time(self, nbytes: int) -> float:
        return self.per_kb_s * (nbytes / 1024.0)


@dataclasses.dataclass(frozen=True)
class InvocationRecord:
    """One entry of the invocation log.

    Since the resilience layer, the log records *attempts*, not just
    successes: a failed attempt carries ``fault=True`` (with
    ``fault_kind`` naming the failure) and still accounts its request
    bytes and simulated time — faults are not free.  ``attempt`` is the
    1-based position within one call's retry sequence.
    """

    sequence: int
    service_name: str
    call_node_id: Optional[int]
    request_bytes: int
    response_bytes: int
    simulated_time_s: float
    pushed_query: Optional[str]
    push_mode: str
    returned_bindings: bool
    new_calls: int
    fault: bool = False
    fault_kind: Optional[str] = None
    attempt: int = 1


class InvocationLog:
    """Accumulates invocation records and aggregate totals."""

    def __init__(self, network: Optional[NetworkModel] = None) -> None:
        self.network = network or NetworkModel()
        self.records: list[InvocationRecord] = []

    def record(
        self,
        service_name: str,
        call_node_id: Optional[int],
        request_bytes: int,
        response_bytes: int,
        service_latency_s: float,
        pushed_query: Optional[str],
        push_mode: str,
        returned_bindings: bool,
        new_calls: int,
        fault: bool = False,
        fault_kind: Optional[str] = None,
        attempt: int = 1,
        charged_time_s: Optional[float] = None,
    ) -> InvocationRecord:
        # ``charged_time_s`` overrides the latency+transfer formula, e.g.
        # a timed-out attempt costs exactly the deadline it missed.
        simulated = (
            charged_time_s
            if charged_time_s is not None
            else service_latency_s
            + self.network.transfer_time(request_bytes)
            + self.network.transfer_time(response_bytes)
        )
        entry = InvocationRecord(
            sequence=len(self.records),
            service_name=service_name,
            call_node_id=call_node_id,
            request_bytes=request_bytes,
            response_bytes=response_bytes,
            simulated_time_s=simulated,
            pushed_query=pushed_query,
            push_mode=push_mode,
            returned_bindings=returned_bindings,
            new_calls=new_calls,
            fault=fault,
            fault_kind=fault_kind,
            attempt=attempt,
        )
        self.records.append(entry)
        return entry

    # -- aggregates --------------------------------------------------------------

    @property
    def call_count(self) -> int:
        """Total logged attempts (successful and faulted)."""
        return len(self.records)

    @property
    def fault_count(self) -> int:
        return sum(1 for r in self.records if r.fault)

    @property
    def successful_count(self) -> int:
        return len(self.records) - self.fault_count

    def faults_by_service(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self.records:
            if record.fault:
                out[record.service_name] = out.get(record.service_name, 0) + 1
        return out

    @property
    def total_request_bytes(self) -> int:
        return sum(r.request_bytes for r in self.records)

    @property
    def total_response_bytes(self) -> int:
        return sum(r.response_bytes for r in self.records)

    @property
    def total_bytes(self) -> int:
        return self.total_request_bytes + self.total_response_bytes

    @property
    def total_simulated_time_s(self) -> float:
        return sum(r.simulated_time_s for r in self.records)

    def calls_by_service(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self.records:
            out[record.service_name] = out.get(record.service_name, 0) + 1
        return out

    def reset(self) -> None:
        self.records.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InvocationLog(calls={self.call_count}, "
            f"bytes={self.total_bytes}, "
            f"time={self.total_simulated_time_s:.3f}s)"
        )
