"""Concurrent dispatch scheduling and call-result memoization.

Section 4's layering argument makes independent calls of one round
mutually non-blocking, yet a serial bus charges every invocation to the
simulated clock one after the other — understating the very win the
paper claims for parallel rounds.  This module holds the two pieces the
:class:`~repro.services.registry.ServiceBus` uses to fix that:

* :class:`SchedulerPolicy` + :func:`assign_workers` — the simulated
  concurrency model.  A batch of calls is list-scheduled onto
  ``max_concurrency`` workers (each call starts as soon as a worker is
  free), and the bus clock advances by the *makespan* of the schedule
  instead of the sum of the calls' durations.  ``max_concurrency=1``
  degenerates exactly to the serial clock.
* :class:`CallCache` — memoization of call *results*, keyed by service
  name plus a digest of the argument forest (and the pushed subquery, if
  any).  Duplicate calls across rounds and across pushed subqueries hit
  the cache instead of the network model: zero simulated time, nothing
  logged.  Entries carry an optional TTL on the *simulated* clock and
  can be invalidated explicitly when the document (or the world behind
  a service) changes.  The cache assumes services are functions of
  their parameters — exactly the property the synthetic worlds and the
  declarative catalogues guarantee — and is therefore opt-in.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
from typing import TYPE_CHECKING, Optional, Sequence

from ..axml.node import Node
from ..axml.xmlio import serialize
from .service import CallReply

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import ServiceCall


@dataclasses.dataclass(frozen=True)
class SchedulerPolicy:
    """How a batch of independent calls is dispatched.

    ``max_concurrency`` bounds how many calls may be in flight at once
    in the *simulated* world (1 = serial, the legacy clock).
    ``use_threads`` additionally runs the real service work on a
    ``ThreadPoolExecutor`` so wall-clock heavy mocks overlap; it never
    affects simulated accounting, which stays deterministic either way.
    """

    max_concurrency: int = 1
    use_threads: bool = True

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")


@dataclasses.dataclass
class BatchOutcome:
    """Aggregate accounting of one :meth:`ServiceBus.invoke_batch`.

    ``outcomes`` is positionally aligned with the submitted calls.
    ``serial_s`` is what the batch would have cost on the serial clock
    (the sum of the calls' simulated durations); ``parallel_s`` is the
    makespan actually charged under the scheduler.
    """

    outcomes: list = dataclasses.field(default_factory=list)
    width: int = 0
    serial_s: float = 0.0
    parallel_s: float = 0.0
    cache_hits: int = 0


def assign_workers(
    durations: Sequence[float], max_concurrency: int
) -> tuple[list[float], float]:
    """List-schedule ``durations`` (in order) onto bounded workers.

    Returns ``(start_offsets, makespan)`` relative to the batch start:
    call ``i`` begins at ``start_offsets[i]`` — the earliest moment a
    worker frees up — and the makespan is when the last worker goes
    quiet.  With ``max_concurrency >= len(durations)`` every offset is
    0.0 and the makespan is the longest duration; with 1 worker the
    offsets are the running sum (the serial clock).
    """
    if not durations:
        return [], 0.0
    workers = [0.0] * max(1, min(max_concurrency, len(durations)))
    heapq.heapify(workers)
    offsets: list[float] = []
    makespan = 0.0
    for duration in durations:
        start = heapq.heappop(workers)
        offsets.append(start)
        finish = start + duration
        heapq.heappush(workers, finish)
        makespan = max(makespan, finish)
    return offsets, makespan


def forest_digest(parameters: Sequence[Node]) -> str:
    """A stable digest of an argument forest (order-sensitive)."""
    hasher = hashlib.sha256()
    for parameter in parameters:
        if parameter.is_value:
            hasher.update(b"v:")
            hasher.update(parameter.label.encode("utf-8"))
        else:
            hasher.update(b"t:")
            hasher.update(serialize(parameter).encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def cache_key(call: "ServiceCall") -> str:
    """The memoization key: service + argument digest + push shape."""
    pushed = call.pushed.to_string() if call.pushed is not None else ""
    return "|".join(
        (
            call.service,
            forest_digest(call.parameters),
            pushed,
            call.push_mode.value,
            call.anchor_edge.name,
        )
    )


@dataclasses.dataclass
class _CacheEntry:
    reply: CallReply
    stored_at_s: float


class CallCache:
    """Memoized call replies, keyed by :func:`cache_key`.

    Stored replies are cloned both on the way in and on the way out:
    the engine splices reply forests into live documents, so sharing
    trees between the cache and a document would corrupt later hits.

    ``ttl_s`` is measured on the simulated clock (``None`` = no
    expiry).  :meth:`invalidate` drops everything (or one service's
    entries) — the hook for document updates and changing worlds.
    """

    def __init__(
        self, ttl_s: Optional[float] = None, max_entries: int = 10_000
    ) -> None:
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None)")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self._entries: dict[str, _CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str, now_s: float) -> Optional[CallReply]:
        """A fresh clone of the memoized reply, or None (miss/expired)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if self.ttl_s is not None and now_s - entry.stored_at_s > self.ttl_s:
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return _clone_reply(entry.reply)

    def store(self, key: str, reply: CallReply, now_s: float) -> None:
        if len(self._entries) >= self.max_entries and key not in self._entries:
            # Evict the stalest entry; a bounded cache must not grow
            # without limit under adversarial workloads.
            oldest = min(
                self._entries, key=lambda k: self._entries[k].stored_at_s
            )
            del self._entries[oldest]
        self._entries[key] = _CacheEntry(
            reply=_clone_reply(reply), stored_at_s=now_s
        )
        self.stores += 1

    def invalidate(self, service: Optional[str] = None) -> int:
        """Drop all entries (or one service's); returns how many."""
        if service is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            prefix = f"{service}|"
            stale = [k for k in self._entries if k.startswith(prefix)]
            for key in stale:
                del self._entries[key]
            dropped = len(stale)
        self.invalidations += dropped
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CallCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def _clone_reply(reply: CallReply) -> CallReply:
    return CallReply(
        forest=[tree.clone() for tree in reply.forest],
        bindings=list(reply.bindings) if reply.bindings is not None else None,
        pushed=reply.pushed,
        push_mode=reply.push_mode,
    )
