"""The Web-services substrate: services, registry, simulated network."""

from .catalog import (
    EmptyService,
    FailingService,
    SequenceService,
    ServiceFault,
    StaticService,
    TableService,
    first_value,
    make_signature,
)
from .registry import ServiceBus, ServiceRegistry, UnknownServiceError
from .service import (
    BindingRow,
    CallableService,
    CallReply,
    PushMode,
    Service,
)
from .simulation import InvocationLog, InvocationRecord, NetworkModel

__all__ = [
    "BindingRow",
    "CallReply",
    "CallableService",
    "EmptyService",
    "FailingService",
    "InvocationLog",
    "InvocationRecord",
    "NetworkModel",
    "PushMode",
    "SequenceService",
    "Service",
    "ServiceBus",
    "ServiceFault",
    "ServiceRegistry",
    "StaticService",
    "TableService",
    "UnknownServiceError",
    "first_value",
    "make_signature",
]
