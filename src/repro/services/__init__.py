"""The Web-services substrate: services, registry, simulated network."""

from .catalog import (
    EmptyService,
    FailingService,
    FlakyService,
    SequenceService,
    ServiceFault,
    SlowService,
    StaticService,
    TableService,
    TimeoutFault,
    first_value,
    make_signature,
)
from .registry import ServiceBus, ServiceCall, ServiceRegistry, UnknownServiceError
from .resilience import (
    BreakerState,
    CircuitBreaker,
    CircuitBreakerPolicy,
    CircuitOpenFault,
    InvocationPolicy,
    ResilientOutcome,
    RetryPolicy,
)
from .service import (
    BindingRow,
    CallableService,
    CallReply,
    PushMode,
    Service,
)
from .simulation import InvocationLog, InvocationRecord, NetworkModel

__all__ = [
    "BindingRow",
    "BreakerState",
    "CallReply",
    "CallableService",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "CircuitOpenFault",
    "EmptyService",
    "FailingService",
    "FlakyService",
    "InvocationLog",
    "InvocationPolicy",
    "InvocationRecord",
    "NetworkModel",
    "PushMode",
    "ResilientOutcome",
    "RetryPolicy",
    "SequenceService",
    "Service",
    "ServiceBus",
    "ServiceCall",
    "ServiceFault",
    "ServiceRegistry",
    "SlowService",
    "StaticService",
    "TableService",
    "TimeoutFault",
    "UnknownServiceError",
    "first_value",
    "make_signature",
]
