"""Service registry and invocation bus.

The :class:`ServiceBus` plays the role of the Web — it resolves function
names to services, ships parameters (and pushed subqueries) to them, and
accounts for every byte and simulated second on an
:class:`~repro.services.simulation.InvocationLog`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..axml.node import Node
from ..axml.xmlio import forest_size_bytes, serialized_size
from ..pattern.nodes import EdgeKind
from ..pattern.pattern import TreePattern
from ..schema.schema import Schema
from .service import CallReply, PushMode, Service
from .simulation import InvocationLog, InvocationRecord, NetworkModel


class UnknownServiceError(KeyError):
    """Raised when a document references a service nobody registered."""


class ServiceRegistry:
    """Name -> service resolution."""

    def __init__(self, services: Optional[Iterable[Service]] = None) -> None:
        self._services: dict[str, Service] = {}
        for service in services or ():
            self.register(service)

    def register(self, service: Service) -> Service:
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already registered")
        self._services[service.name] = service
        return service

    def resolve(self, name: str) -> Service:
        service = self._services.get(name)
        if service is None:
            raise UnknownServiceError(name)
        return service

    def knows(self, name: str) -> bool:
        return name in self._services

    def names(self) -> list[str]:
        return sorted(self._services)

    def __len__(self) -> int:
        return len(self._services)

    def schema_with_signatures(self, base: Optional[Schema] = None) -> Schema:
        """A schema enriched with every registered service signature."""
        schema = base or Schema()
        for service in self._services.values():
            if service.signature is not None:
                schema.functions[service.name] = service.signature
        return schema


class ServiceBus:
    """Invokes services and accounts the traffic."""

    def __init__(
        self,
        registry: ServiceRegistry,
        network: Optional[NetworkModel] = None,
    ) -> None:
        self.registry = registry
        self.log = InvocationLog(network=network)

    def invoke(
        self,
        service_name: str,
        parameters: Sequence[Node],
        call_node_id: Optional[int] = None,
        pushed: Optional[TreePattern] = None,
        push_mode: PushMode = PushMode.NONE,
        anchor_edge: EdgeKind = EdgeKind.CHILD,
    ) -> tuple[CallReply, InvocationRecord]:
        service = self.registry.resolve(service_name)
        reply = service.invoke(
            parameters,
            pushed=pushed,
            push_mode=push_mode,
            anchor_edge=anchor_edge,
        )
        request_bytes = sum(serialized_size(p) for p in parameters)
        pushed_text: Optional[str] = None
        if pushed is not None and push_mode is not PushMode.NONE:
            pushed_text = pushed.to_string()
            request_bytes += len(pushed_text.encode("utf-8"))
        response_bytes = self._response_bytes(reply)
        record = self.log.record(
            service_name=service_name,
            call_node_id=call_node_id,
            request_bytes=request_bytes,
            response_bytes=response_bytes,
            service_latency_s=service.latency_s,
            pushed_query=pushed_text,
            push_mode=reply.push_mode.value,
            returned_bindings=reply.is_bindings,
            new_calls=sum(
                1
                for tree in reply.forest
                for node in tree.iter_subtree()
                if node.is_function
            ),
        )
        return reply, record

    @staticmethod
    def _response_bytes(reply: CallReply) -> int:
        size = forest_size_bytes(reply.forest)
        if reply.bindings is not None:
            for row in reply.bindings:
                # <tuple><x>v</x>...</tuple> — the paper's reply shape.
                size += len("<tuple></tuple>")
                for variable, value in row.values:
                    size += len(
                        f"<{variable}>{value}</{variable}>".encode("utf-8")
                    )
        return size
