"""Service registry and invocation bus.

The :class:`ServiceBus` plays the role of the Web — it resolves function
names to services, ships parameters (and pushed subqueries) to them, and
accounts for every byte and simulated second on an
:class:`~repro.services.simulation.InvocationLog`.

The one entry point is :meth:`ServiceBus.invoke`, taking a
:class:`ServiceCall` descriptor plus a keyword-only
:class:`~repro.services.resilience.InvocationPolicy` and an optional
tracer; the pre-1.1 ``invoke(service_name, parameters, ...)`` and
``invoke_resilient(...)`` spellings survive as thin deprecation shims.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Iterable, Optional, Sequence, Union

from ..axml.node import Node
from ..axml.xmlio import forest_size_bytes, serialized_size
from ..obs.trace import (
    EVENT_ATTEMPT,
    EVENT_BACKOFF,
    EVENT_BREAKER_TRIP,
    EVENT_FAULT,
    EVENT_SHORT_CIRCUIT,
    NULL_TRACER,
    AnyTracer,
)
from ..pattern.nodes import EdgeKind
from ..pattern.pattern import TreePattern
from ..schema.schema import Schema
from .catalog import ServiceFault, TimeoutFault
from .resilience import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    CircuitOpenFault,
    InvocationPolicy,
    ResilientOutcome,
    RetryPolicy,
)
from .service import CallReply, PushMode, Service
from .simulation import InvocationLog, InvocationRecord, NetworkModel


class UnknownServiceError(KeyError):
    """Raised when a document references a service nobody registered."""


@dataclasses.dataclass(frozen=True)
class ServiceCall:
    """Everything that describes one invocation request.

    The first (and only positional) argument of
    :meth:`ServiceBus.invoke`: the service name, the parameter forest,
    and the optional pushed subquery riding along (Section 7).
    """

    service: str
    parameters: Sequence[Node] = ()
    call_node_id: Optional[int] = None
    pushed: Optional[TreePattern] = None
    push_mode: PushMode = PushMode.NONE
    anchor_edge: EdgeKind = EdgeKind.CHILD


class ServiceRegistry:
    """Name -> service resolution."""

    def __init__(self, services: Optional[Iterable[Service]] = None) -> None:
        self._services: dict[str, Service] = {}
        for service in services or ():
            self.register(service)

    def register(self, service: Service) -> Service:
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already registered")
        self._services[service.name] = service
        return service

    def resolve(self, name: str) -> Service:
        service = self._services.get(name)
        if service is None:
            raise UnknownServiceError(name)
        return service

    def knows(self, name: str) -> bool:
        return name in self._services

    def names(self) -> list[str]:
        return sorted(self._services)

    def __len__(self) -> int:
        return len(self._services)

    def schema_with_signatures(self, base: Optional[Schema] = None) -> Schema:
        """A *copy* of ``base`` enriched with every registered signature.

        The caller's schema is never mutated: the engine passes the
        user's shared ``evaluator.schema`` here on every evaluation, and
        merging in place would leak service signatures into it.
        """
        if base is None:
            schema = Schema()
        else:
            schema = Schema(
                elements=base.elements, functions=base.functions.values()
            )
        for service in self._services.values():
            if service.signature is not None:
                schema.functions[service.name] = service.signature
        return schema


class ServiceBus:
    """Invokes services and accounts the traffic.

    Beyond name resolution and byte/time accounting, the bus is the
    resilience layer: it logs *faulted* attempts (a fault still ships a
    request and burns simulated time), enforces per-attempt simulated
    timeouts, runs the retry/backoff loop of
    :class:`~repro.services.resilience.RetryPolicy`, and keeps one
    :class:`~repro.services.resilience.CircuitBreaker` per service.
    ``clock_s`` is the bus's simulated clock — it advances with every
    attempt and every backoff wait, and drives breaker cool-downs.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        network: Optional[NetworkModel] = None,
    ) -> None:
        self.registry = registry
        self.log = InvocationLog(network=network)
        self.breakers: dict[str, CircuitBreaker] = {}
        self.clock_s: float = 0.0

    def breaker_for(
        self, service_name: str, policy: CircuitBreakerPolicy
    ) -> CircuitBreaker:
        breaker = self.breakers.get(service_name)
        if breaker is None:
            breaker = CircuitBreaker(policy)
            self.breakers[service_name] = breaker
        return breaker

    def reset_breakers(self) -> None:
        for breaker in self.breakers.values():
            breaker.reset()

    def invoke(
        self,
        call: Union[ServiceCall, str],
        *legacy_args,
        policy: Optional[InvocationPolicy] = None,
        trace: Optional[AnyTracer] = None,
        **legacy_kwargs,
    ) -> ResilientOutcome:
        """Invoke one :class:`ServiceCall` under an invocation policy.

        The single entry point of the bus: runs the breaker gate, the
        attempt loop and the backoff waits prescribed by ``policy``
        (default: three attempts, no breaker — pass
        :meth:`InvocationPolicy.single_attempt` for exactly one try)
        and never raises on service faults — the returned
        :class:`~repro.services.resilience.ResilientOutcome` carries
        either the reply or the last fault.  (Unknown services still
        raise: that is a caller bug, not a remote fault.)  ``trace``
        is an optional :class:`repro.obs.Tracer`: every attempt,
        fault, backoff wait and breaker transition becomes a span
        event on the caller's current span.

        The pre-1.1 form ``invoke(service_name, parameters, ...)`` —
        one attempt, (reply, record) on success, fault raised — is
        deprecated but still honoured when the first argument is a
        string.
        """
        if isinstance(call, str):
            warnings.warn(
                "ServiceBus.invoke(service_name, parameters, ...) is "
                "deprecated; pass a ServiceCall and read the returned "
                "ResilientOutcome instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return self._attempt(call, *legacy_args, **legacy_kwargs)
        if legacy_args or legacy_kwargs:
            raise TypeError(
                "ServiceBus.invoke(call) accepts only keyword arguments "
                f"'policy' and 'trace'; got extra {legacy_args or legacy_kwargs!r}"
            )
        return self._invoke(call, policy=policy, trace=trace)

    def invoke_resilient(
        self,
        service_name: str,
        parameters: Sequence[Node],
        call_node_id: Optional[int] = None,
        pushed: Optional[TreePattern] = None,
        push_mode: PushMode = PushMode.NONE,
        anchor_edge: EdgeKind = EdgeKind.CHILD,
        retry: Optional[RetryPolicy] = None,
        breaker_policy: Optional[CircuitBreakerPolicy] = None,
    ) -> ResilientOutcome:
        """Deprecated alias for :meth:`invoke` with a :class:`ServiceCall`."""
        warnings.warn(
            "ServiceBus.invoke_resilient is deprecated; use "
            "ServiceBus.invoke(ServiceCall(...), policy=InvocationPolicy(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._invoke(
            ServiceCall(
                service=service_name,
                parameters=parameters,
                call_node_id=call_node_id,
                pushed=pushed,
                push_mode=push_mode,
                anchor_edge=anchor_edge,
            ),
            policy=InvocationPolicy(
                retry=retry or RetryPolicy(), breaker=breaker_policy
            ),
            trace=None,
        )

    def _invoke(
        self,
        call: ServiceCall,
        policy: Optional[InvocationPolicy],
        trace: Optional[AnyTracer],
    ) -> ResilientOutcome:
        """The resilient invocation loop: breaker gate, attempts, backoff."""
        policy = policy or InvocationPolicy()
        tracer = trace or NULL_TRACER
        retry = policy.retry
        breaker = (
            self.breaker_for(call.service, policy.breaker)
            if policy.breaker is not None
            else None
        )
        outcome = ResilientOutcome()
        for attempt in range(1, retry.max_attempts + 1):
            if breaker is not None and not breaker.allow(self.clock_s):
                outcome.short_circuited = True
                outcome.fault = CircuitOpenFault(call.service)
                tracer.event(EVENT_SHORT_CIRCUIT, service=call.service)
                return outcome
            if attempt > 1:
                backoff = retry.backoff_before(attempt, key=call.service)
                outcome.backoff_s += backoff
                self.clock_s += backoff
                outcome.retries += 1
                tracer.event(
                    EVENT_BACKOFF, seconds=backoff, before_attempt=attempt
                )
            outcome.attempts += 1
            tracer.event(EVENT_ATTEMPT, attempt=attempt, service=call.service)
            try:
                reply, record = self._attempt(
                    call.service,
                    call.parameters,
                    call_node_id=call.call_node_id,
                    pushed=call.pushed,
                    push_mode=call.push_mode,
                    anchor_edge=call.anchor_edge,
                    attempt=attempt,
                    timeout_s=retry.timeout_s,
                )
            except ServiceFault as fault:
                outcome.faults += 1
                outcome.fault = fault
                if self.log.records and self.log.records[-1].fault:
                    outcome.fault_time_s += self.log.records[-1].simulated_time_s
                tracer.event(
                    EVENT_FAULT,
                    attempt=attempt,
                    kind="timeout" if isinstance(fault, TimeoutFault) else "fault",
                    service=call.service,
                )
                if breaker is not None and breaker.record_failure(self.clock_s):
                    outcome.breaker_trips += 1
                    tracer.event(EVENT_BREAKER_TRIP, service=call.service)
                continue
            if breaker is not None:
                breaker.record_success()
            outcome.reply = reply
            outcome.record = record
            outcome.fault = None
            return outcome
        return outcome

    def _attempt(
        self,
        service_name: str,
        parameters: Sequence[Node],
        call_node_id: Optional[int] = None,
        pushed: Optional[TreePattern] = None,
        push_mode: PushMode = PushMode.NONE,
        anchor_edge: EdgeKind = EdgeKind.CHILD,
        attempt: int = 1,
        timeout_s: Optional[float] = None,
    ) -> tuple[CallReply, InvocationRecord]:
        """One attempt.  Faults are logged (with the fault flag set and
        their request bytes / simulated time charged) and re-raised."""
        service = self.registry.resolve(service_name)
        request_bytes = sum(serialized_size(p) for p in parameters)
        pushed_text: Optional[str] = None
        if pushed is not None and push_mode is not PushMode.NONE:
            pushed_text = pushed.to_string()
            request_bytes += len(pushed_text.encode("utf-8"))
        try:
            reply = service.invoke(
                parameters,
                pushed=pushed,
                push_mode=push_mode,
                anchor_edge=anchor_edge,
            )
        except ServiceFault as fault:
            self._record_fault(
                service_name=service_name,
                call_node_id=call_node_id,
                request_bytes=request_bytes,
                service=service,
                pushed_text=pushed_text,
                attempt=attempt,
                fault=fault,
                timeout_s=timeout_s,
            )
            raise
        response_bytes = self._response_bytes(reply)
        simulated = (
            service.latency_s
            + self.log.network.transfer_time(request_bytes)
            + self.log.network.transfer_time(response_bytes)
        )
        if timeout_s is not None and simulated > timeout_s:
            # The reply exists but arrived past the deadline: the caller
            # never sees it, waits exactly ``timeout_s``, and gets a fault.
            fault = TimeoutFault(
                f"service {service_name!r} missed its "
                f"{timeout_s:.3f}s deadline ({simulated:.3f}s simulated)"
            )
            self._record_fault(
                service_name=service_name,
                call_node_id=call_node_id,
                request_bytes=request_bytes,
                service=service,
                pushed_text=pushed_text,
                attempt=attempt,
                fault=fault,
                timeout_s=timeout_s,
            )
            raise fault
        record = self.log.record(
            service_name=service_name,
            call_node_id=call_node_id,
            request_bytes=request_bytes,
            response_bytes=response_bytes,
            service_latency_s=service.latency_s,
            pushed_query=pushed_text,
            push_mode=reply.push_mode.value,
            returned_bindings=reply.is_bindings,
            new_calls=sum(
                1
                for tree in reply.forest
                for node in tree.iter_subtree()
                if node.is_function
            ),
            attempt=attempt,
        )
        self.clock_s += record.simulated_time_s
        return reply, record

    def _record_fault(
        self,
        *,
        service_name: str,
        call_node_id: Optional[int],
        request_bytes: int,
        service: Service,
        pushed_text: Optional[str],
        attempt: int,
        fault: ServiceFault,
        timeout_s: Optional[float],
    ) -> InvocationRecord:
        # A timed-out attempt costs exactly the missed deadline; any
        # other fault costs the round-trip latency plus the request
        # transfer (the request was shipped before the failure).
        if isinstance(fault, TimeoutFault) and timeout_s is not None:
            charged: Optional[float] = timeout_s
        else:
            charged = service.latency_s + self.log.network.transfer_time(
                request_bytes
            )
        record = self.log.record(
            service_name=service_name,
            call_node_id=call_node_id,
            request_bytes=request_bytes,
            response_bytes=0,
            service_latency_s=service.latency_s,
            pushed_query=pushed_text,
            push_mode=PushMode.NONE.value,
            returned_bindings=False,
            new_calls=0,
            fault=True,
            fault_kind="timeout" if isinstance(fault, TimeoutFault) else "fault",
            attempt=attempt,
            charged_time_s=charged,
        )
        self.clock_s += record.simulated_time_s
        return record

    @staticmethod
    def _response_bytes(reply: CallReply) -> int:
        size = forest_size_bytes(reply.forest)
        if reply.bindings is not None:
            for row in reply.bindings:
                # <tuple><x>v</x>...</tuple> — the paper's reply shape.
                size += len("<tuple></tuple>")
                for variable, value in row.values:
                    size += len(
                        f"<{variable}>{value}</{variable}>".encode("utf-8")
                    )
        return size
