"""Service registry and invocation bus.

The :class:`ServiceBus` plays the role of the Web — it resolves function
names to services, ships parameters (and pushed subqueries) to them, and
accounts for every byte and simulated second on an
:class:`~repro.services.simulation.InvocationLog`.

The one entry point is :meth:`ServiceBus.invoke`, taking a
:class:`ServiceCall` descriptor plus a keyword-only
:class:`~repro.services.resilience.InvocationPolicy` and an optional
tracer; the pre-1.1 ``invoke(service_name, parameters, ...)`` and
``invoke_resilient(...)`` spellings survive as thin deprecation shims.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import warnings
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..axml.node import Node
from ..axml.xmlio import forest_size_bytes, serialized_size
from ..obs.trace import (
    BATCH,
    EVENT_ATTEMPT,
    EVENT_BACKOFF,
    EVENT_BREAKER_TRIP,
    EVENT_CACHE_HIT,
    EVENT_FAULT,
    EVENT_SHORT_CIRCUIT,
    INVOCATION,
    AnyTracer,
    tracer_for,
)
from ..pattern.nodes import EdgeKind
from ..pattern.pattern import TreePattern
from ..schema.schema import Schema
from .catalog import ServiceFault, TimeoutFault
from .resilience import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    CircuitOpenFault,
    InvocationPolicy,
    ResilientOutcome,
    RetryPolicy,
)
from .scheduler import (
    BatchOutcome,
    CallCache,
    SchedulerPolicy,
    assign_workers,
    cache_key,
)
from .service import CallReply, PushMode, Service
from .simulation import InvocationLog, InvocationRecord, NetworkModel


class UnknownServiceError(KeyError):
    """Raised when a document references a service nobody registered."""


@dataclasses.dataclass(frozen=True)
class ServiceCall:
    """Everything that describes one invocation request.

    The first (and only positional) argument of
    :meth:`ServiceBus.invoke`: the service name, the parameter forest,
    and the optional pushed subquery riding along (Section 7).
    """

    service: str
    parameters: Sequence[Node] = ()
    call_node_id: Optional[int] = None
    pushed: Optional[TreePattern] = None
    push_mode: PushMode = PushMode.NONE
    anchor_edge: EdgeKind = EdgeKind.CHILD


@dataclasses.dataclass
class _RawAttempt:
    """One service execution, measured but not yet accounted.

    Produced by :meth:`ServiceBus._execute_raw`, which touches no shared
    bus state — that is what makes it safe to run on worker threads
    during batch dispatch.  ``charged_s`` is the simulated time this
    attempt costs (deadline on timeout, latency + request transfer on
    any other fault, full round trip on success)."""

    request_bytes: int
    response_bytes: int
    service_latency_s: float
    charged_s: float
    pushed_text: Optional[str] = None
    reply: Optional[CallReply] = None
    fault: Optional[ServiceFault] = None
    new_calls: int = 0


@dataclasses.dataclass
class _CallRun:
    """Private per-call state of one batch member.

    ``events``/``breaker_marks`` carry *batch-relative* timestamps; the
    deterministic replay phase rebases them onto the bus clock once the
    call's scheduled start offset is known."""

    call: ServiceCall
    outcome: ResilientOutcome
    key: Optional[str] = None
    resolved: bool = False
    coalesced_with: Optional[int] = None
    duration_s: float = 0.0
    attempts: list = dataclasses.field(default_factory=list)
    events: list = dataclasses.field(default_factory=list)
    breaker_marks: list = dataclasses.field(default_factory=list)


class ServiceRegistry:
    """Name -> service resolution."""

    def __init__(self, services: Optional[Iterable[Service]] = None) -> None:
        self._services: dict[str, Service] = {}
        for service in services or ():
            self.register(service)

    def register(self, service: Service) -> Service:
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already registered")
        self._services[service.name] = service
        return service

    def resolve(self, name: str) -> Service:
        service = self._services.get(name)
        if service is None:
            raise UnknownServiceError(name)
        return service

    def knows(self, name: str) -> bool:
        return name in self._services

    def names(self) -> list[str]:
        return sorted(self._services)

    def __len__(self) -> int:
        return len(self._services)

    def schema_with_signatures(self, base: Optional[Schema] = None) -> Schema:
        """A *copy* of ``base`` enriched with every registered signature.

        The caller's schema is never mutated: the engine passes the
        user's shared ``evaluator.schema`` here on every evaluation, and
        merging in place would leak service signatures into it.
        """
        if base is None:
            schema = Schema()
        else:
            schema = Schema(
                elements=base.elements, functions=base.functions.values()
            )
        for service in self._services.values():
            if service.signature is not None:
                schema.functions[service.name] = service.signature
        return schema


def bus_of(
    services: Union["ServiceBus", ServiceRegistry, Iterable[Service]],
) -> "ServiceBus":
    """Coerce any services-like value into a :class:`ServiceBus`.

    An existing bus is returned as-is (preserving its invocation log,
    call cache and breaker state); a registry or a plain iterable of
    services gets a fresh bus.  This is the shared coercion behind
    ``repro.evaluate``, ``repro.subscribe`` and
    :class:`repro.serve.QueryServer`.
    """
    if isinstance(services, ServiceBus):
        return services
    if isinstance(services, ServiceRegistry):
        return ServiceBus(services)
    return ServiceBus(ServiceRegistry(services))


class ServiceBus:
    """Invokes services and accounts the traffic.

    Beyond name resolution and byte/time accounting, the bus is the
    resilience layer: it logs *faulted* attempts (a fault still ships a
    request and burns simulated time), enforces per-attempt simulated
    timeouts, runs the retry/backoff loop of
    :class:`~repro.services.resilience.RetryPolicy`, and keeps one
    :class:`~repro.services.resilience.CircuitBreaker` per service.
    ``clock_s`` is the bus's simulated clock — it advances with every
    attempt and every backoff wait, and drives breaker cool-downs.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        network: Optional[NetworkModel] = None,
        cache: Optional[CallCache] = None,
    ) -> None:
        self.registry = registry
        self.log = InvocationLog(network=network)
        self.breakers: dict[str, CircuitBreaker] = {}
        self.clock_s: float = 0.0
        self.cache = cache
        self._cache_flush_versions: dict[tuple[int, str], int] = {}

    def invalidate_cache(self, service: Optional[str] = None) -> int:
        """Drop memoized call replies (all, or one service's).

        The hook for document updates and changing worlds: memoization
        assumes services are functions of their parameters, so anything
        that breaks that assumption must call this.  Returns how many
        entries were dropped (0 when no cache is attached)."""
        if self.cache is None:
            return 0
        return self.cache.invalidate(service)

    def invalidate_cache_scoped(
        self, document, touched: Mapping[str, int]
    ) -> int:
        """Drop memoized replies of exactly the touched services, once
        per document version.

        ``touched`` maps service names to the latest version of
        ``document`` at which one of their call nodes entered or left it
        (a :class:`~repro.lazy.answers.ServiceTouchTracker` drain).
        Memoized replies are functions of their parameters (the
        :class:`~repro.services.scheduler.CallCache` opt-in contract),
        so a mutation can only stale a service's entries by changing the
        world *behind* the service — which standing queries approximate
        by the service's calls being touched.  The per-(document,
        service) flushed-version mark makes the drop idempotent: when
        several standing queries share one bus, the first refresh after
        a mutation flushes the touched services and later refreshes do
        not re-evict what other queries just re-memoized.  Returns how
        many entries were dropped."""
        if self.cache is None or not touched:
            return 0
        dropped = 0
        doc_id = id(document)
        for service, version in touched.items():
            mark = self._cache_flush_versions.get((doc_id, service))
            if mark is not None and mark >= version:
                continue
            self._cache_flush_versions[(doc_id, service)] = version
            dropped += self.cache.invalidate(service)
        return dropped

    def breaker_for(
        self, service_name: str, policy: CircuitBreakerPolicy
    ) -> CircuitBreaker:
        breaker = self.breakers.get(service_name)
        if breaker is None:
            breaker = CircuitBreaker(policy)
            self.breakers[service_name] = breaker
        return breaker

    def reset_breakers(self) -> None:
        for breaker in self.breakers.values():
            breaker.reset()

    def invoke(
        self,
        call: Union[ServiceCall, str],
        *legacy_args,
        policy: Optional[InvocationPolicy] = None,
        trace: Optional[AnyTracer] = None,
        **legacy_kwargs,
    ) -> ResilientOutcome:
        """Invoke one :class:`ServiceCall` under an invocation policy.

        The single entry point of the bus: runs the breaker gate, the
        attempt loop and the backoff waits prescribed by ``policy``
        (default: three attempts, no breaker — pass
        :meth:`InvocationPolicy.single_attempt` for exactly one try)
        and never raises on service faults — the returned
        :class:`~repro.services.resilience.ResilientOutcome` carries
        either the reply or the last fault.  (Unknown services still
        raise: that is a caller bug, not a remote fault.)  ``trace``
        is an optional :class:`repro.obs.Tracer`: every attempt,
        fault, backoff wait and breaker transition becomes a span
        event on the caller's current span.

        The pre-1.1 form ``invoke(service_name, parameters, ...)`` —
        one attempt, (reply, record) on success, fault raised — is
        deprecated but still honoured when the first argument is a
        string.
        """
        if isinstance(call, str):
            warnings.warn(
                "ServiceBus.invoke(service_name, parameters, ...) is "
                "deprecated; pass a ServiceCall and read the returned "
                "ResilientOutcome instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return self._attempt(call, *legacy_args, **legacy_kwargs)
        if legacy_args or legacy_kwargs:
            raise TypeError(
                "ServiceBus.invoke(call) accepts only keyword arguments "
                f"'policy' and 'trace'; got extra {legacy_args or legacy_kwargs!r}"
            )
        return self._invoke(call, policy=policy, trace=trace)

    def invoke_resilient(
        self,
        service_name: str,
        parameters: Sequence[Node],
        call_node_id: Optional[int] = None,
        pushed: Optional[TreePattern] = None,
        push_mode: PushMode = PushMode.NONE,
        anchor_edge: EdgeKind = EdgeKind.CHILD,
        retry: Optional[RetryPolicy] = None,
        breaker_policy: Optional[CircuitBreakerPolicy] = None,
    ) -> ResilientOutcome:
        """Deprecated alias for :meth:`invoke` with a :class:`ServiceCall`."""
        warnings.warn(
            "ServiceBus.invoke_resilient is deprecated; use "
            "ServiceBus.invoke(ServiceCall(...), policy=InvocationPolicy(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._invoke(
            ServiceCall(
                service=service_name,
                parameters=parameters,
                call_node_id=call_node_id,
                pushed=pushed,
                push_mode=push_mode,
                anchor_edge=anchor_edge,
            ),
            policy=InvocationPolicy(
                retry=retry or RetryPolicy(), breaker=breaker_policy
            ),
            trace=None,
        )

    def _invoke(
        self,
        call: ServiceCall,
        policy: Optional[InvocationPolicy],
        trace: Optional[AnyTracer],
    ) -> ResilientOutcome:
        """One resilient invocation, consulting the call cache if attached."""
        policy = policy or InvocationPolicy()
        tracer = tracer_for(trace, sim_clock=lambda: self.clock_s)
        key: Optional[str] = None
        if self.cache is not None:
            key = cache_key(call)
            hit = self.cache.lookup(key, self.clock_s)
            if hit is not None:
                tracer.event(EVENT_CACHE_HIT, service=call.service)
                return ResilientOutcome(reply=hit, cache_hit=True)
        outcome = self._invoke_live(call, policy, tracer)
        if key is not None and outcome.reply is not None:
            # Stored before the engine splices the forest into a live
            # document (the cache clones on store anyway — belt and
            # braces against aliasing).
            self.cache.store(key, outcome.reply, self.clock_s)
        return outcome

    def _invoke_live(
        self,
        call: ServiceCall,
        policy: InvocationPolicy,
        tracer: AnyTracer,
    ) -> ResilientOutcome:
        """The resilient invocation loop: breaker gate, attempts, backoff."""
        retry = policy.retry
        breaker = (
            self.breaker_for(call.service, policy.breaker)
            if policy.breaker is not None
            else None
        )
        outcome = ResilientOutcome()
        for attempt in range(1, retry.max_attempts + 1):
            backoff = (
                retry.backoff_before(attempt, key=call.service)
                if attempt > 1
                else 0.0
            )
            if breaker is not None and not breaker.allow(self.clock_s + backoff):
                # Admission is decided at the moment the attempt would
                # actually start — after its backoff wait — and a
                # rejected attempt charges nothing: a wait never sat
                # out must not advance the clock.  (Checking at
                # ``clock_s + backoff`` also admits the half-open probe
                # when the cool-down elapses *during* the backoff.)
                outcome.short_circuited = True
                outcome.fault = CircuitOpenFault(call.service)
                tracer.event(EVENT_SHORT_CIRCUIT, service=call.service)
                return outcome
            if attempt > 1:
                outcome.backoff_s += backoff
                self.clock_s += backoff
                outcome.retries += 1
                tracer.event(
                    EVENT_BACKOFF, seconds=backoff, before_attempt=attempt
                )
            outcome.attempts += 1
            tracer.event(EVENT_ATTEMPT, attempt=attempt, service=call.service)
            try:
                reply, record = self._attempt(
                    call.service,
                    call.parameters,
                    call_node_id=call.call_node_id,
                    pushed=call.pushed,
                    push_mode=call.push_mode,
                    anchor_edge=call.anchor_edge,
                    attempt=attempt,
                    timeout_s=retry.timeout_s,
                )
            except ServiceFault as fault:
                outcome.faults += 1
                outcome.fault = fault
                if self.log.records and self.log.records[-1].fault:
                    outcome.fault_time_s += self.log.records[-1].simulated_time_s
                tracer.event(
                    EVENT_FAULT,
                    attempt=attempt,
                    kind="timeout" if isinstance(fault, TimeoutFault) else "fault",
                    service=call.service,
                )
                if breaker is not None and breaker.record_failure(self.clock_s):
                    outcome.breaker_trips += 1
                    tracer.event(EVENT_BREAKER_TRIP, service=call.service)
                continue
            if breaker is not None:
                breaker.record_success()
            outcome.reply = reply
            outcome.record = record
            outcome.fault = None
            return outcome
        return outcome

    def invoke_batch(
        self,
        calls: Sequence[ServiceCall],
        *,
        policy: Optional[InvocationPolicy] = None,
        scheduler: Optional[SchedulerPolicy] = None,
        trace: Optional[AnyTracer] = None,
    ) -> BatchOutcome:
        """Invoke a batch of *independent* calls under one scheduler.

        The concurrency model of Section 4's layering argument: the
        calls of one round cannot feed each other, so they are
        list-scheduled onto ``scheduler.max_concurrency`` simulated
        workers and the bus clock advances by the schedule's *makespan*
        instead of the sum of the calls' durations.  Real execution
        optionally overlaps on a thread pool, grouped by service so a
        stateful service still sees its own calls in submission order.

        Every per-call guarantee of :meth:`invoke` is preserved: retry,
        backoff, per-attempt timeouts, the cache, and the breaker — with
        batch semantics for the latter: admission is gated on the
        breaker state *at dispatch time* (each call retries against a
        private clone, so a sibling's trip cannot retroactively reject a
        call already in flight), and the clones' events are merged back
        into the shared breaker in submission order afterwards.

        Accounting — log records, trace spans/events, breaker merges,
        cache stores — is replayed on the main thread in submission
        order, so the result is deterministic regardless of thread
        interleaving.  ``scheduler.max_concurrency == 1`` degenerates to
        the exact serial loop (same clock, same log, same events).
        """
        calls = list(calls)
        policy = policy or InvocationPolicy()
        scheduler = scheduler or SchedulerPolicy()
        tracer = tracer_for(trace, sim_clock=lambda: self.clock_s)
        result = BatchOutcome(width=len(calls))
        if not calls:
            return result
        start = self.clock_s
        with tracer.span(
            BATCH, width=len(calls), concurrency=scheduler.max_concurrency
        ):
            if scheduler.max_concurrency == 1:
                for call in calls:
                    with tracer.span(
                        INVOCATION,
                        service=call.service,
                        call_uid=call.call_node_id,
                    ) as span:
                        outcome = self._invoke(call, policy=policy, trace=tracer)
                        if span is not None and outcome.fault is not None:
                            span.tags.setdefault(
                                "fault_kind",
                                "short_circuit"
                                if outcome.short_circuited
                                else (
                                    "timeout"
                                    if isinstance(outcome.fault, TimeoutFault)
                                    else "fault"
                                ),
                            )
                    result.outcomes.append(outcome)
                    if outcome.cache_hit:
                        result.cache_hits += 1
                result.serial_s = self.clock_s - start
                result.parallel_s = result.serial_s
            else:
                self._invoke_batch_concurrent(
                    calls, policy, scheduler, tracer, start, result
                )
        return result

    def _invoke_batch_concurrent(
        self,
        calls: list[ServiceCall],
        policy: InvocationPolicy,
        scheduler: SchedulerPolicy,
        tracer: AnyTracer,
        start: float,
        result: BatchOutcome,
    ) -> None:
        # Phase 1 — consult the cache and coalesce duplicate keys, in
        # submission order.  A duplicate of an earlier miss is not
        # executed: it resolves during replay, after its prototype has
        # stored (or failed to store) a reply.
        runs: list[_CallRun] = []
        pending_by_key: dict[str, int] = {}
        for index, call in enumerate(calls):
            run = _CallRun(call=call, outcome=ResilientOutcome())
            if self.cache is not None:
                run.key = cache_key(call)
                hit = self.cache.lookup(run.key, start)
                if hit is not None:
                    run.outcome.reply = hit
                    run.outcome.cache_hit = True
                    run.resolved = True
                elif run.key in pending_by_key:
                    run.coalesced_with = pending_by_key[run.key]
                    run.resolved = True
                else:
                    pending_by_key[run.key] = index
            runs.append(run)

        # Phase 2 — execute the misses on private virtual clocks,
        # grouped by service (a stateful mock must see its calls in
        # submission order for determinism); distinct services may
        # overlap on real threads.
        groups: dict[str, list[int]] = {}
        for index, run in enumerate(runs):
            if not run.resolved:
                groups.setdefault(run.call.service, []).append(index)
        snapshots: dict[str, CircuitBreaker] = {}
        if policy.breaker is not None:
            for name in groups:
                snapshots[name] = self.breaker_for(name, policy.breaker)

        def run_group(indices: list[int]) -> None:
            for index in indices:
                clone: Optional[CircuitBreaker] = None
                snapshot = snapshots.get(runs[index].call.service)
                if snapshot is not None:
                    clone = snapshot.clone()
                    if clone.opened_at_s is not None:
                        # Rebase the open timestamp onto the virtual
                        # (batch-relative) clock the run loop uses.
                        clone.opened_at_s -= start
                self._run_call_virtual(runs[index], policy, clone)

        group_lists = list(groups.values())
        if scheduler.use_threads and len(group_lists) > 1:
            workers = min(len(group_lists), scheduler.max_concurrency)
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = [
                    pool.submit(run_group, indices) for indices in group_lists
                ]
                for future in futures:
                    future.result()
        else:
            for indices in group_lists:
                run_group(indices)

        # Phase 3 — list-schedule the batch onto the simulated workers.
        offsets, makespan = assign_workers(
            [run.duration_s for run in runs], scheduler.max_concurrency
        )

        # Phase 4 — deterministic replay in submission order: log
        # records, trace events, breaker merges and cache stores all
        # happen here, on the main thread, at rebased timestamps.
        for index, run in enumerate(runs):
            source = (
                runs[run.coalesced_with]
                if run.coalesced_with is not None
                else None
            )
            self._replay_run(run, start + offsets[index], policy, tracer, source)
            result.outcomes.append(run.outcome)
            if run.outcome.cache_hit:
                result.cache_hits += 1
            result.serial_s += run.duration_s
        result.parallel_s = makespan
        self.clock_s = start + makespan

    def _run_call_virtual(
        self,
        run: _CallRun,
        policy: InvocationPolicy,
        breaker: Optional[CircuitBreaker],
    ) -> None:
        """The retry loop of one batch member, on a batch-relative clock.

        Mirrors :meth:`_invoke_live` exactly, but mutates nothing
        shared: attempts, events and breaker marks accumulate on the
        :class:`_CallRun` for later replay.  ``breaker`` is a private
        rebased clone (or None)."""
        call = run.call
        retry = policy.retry
        outcome = run.outcome
        vclock = 0.0
        for attempt in range(1, retry.max_attempts + 1):
            backoff = (
                retry.backoff_before(attempt, key=call.service)
                if attempt > 1
                else 0.0
            )
            if breaker is not None and not breaker.allow(vclock + backoff):
                outcome.short_circuited = True
                outcome.fault = CircuitOpenFault(call.service)
                run.events.append(
                    (vclock, EVENT_SHORT_CIRCUIT, {"service": call.service})
                )
                break
            if attempt > 1:
                outcome.backoff_s += backoff
                vclock += backoff
                outcome.retries += 1
                run.events.append(
                    (
                        vclock,
                        EVENT_BACKOFF,
                        {"seconds": backoff, "before_attempt": attempt},
                    )
                )
            outcome.attempts += 1
            run.events.append(
                (
                    vclock,
                    EVENT_ATTEMPT,
                    {"attempt": attempt, "service": call.service},
                )
            )
            raw = self._execute_raw(call, retry.timeout_s)
            vclock += raw.charged_s
            run.attempts.append((attempt, raw))
            if raw.fault is not None:
                outcome.faults += 1
                outcome.fault = raw.fault
                outcome.fault_time_s += raw.charged_s
                run.events.append(
                    (
                        vclock,
                        EVENT_FAULT,
                        {
                            "attempt": attempt,
                            "kind": (
                                "timeout"
                                if isinstance(raw.fault, TimeoutFault)
                                else "fault"
                            ),
                            "service": call.service,
                        },
                    )
                )
                run.breaker_marks.append((vclock, False))
                if breaker is not None and breaker.record_failure(vclock):
                    outcome.breaker_trips += 1
                    run.events.append(
                        (vclock, EVENT_BREAKER_TRIP, {"service": call.service})
                    )
                continue
            run.breaker_marks.append((vclock, True))
            outcome.fault = None
            break
        run.duration_s = vclock

    def _replay_run(
        self,
        run: _CallRun,
        base: float,
        policy: InvocationPolicy,
        tracer: AnyTracer,
        source: Optional[_CallRun],
    ) -> None:
        """Account one batch member at its scheduled start time ``base``.

        Emits the call's ``invocation`` span and events with the bus
        clock temporarily rewound to the call's virtual timestamps (the
        batch members' intervals legitimately overlap), appends its log
        records in attempt order, merges its breaker marks into the
        shared breaker, and stores a successful reply in the cache."""
        call = run.call
        outcome = run.outcome
        self.clock_s = base
        with tracer.span(
            INVOCATION, service=call.service, call_uid=call.call_node_id
        ) as span:
            if outcome.cache_hit:
                tracer.event(EVENT_CACHE_HIT, service=call.service)
            elif source is not None:
                # Coalesced duplicate: a deferred cache lookup — the
                # prototype ran and (on success) stored its reply
                # during its own replay, strictly earlier in
                # submission order.
                assert self.cache is not None and run.key is not None
                hit = self.cache.lookup(run.key, base)
                if hit is not None:
                    outcome.reply = hit
                    outcome.cache_hit = True
                    tracer.event(EVENT_CACHE_HIT, service=call.service)
                else:
                    # The prototype faulted; the duplicate shares its
                    # fate without charging any time (it never ran).
                    outcome.fault = source.outcome.fault
                    outcome.short_circuited = source.outcome.short_circuited
            else:
                for rel_s, name, tags in run.events:
                    self.clock_s = base + rel_s
                    tracer.event(name, **tags)
                for attempt, raw in run.attempts:
                    record = self._record_raw(call, raw, attempt)
                    if raw.fault is None:
                        outcome.reply = raw.reply
                        outcome.record = record
                if policy.breaker is not None:
                    shared = self.breaker_for(call.service, policy.breaker)
                    for rel_s, succeeded in run.breaker_marks:
                        if succeeded:
                            shared.record_success()
                        else:
                            shared.record_failure(base + rel_s)
                if (
                    run.key is not None
                    and outcome.reply is not None
                    and self.cache is not None
                ):
                    self.cache.store(
                        run.key, outcome.reply, base + run.duration_s
                    )
            if span is not None and outcome.fault is not None:
                span.tags.setdefault(
                    "fault_kind",
                    "short_circuit"
                    if outcome.short_circuited
                    else (
                        "timeout"
                        if isinstance(outcome.fault, TimeoutFault)
                        else "fault"
                    ),
                )
            self.clock_s = base + run.duration_s

    def _attempt(
        self,
        service_name: str,
        parameters: Sequence[Node],
        call_node_id: Optional[int] = None,
        pushed: Optional[TreePattern] = None,
        push_mode: PushMode = PushMode.NONE,
        anchor_edge: EdgeKind = EdgeKind.CHILD,
        attempt: int = 1,
        timeout_s: Optional[float] = None,
    ) -> tuple[CallReply, InvocationRecord]:
        """One attempt.  Faults are logged (with the fault flag set and
        their request bytes / simulated time charged) and re-raised."""
        call = ServiceCall(
            service=service_name,
            parameters=parameters,
            call_node_id=call_node_id,
            pushed=pushed,
            push_mode=push_mode,
            anchor_edge=anchor_edge,
        )
        raw = self._execute_raw(call, timeout_s)
        record = self._record_raw(call, raw, attempt)
        self.clock_s += record.simulated_time_s
        if raw.fault is not None:
            raise raw.fault
        assert raw.reply is not None
        return raw.reply, record

    def _execute_raw(
        self, call: ServiceCall, timeout_s: Optional[float]
    ) -> _RawAttempt:
        """Run the service once without touching any shared bus state.

        Pure with respect to the bus (no log append, no clock advance,
        no breaker update), which is what allows batch dispatch to run
        it on worker threads and replay the accounting deterministically
        afterwards."""
        service = self.registry.resolve(call.service)
        request_bytes = sum(serialized_size(p) for p in call.parameters)
        pushed_text: Optional[str] = None
        if call.pushed is not None and call.push_mode is not PushMode.NONE:
            pushed_text = call.pushed.to_string()
            request_bytes += len(pushed_text.encode("utf-8"))
        try:
            reply = service.invoke(
                call.parameters,
                pushed=call.pushed,
                push_mode=call.push_mode,
                anchor_edge=call.anchor_edge,
            )
        except ServiceFault as fault:
            return _RawAttempt(
                request_bytes=request_bytes,
                response_bytes=0,
                service_latency_s=service.latency_s,
                charged_s=self._fault_charge(
                    fault, service, request_bytes, timeout_s
                ),
                pushed_text=pushed_text,
                fault=fault,
            )
        response_bytes = self._response_bytes(reply)
        simulated = (
            service.latency_s
            + self.log.network.transfer_time(request_bytes)
            + self.log.network.transfer_time(response_bytes)
        )
        if timeout_s is not None and simulated > timeout_s:
            # The reply exists but arrived past the deadline: the caller
            # never sees it, waits exactly ``timeout_s``, and gets a fault.
            fault = TimeoutFault(
                f"service {call.service!r} missed its "
                f"{timeout_s:.3f}s deadline ({simulated:.3f}s simulated)"
            )
            return _RawAttempt(
                request_bytes=request_bytes,
                response_bytes=0,
                service_latency_s=service.latency_s,
                charged_s=timeout_s,
                pushed_text=pushed_text,
                fault=fault,
            )
        return _RawAttempt(
            request_bytes=request_bytes,
            response_bytes=response_bytes,
            service_latency_s=service.latency_s,
            charged_s=simulated,
            pushed_text=pushed_text,
            reply=reply,
            new_calls=sum(
                1
                for tree in reply.forest
                for node in tree.iter_subtree()
                if node.is_function
            ),
        )

    def _fault_charge(
        self,
        fault: ServiceFault,
        service: Service,
        request_bytes: int,
        timeout_s: Optional[float],
    ) -> float:
        # A timed-out attempt costs exactly the missed deadline; any
        # other fault costs the round-trip latency plus the request
        # transfer (the request was shipped before the failure).
        if isinstance(fault, TimeoutFault) and timeout_s is not None:
            return timeout_s
        return service.latency_s + self.log.network.transfer_time(request_bytes)

    def _record_raw(
        self, call: ServiceCall, raw: _RawAttempt, attempt: int
    ) -> InvocationRecord:
        """Append one measured attempt to the log (no clock advance)."""
        if raw.fault is not None:
            return self.log.record(
                service_name=call.service,
                call_node_id=call.call_node_id,
                request_bytes=raw.request_bytes,
                response_bytes=0,
                service_latency_s=raw.service_latency_s,
                pushed_query=raw.pushed_text,
                push_mode=PushMode.NONE.value,
                returned_bindings=False,
                new_calls=0,
                fault=True,
                fault_kind=(
                    "timeout" if isinstance(raw.fault, TimeoutFault) else "fault"
                ),
                attempt=attempt,
                charged_time_s=raw.charged_s,
            )
        assert raw.reply is not None
        return self.log.record(
            service_name=call.service,
            call_node_id=call.call_node_id,
            request_bytes=raw.request_bytes,
            response_bytes=raw.response_bytes,
            service_latency_s=raw.service_latency_s,
            pushed_query=raw.pushed_text,
            push_mode=raw.reply.push_mode.value,
            returned_bindings=raw.reply.is_bindings,
            new_calls=raw.new_calls,
            attempt=attempt,
        )

    @staticmethod
    def _response_bytes(reply: CallReply) -> int:
        size = forest_size_bytes(reply.forest)
        if reply.bindings is not None:
            for row in reply.bindings:
                # <tuple><x>v</x>...</tuple> — the paper's reply shape.
                size += len("<tuple></tuple>")
                for variable, value in row.values:
                    size += len(
                        f"<{variable}>{value}</{variable}>".encode("utf-8")
                    )
        return size
