"""The Web-service abstraction and call replies.

The paper's documents embed calls to SOAP Web services; here a
:class:`Service` is any object able to *produce* a result forest from
parameter subtrees.  The base class implements the reply protocols the
engine needs:

* a **plain** invocation returns the full result forest;
* a **pushed** invocation (Section 7) ships a subquery along with the
  call; a push-capable service evaluates it over its own result and
  returns either

  - the *filtered forest* — only the result trees that (may) contribute
    to the pushed pattern, or
  - *bindings* — tuples of values for the pushed pattern's result
    variables, "and not restaurant elements" as the paper puts it.

A result tree that still contains function nodes can never be filtered
out nor turned into bindings: the embedded calls might later produce
matching data, so the service conservatively keeps such trees (this is
what keeps pushing *safe* with intensional answers).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Optional, Sequence

from ..axml.node import Node
from ..pattern.match import Matcher
from ..pattern.nodes import EdgeKind
from ..pattern.pattern import TreePattern
from ..schema.schema import FunctionSignature


class PushMode(enum.Enum):
    """How much work is pushed to the service provider (Section 7)."""

    NONE = "none"
    FILTERED = "filtered"
    BINDINGS = "bindings"


@dataclasses.dataclass(frozen=True)
class BindingRow:
    """One tuple of a bindings reply: variable name -> value."""

    values: tuple[tuple[str, str], ...]

    def as_dict(self) -> dict[str, str]:
        return dict(self.values)


@dataclasses.dataclass
class CallReply:
    """What a service sends back for one invocation."""

    forest: list[Node]
    bindings: Optional[list[BindingRow]] = None
    pushed: Optional[TreePattern] = None
    push_mode: PushMode = PushMode.NONE

    @property
    def is_bindings(self) -> bool:
        return self.bindings is not None


class Service:
    """Base class for (mock) Web services.

    Subclasses implement :meth:`produce`.  ``latency_s`` is the simulated
    fixed cost of one round trip; the per-byte component is owned by the
    network model (:mod:`repro.services.simulation`).
    """

    def __init__(
        self,
        name: str,
        signature: Optional[FunctionSignature] = None,
        latency_s: float = 0.05,
        supports_push: bool = True,
    ) -> None:
        self.name = name
        self.signature = signature
        self.latency_s = latency_s
        self.supports_push = supports_push
        self.invocation_count = 0

    # -- to be provided by subclasses ----------------------------------------

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        """Compute the full result forest for the given parameters.

        Returned trees must be fresh (detached, reusable nowhere else):
        they will be spliced into the caller's document.
        """
        raise NotImplementedError

    # -- the reply protocol -------------------------------------------------------

    def invoke(
        self,
        parameters: Sequence[Node],
        pushed: Optional[TreePattern] = None,
        push_mode: PushMode = PushMode.NONE,
        anchor_edge: EdgeKind = EdgeKind.CHILD,
    ) -> CallReply:
        self.invocation_count += 1
        forest = self.produce(parameters)
        if pushed is None or push_mode is PushMode.NONE or not self.supports_push:
            return CallReply(forest=forest)
        if push_mode is PushMode.BINDINGS:
            return self._bindings_reply(forest, pushed, anchor_edge)
        return self._filtered_reply(forest, pushed, anchor_edge)

    def _filtered_reply(
        self, forest: list[Node], pushed: TreePattern, anchor_edge: EdgeKind
    ) -> CallReply:
        matcher = Matcher(pushed)
        kept: list[Node] = []
        for tree in forest:
            if _has_function_nodes(tree):
                kept.append(tree)  # cannot be ruled out yet
                continue
            if self._tree_matches(matcher, tree, anchor_edge):
                kept.append(tree)
        return CallReply(
            forest=kept, pushed=pushed, push_mode=PushMode.FILTERED
        )

    def _bindings_reply(
        self, forest: list[Node], pushed: TreePattern, anchor_edge: EdgeKind
    ) -> CallReply:
        if any(_has_function_nodes(tree) for tree in forest):
            # Intensional result: bindings would lose future matches, so
            # degrade gracefully to the filtered-forest protocol.
            return self._filtered_reply(forest, pushed, anchor_edge)
        matcher = Matcher(pushed)
        matches = matcher.evaluate_forest(forest, anchor_edge=anchor_edge)
        rows = [
            BindingRow(values=row.bindings) for row in matches
        ]
        # Deduplicate on binding values (the reply carries no node ids).
        unique: dict[tuple[tuple[str, str], ...], BindingRow] = {
            row.values: row for row in rows
        }
        return CallReply(
            forest=[],
            bindings=list(unique.values()),
            pushed=pushed,
            push_mode=PushMode.BINDINGS,
        )

    @staticmethod
    def _tree_matches(
        matcher: Matcher, tree: Node, anchor_edge: EdgeKind
    ) -> bool:
        return bool(matcher.evaluate_forest([tree], anchor_edge=anchor_edge))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


def _has_function_nodes(tree: Node) -> bool:
    return any(node.is_function for node in tree.iter_subtree())


class CallableService(Service):
    """A service backed by a plain Python callable.

    The callable receives the parameter subtrees and returns a fresh
    result forest.
    """

    def __init__(
        self,
        name: str,
        producer: Callable[[Sequence[Node]], list[Node]],
        signature: Optional[FunctionSignature] = None,
        latency_s: float = 0.05,
        supports_push: bool = True,
    ) -> None:
        super().__init__(
            name,
            signature=signature,
            latency_s=latency_s,
            supports_push=supports_push,
        )
        self._producer = producer

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        return self._producer(parameters)
