"""Resilient invocation policies: retry, backoff, circuit breaking.

The paper's experiments assume well-behaved services; a production AXML
evaluator cannot.  Remote services time out, flake and fail — and
because invoking a call *rewrites the document* (Definition 2), a
mishandled fault silently changes query answers.  This module holds the
policy objects of the resilience layer:

* :class:`RetryPolicy` — bounded re-attempts with exponential backoff
  and *deterministic* jitter (simulations must stay reproducible), plus
  an optional per-call simulated timeout;
* :class:`CircuitBreaker` — a per-service CLOSED/OPEN/HALF_OPEN state
  machine that stops hammering a service after a run of consecutive
  faults and probes it again after a simulated cool-down;
* :class:`ResilientOutcome` — the full accounting of one resilient
  invocation (attempts, faults, backoff, breaker activity), consumed by
  the engine's metrics.

* :class:`InvocationPolicy` — the retry policy and the (optional)
  breaker policy bundled into the one object
  :meth:`repro.services.registry.ServiceBus.invoke` accepts.

The mechanics (the attempt loop itself) live on
:meth:`repro.services.registry.ServiceBus.invoke`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Optional, TYPE_CHECKING

from .catalog import ServiceFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .service import CallReply
    from .simulation import InvocationRecord


class CircuitOpenFault(ServiceFault):
    """Raised when a service's circuit breaker short-circuits the call.

    No network traffic happens (and nothing is logged): the breaker
    answers *instead of* the service.
    """

    def __init__(self, service_name: str) -> None:
        super().__init__(f"circuit breaker open for service {service_name!r}")
        self.service_name = service_name


def deterministic_jitter(seed: int, key: str, attempt: int) -> float:
    """A reproducible pseudo-random unit float for backoff jitter.

    Hash-derived rather than drawn from a shared RNG so that the jitter
    of one call never depends on how many other calls ran before it —
    simulated times stay comparable across strategies.
    """
    digest = hashlib.sha256(f"{seed}:{key}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How (and how often) a faulted invocation is re-attempted.

    ``max_attempts`` bounds the total tries (1 = no retry).  The wait
    before attempt ``k`` (k >= 2) is::

        min(base_backoff_s * backoff_multiplier**(k - 2), max_backoff_s)
            * (1 + jitter_fraction * jitter)

    with ``jitter`` a deterministic unit float derived from
    ``(jitter_seed, service name, k)``.  ``timeout_s``, when set, is the
    simulated per-attempt deadline: an attempt whose simulated time
    (latency + transfer) exceeds it is charged exactly ``timeout_s`` and
    counted as a :class:`~repro.services.catalog.TimeoutFault`.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.1
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 5.0
    jitter_fraction: float = 0.1
    jitter_seed: int = 2004
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff_before(self, attempt: int, key: str = "") -> float:
        """Simulated seconds to wait before attempt ``attempt`` (>= 2)."""
        if attempt < 2:
            return 0.0
        base = self.base_backoff_s * self.backoff_multiplier ** (attempt - 2)
        base = min(base, self.max_backoff_s)
        jitter = deterministic_jitter(self.jitter_seed, key, attempt)
        return base * (1.0 + self.jitter_fraction * jitter)

    def single_attempt(self) -> "RetryPolicy":
        """This policy reduced to one try (used by non-RETRY fault policies)."""
        if self.max_attempts == 1:
            return self
        return dataclasses.replace(self, max_attempts=1)


@dataclasses.dataclass(frozen=True)
class InvocationPolicy:
    """Everything the bus needs to know to invoke one call resiliently.

    The single policy object of the unified
    :meth:`~repro.services.registry.ServiceBus.invoke` entry point:
    bundles the retry/backoff/timeout loop with the (optional)
    per-service circuit breaker.  The default is the resilient
    default — three attempts, no breaker.
    """

    retry: RetryPolicy = RetryPolicy()
    breaker: Optional["CircuitBreakerPolicy"] = None

    def __post_init__(self) -> None:
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError(
                f"InvocationPolicy.retry must be a RetryPolicy, "
                f"got {type(self.retry).__name__}"
            )

    @classmethod
    def single_attempt(cls) -> "InvocationPolicy":
        """One try, no breaker — the old plain-``invoke`` semantics."""
        return cls(retry=RetryPolicy(max_attempts=1))


class BreakerState(enum.Enum):
    """The classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclasses.dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Per-service breaker tunables.

    ``failure_threshold`` consecutive faults open the circuit; while
    open, invocations short-circuit with :class:`CircuitOpenFault`.
    After ``reset_after_s`` simulated seconds the breaker half-opens and
    lets one probe through: success closes it, a fault re-opens it.
    ``reset_after_s=None`` keeps an open breaker open forever (until
    :meth:`CircuitBreaker.reset`).
    """

    failure_threshold: int = 5
    reset_after_s: Optional[float] = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")


class CircuitBreaker:
    """Consecutive-fault breaker for one service (state lives on the bus)."""

    def __init__(self, policy: CircuitBreakerPolicy) -> None:
        self.policy = policy
        self.state = BreakerState.CLOSED
        self.consecutive_faults = 0
        self.opened_at_s: Optional[float] = None
        self.trips = 0

    def allow(self, now_s: float) -> bool:
        """May an invocation proceed at simulated time ``now_s``?"""
        if self.state is BreakerState.OPEN:
            reset_after = self.policy.reset_after_s
            if (
                reset_after is not None
                and self.opened_at_s is not None
                and now_s >= self.opened_at_s + reset_after
            ):
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_faults = 0
        self.opened_at_s = None

    def record_failure(self, now_s: float) -> bool:
        """Account one fault; returns True when this fault trips the breaker."""
        self.consecutive_faults += 1
        should_open = (
            self.state is BreakerState.HALF_OPEN
            or self.consecutive_faults >= self.policy.failure_threshold
        )
        if should_open and self.state is not BreakerState.OPEN:
            self.state = BreakerState.OPEN
            self.opened_at_s = now_s
            self.trips += 1
            return True
        return False

    def reset(self) -> None:
        self.record_success()

    def clone(self) -> "CircuitBreaker":
        """An independent copy of the current state.

        Concurrent batch dispatch gates every call of a batch against
        the breaker state *at dispatch time*: each call retries against
        its own clone (a sibling's trip cannot retroactively reject a
        call already in flight) and the clones' fault/success events are
        merged back into the shared breaker afterwards.
        """
        twin = CircuitBreaker(self.policy)
        twin.state = self.state
        twin.consecutive_faults = self.consecutive_faults
        twin.opened_at_s = self.opened_at_s
        twin.trips = self.trips
        return twin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self.state.value}, "
            f"faults={self.consecutive_faults}, trips={self.trips})"
        )


@dataclasses.dataclass
class ResilientOutcome:
    """Everything one resilient invocation did, successful or not.

    ``reply``/``record`` are None when every attempt faulted (or the
    breaker short-circuited); ``fault`` then holds the last exception.
    ``fault_time_s`` is the simulated time spent inside *failed*
    attempts and ``backoff_s`` the simulated time spent waiting between
    attempts — both must show up in round accounting even though no
    data arrived.
    """

    reply: Optional["CallReply"] = None
    record: Optional["InvocationRecord"] = None
    attempts: int = 0
    retries: int = 0
    faults: int = 0
    backoff_s: float = 0.0
    fault_time_s: float = 0.0
    breaker_trips: int = 0
    short_circuited: bool = False
    cache_hit: bool = False
    """The reply came from the bus's :class:`~repro.services.scheduler.
    CallCache`: no attempt ran, nothing was shipped or logged, and
    ``record`` is None (a hit costs zero simulated time)."""
    fault: Optional[ServiceFault] = None

    @property
    def succeeded(self) -> bool:
        return self.reply is not None

    @property
    def simulated_time_s(self) -> float:
        """Total simulated wall time of the whole attempt sequence."""
        total = self.fault_time_s + self.backoff_s
        if self.record is not None:
            total += self.record.simulated_time_s
        return total
