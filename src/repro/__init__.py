"""repro — Lazy Query Evaluation for Active XML.

A from-scratch reproduction of Abiteboul, Benjelloun, Cautis, Manolescu,
Milo & Preda, *"Lazy Query Evaluation for Active XML"*, SIGMOD 2004.

Quickstart — the one-shot facade builds the registry, bus and engine
for you::

    import repro
    from repro import E, V, C, TableService

    outcome = repro.evaluate(
        "/hotels/hotel[...]",
        document,
        services=[TableService("getNearbyRestos", {...})],
    )
    print(outcome.value_rows(), outcome.metrics.summary())

Standing queries use the same front door: ``repro.subscribe`` returns
a live :class:`Subscription` whose answer refreshes as the document
mutates, and :class:`QueryServer` hosts many subscriptions from many
tenants over one shared bus, batching their refresh work per round.

Power users construct :class:`LazyQueryEvaluator` over an explicit
:class:`ServiceBus` (e.g. to share breaker state across evaluations),
and attach a :class:`repro.obs.TraceSink` via
``EngineConfig(trace=...)`` to see where each round's time went.

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced evaluation.
"""

from .axml import (
    Activation,
    C,
    Document,
    DocumentStats,
    E,
    Node,
    NodeKind,
    V,
    build_document,
    parse_document,
    serialize_document,
)
from .facade import evaluate, subscribe
from .lazy import (
    BindingsOverlay,
    ContinuousQuery,
    compare_strategies,
    format_comparison,
    format_trace_profile,
    EngineConfig,
    EvaluationOutcome,
    FGuide,
    FaultPolicy,
    LazyQueryEvaluator,
    Metrics,
    NFQBuilder,
    Strategy,
    TypingMode,
    build_nfqs,
    compute_layers,
    linear_path_queries,
)
from .obs import (
    InMemorySink,
    JsonlSink,
    NullTracer,
    Span,
    SpanEvent,
    TeeSink,
    TraceSink,
    Tracer,
    format_phase_profile,
    load_jsonl_spans,
    phase_profile,
    verify_nesting,
)
from .pattern import (
    EdgeKind,
    MatchOptions,
    MatchSet,
    Matcher,
    TreePattern,
    parse_pattern,
    snapshot_result,
)
from .serve import (
    AnswerDelta,
    AnswerStream,
    QueryServer,
    RefreshOutcome,
    RefreshStatus,
    RoundReport,
    Subscription,
    TenantAccount,
    TenantPolicy,
)
from .schema import (
    ExactSatisfiability,
    FunctionSignature,
    LenientSatisfiability,
    Schema,
    TerminationReport,
    analyze_termination,
    guaranteed_terminating,
    parse_schema,
)
from .services import (
    CallableService,
    CircuitBreakerPolicy,
    CircuitOpenFault,
    FlakyService,
    InvocationPolicy,
    NetworkModel,
    PushMode,
    RetryPolicy,
    SequenceService,
    Service,
    ServiceBus,
    ServiceCall,
    ServiceFault,
    ServiceRegistry,
    SlowService,
    StaticService,
    TableService,
    TimeoutFault,
    make_signature,
)

__version__ = "1.0.0"

__all__ = [
    "Activation",
    "AnswerDelta",
    "AnswerStream",
    "BindingsOverlay",
    "C",
    "CallableService",
    "CircuitBreakerPolicy",
    "CircuitOpenFault",
    "ContinuousQuery",
    "Document",
    "DocumentStats",
    "E",
    "EdgeKind",
    "EngineConfig",
    "EvaluationOutcome",
    "ExactSatisfiability",
    "FGuide",
    "FaultPolicy",
    "FlakyService",
    "FunctionSignature",
    "InMemorySink",
    "InvocationPolicy",
    "JsonlSink",
    "LazyQueryEvaluator",
    "LenientSatisfiability",
    "MatchOptions",
    "MatchSet",
    "Matcher",
    "Metrics",
    "NFQBuilder",
    "NetworkModel",
    "Node",
    "NodeKind",
    "NullTracer",
    "PushMode",
    "QueryServer",
    "RefreshOutcome",
    "RefreshStatus",
    "RetryPolicy",
    "RoundReport",
    "Schema",
    "SequenceService",
    "Service",
    "ServiceBus",
    "ServiceCall",
    "ServiceFault",
    "ServiceRegistry",
    "SlowService",
    "Span",
    "SpanEvent",
    "StaticService",
    "Strategy",
    "Subscription",
    "TableService",
    "TeeSink",
    "TenantAccount",
    "TenantPolicy",
    "TerminationReport",
    "TimeoutFault",
    "TraceSink",
    "Tracer",
    "TreePattern",
    "TypingMode",
    "V",
    "analyze_termination",
    "build_document",
    "build_nfqs",
    "compare_strategies",
    "compute_layers",
    "evaluate",
    "format_comparison",
    "format_phase_profile",
    "format_trace_profile",
    "guaranteed_terminating",
    "linear_path_queries",
    "load_jsonl_spans",
    "make_signature",
    "parse_document",
    "parse_pattern",
    "parse_schema",
    "phase_profile",
    "serialize_document",
    "snapshot_result",
    "subscribe",
    "verify_nesting",
    "__version__",
]
