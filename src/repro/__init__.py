"""repro — Lazy Query Evaluation for Active XML.

A from-scratch reproduction of Abiteboul, Benjelloun, Cautis, Manolescu,
Milo & Preda, *"Lazy Query Evaluation for Active XML"*, SIGMOD 2004.

Quickstart::

    from repro import (
        E, V, C, build_document, parse_pattern, parse_schema,
        ServiceRegistry, ServiceBus, TableService,
        LazyQueryEvaluator, EngineConfig, Strategy,
    )

    registry = ServiceRegistry([...])
    bus = ServiceBus(registry)
    engine = LazyQueryEvaluator(bus, config=EngineConfig(Strategy.LAZY_NFQ))
    outcome = engine.evaluate(parse_pattern("/hotels/hotel[...]"), document)
    print(outcome.value_rows(), outcome.metrics.summary())

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced evaluation.
"""

from .axml import (
    Activation,
    C,
    Document,
    DocumentStats,
    E,
    Node,
    NodeKind,
    V,
    build_document,
    parse_document,
    serialize_document,
)
from .lazy import (
    BindingsOverlay,
    ContinuousQuery,
    compare_strategies,
    format_comparison,
    EngineConfig,
    EvaluationOutcome,
    FGuide,
    FaultPolicy,
    LazyQueryEvaluator,
    Metrics,
    NFQBuilder,
    Strategy,
    TypingMode,
    build_nfqs,
    compute_layers,
    linear_path_queries,
)
from .pattern import (
    EdgeKind,
    MatchOptions,
    MatchSet,
    Matcher,
    TreePattern,
    parse_pattern,
    snapshot_result,
)
from .schema import (
    ExactSatisfiability,
    FunctionSignature,
    LenientSatisfiability,
    Schema,
    TerminationReport,
    analyze_termination,
    guaranteed_terminating,
    parse_schema,
)
from .services import (
    CallableService,
    CircuitBreakerPolicy,
    CircuitOpenFault,
    FlakyService,
    NetworkModel,
    PushMode,
    RetryPolicy,
    SequenceService,
    Service,
    ServiceBus,
    ServiceFault,
    ServiceRegistry,
    SlowService,
    StaticService,
    TableService,
    TimeoutFault,
    make_signature,
)

__version__ = "1.0.0"

__all__ = [
    "Activation",
    "BindingsOverlay",
    "C",
    "CallableService",
    "CircuitBreakerPolicy",
    "CircuitOpenFault",
    "ContinuousQuery",
    "Document",
    "DocumentStats",
    "E",
    "EdgeKind",
    "EngineConfig",
    "EvaluationOutcome",
    "ExactSatisfiability",
    "FGuide",
    "FaultPolicy",
    "FlakyService",
    "FunctionSignature",
    "LazyQueryEvaluator",
    "LenientSatisfiability",
    "MatchOptions",
    "MatchSet",
    "Matcher",
    "Metrics",
    "NFQBuilder",
    "NetworkModel",
    "Node",
    "NodeKind",
    "PushMode",
    "RetryPolicy",
    "Schema",
    "SequenceService",
    "Service",
    "ServiceBus",
    "ServiceFault",
    "ServiceRegistry",
    "SlowService",
    "StaticService",
    "Strategy",
    "TableService",
    "TerminationReport",
    "TimeoutFault",
    "TreePattern",
    "TypingMode",
    "V",
    "analyze_termination",
    "build_document",
    "build_nfqs",
    "compare_strategies",
    "compute_layers",
    "format_comparison",
    "guaranteed_terminating",
    "linear_path_queries",
    "make_signature",
    "parse_document",
    "parse_pattern",
    "parse_schema",
    "serialize_document",
    "snapshot_result",
    "__version__",
]
