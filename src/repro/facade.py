"""One-shot evaluation facade: the friendly front door of the system.

Most uses of the reproduction are "run this query over this document
against these services".  :func:`evaluate` does exactly that in one
call — it accepts queries as strings or :class:`TreePattern` s,
documents as XML text, root :class:`~repro.axml.node.Node` s or
:class:`~repro.axml.document.Document` s, and services as a list, a
:class:`~repro.services.registry.ServiceRegistry` or a fully-built
:class:`~repro.services.registry.ServiceBus` — and wires up the
registry, bus and engine internally.  :func:`subscribe` is the same
front door for *standing* queries: identical input coercion, but the
result is a live :class:`~repro.serve.Subscription` whose answer
refreshes as the document mutates.  Power users keep constructing
:class:`~repro.lazy.engine.LazyQueryEvaluator` (one-shot) or
:class:`~repro.serve.QueryServer` (many subscriptions, shared bus)
directly.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Union

from .axml.builder import build_document
from .axml.document import Document
from .axml.node import Node
from .axml.xmlio import parse_document
from .lazy.config import EngineConfig, Strategy
from .lazy.engine import EvaluationOutcome, LazyQueryEvaluator
from .obs.trace import NullTracer, TraceSink, Tracer
from .pattern.match import MatchOptions
from .pattern.parse import parse_pattern
from .pattern.pattern import TreePattern
from .schema.schema import Schema
from .services.registry import ServiceBus, ServiceRegistry, bus_of
from .services.service import Service

ServicesLike = Union[ServiceBus, ServiceRegistry, Iterable[Service]]


def evaluate(
    query: Union[TreePattern, str],
    document: Union[Document, Node, str],
    *,
    services: ServicesLike,
    strategy: Strategy = Strategy.LAZY_NFQ,
    config: Optional[EngineConfig] = None,
    schema: Optional[Schema] = None,
    match_options: Optional[MatchOptions] = None,
    trace: Union[TraceSink, Tracer, NullTracer, None] = None,
) -> EvaluationOutcome:
    """Evaluate ``query`` over ``document`` lazily, in one call.

    Args:
        query: a tree pattern, or its XPath-like string form.
        document: a :class:`Document`, a root :class:`Node`, or AXML
            text (parsed).  Mutated in place, like
            :meth:`LazyQueryEvaluator.evaluate`.
        services: the Web — a list of :class:`Service` s, a
            :class:`ServiceRegistry`, or an existing :class:`ServiceBus`
            (reused, preserving its log and breaker state).
        strategy: shorthand for ``EngineConfig(strategy=...)``; only
            meaningful when ``config`` is not given.
        config: a full :class:`EngineConfig`; overrides ``strategy``
            (passing both, with conflicting strategies, raises).
        schema: element content models for the typed modes.
        match_options: embedding semantics knobs.
        trace: a :class:`repro.obs.TraceSink` (or tracer) receiving the
            evaluation's span tree; shorthand for ``config.trace``.

    Returns:
        The :class:`EvaluationOutcome` — rows, metrics, rounds.
    """
    if not isinstance(strategy, Strategy):
        strategy = Strategy(strategy)
    if isinstance(query, str):
        query = parse_pattern(query)
    if isinstance(document, str):
        document = parse_document(document)
    elif isinstance(document, Node):
        document = build_document(document)
    if config is None:
        config = EngineConfig(strategy=strategy)
    elif strategy is not Strategy.LAZY_NFQ and config.strategy is not strategy:
        raise ValueError(
            f"conflicting strategies: strategy={strategy.value!r} but "
            f"config.strategy={config.strategy.value!r} — pass one or "
            f"the other"
        )
    if trace is not None:
        config = dataclasses.replace(config, trace=trace)
    engine = LazyQueryEvaluator(
        _bus_of(services),
        schema=schema,
        config=config,
        match_options=match_options,
    )
    return engine.evaluate(query, document)


def subscribe(
    query: Union[TreePattern, str],
    document: Union[Document, Node, str],
    *,
    services: ServicesLike,
    config: Optional[EngineConfig] = None,
    schema: Optional[Schema] = None,
    tenant: str = "default",
    name: Optional[str] = None,
    eager: bool = True,
    trace: Union[TraceSink, Tracer, NullTracer, None] = None,
    **unexpected,
):
    """Register a standing query and return a live ``Subscription``.

    The continuous-query counterpart of :func:`evaluate`: identical
    ``query``/``document``/``services`` coercion, but the result stays
    subscribed — ``sub.rows`` is the current answer, ``sub.refresh()``
    brings it up to date after document mutations, ``sub.stream``
    yields added/removed row deltas, and ``sub.cancel()`` ends it.

    Engine behaviour travels on exactly one ``config=``
    :class:`EngineConfig` (default :meth:`EngineConfig.serving`); loose
    engine keywords are rejected, naming the nearest config field.
    Each call builds a private single-tenant
    :class:`~repro.serve.QueryServer`; to host *many* subscriptions on
    one shared bus (and batch their refreshes), construct a
    :class:`~repro.serve.QueryServer` directly.

    Args:
        query: a tree pattern, or its XPath-like string form.
        document: a :class:`Document`, root :class:`Node`, or AXML
            text.  Mutated in place as the subscription refreshes.
        services: the Web — list of services, registry, or existing
            :class:`ServiceBus` (reused, preserving log and breakers).
        config: the single engine configuration object.
        schema: element content models for the typed modes.
        tenant: the admission/accounting bucket for this subscription.
        name: a label for traces and metrics (defaults to the query's).
        eager: evaluate immediately (default) or on first refresh.
        trace: span sink, shorthand for ``config.trace``.

    Returns:
        A :class:`repro.serve.Subscription`.
    """
    from .serve import QueryServer
    from .serve.server import reject_engine_kwargs

    reject_engine_kwargs("subscribe", unexpected)
    server = QueryServer(services, config=config, schema=schema, trace=trace)
    return server.subscribe(
        query, document, tenant=tenant, name=name, eager=eager
    )


def _bus_of(services: ServicesLike) -> ServiceBus:
    return bus_of(services)
