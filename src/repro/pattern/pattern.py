"""Tree patterns: the query objects of the paper.

A :class:`TreePattern` is a rooted tree of
:class:`~repro.pattern.nodes.PatternNode` objects with child/descendant
edges and a set of result nodes (Section 2).  The class carries the
structural utilities the relevance analysis needs: linear paths to nodes
(the ``q_v^lin`` of Section 4.2), subtree extraction (the ``sub_q_v`` of
Section 5), OR-expansion and rendering.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional

from .nodes import EdgeKind, PatternKind, PatternNode


@dataclasses.dataclass(frozen=True)
class LinearStep:
    """One step of a linear path: an edge plus a label constraint.

    ``label`` is ``None`` when the step matches any label (star or
    variable pattern nodes).
    """

    edge: EdgeKind
    label: Optional[str]


class TreePattern:
    """A (possibly extended) tree-pattern query."""

    def __init__(self, root: PatternNode, name: str = "query") -> None:
        if root.parent is not None:
            raise ValueError("pattern root must be detached")
        self.root = root
        self.name = name
        self.validate()

    # -- structure access ------------------------------------------------------

    def nodes(self) -> Iterator[PatternNode]:
        return self.root.iter_subtree()

    def result_nodes(self) -> list[PatternNode]:
        """Result nodes in a deterministic (document) order."""
        return [n for n in self.nodes() if n.is_result]

    def variables(self) -> list[str]:
        """Distinct variable names, in first-occurrence order."""
        seen: list[str] = []
        for node in self.nodes():
            if node.is_variable and node.label not in seen:
                seen.append(node.label)
        return seen

    def data_nodes(self) -> list[PatternNode]:
        return [n for n in self.nodes() if n.is_data_kind]

    def find_by_uid(self, uid: int) -> PatternNode:
        for node in self.nodes():
            if node.uid == uid:
                return node
        raise KeyError(f"no pattern node with uid {uid}")

    def find_by_origin(self, origin_uid: int) -> PatternNode:
        """Find the copy of an original node inside a cloned pattern."""
        for node in self.nodes():
            if node.origin == origin_uid or node.uid == origin_uid:
                return node
        raise KeyError(f"no pattern node originating from uid {origin_uid}")

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants of (extended) patterns."""
        # Note: value-rooted patterns are legal — they arise as sub_q_v
        # subqueries of leaf query nodes (Sections 5 and 7).
        if self.root.is_or or self.root.is_function:
            raise ValueError("pattern root must be a data-kind node")
        for node in self.nodes():
            if node.kind is PatternKind.VALUE and node.children:
                raise ValueError("value constants must be pattern leaves")
            if node.is_function and node.children:
                raise ValueError("function pattern nodes must be leaves")
            if node.is_or:
                if node.is_result:
                    raise ValueError("OR nodes cannot be result nodes")
                if not node.children:
                    raise ValueError("OR nodes need at least one alternative")

    # -- copying -----------------------------------------------------------------

    def clone(self, name: Optional[str] = None) -> "TreePattern":
        return TreePattern(self.root.clone(), name=name or self.name)

    # -- linear paths (Section 4.2) -----------------------------------------------

    def linear_steps_to(
        self, node: PatternNode, include_node: bool = False
    ) -> list[LinearStep]:
        """The linear path ``q_v^lin`` from the root to ``node``.

        The paper's ``q_v^lin`` runs from the root to ``v`` *not included*
        (Section 4.2); pass ``include_node=True`` for the variant that
        includes ``v`` itself (used for LPQ positions of the node).

        The root contributes the first step (with a ``CHILD`` edge by
        convention: a document path always starts at the root label).
        """
        chain = [node]
        chain.extend(node.iter_ancestors())
        chain.reverse()
        if not include_node:
            chain = chain[:-1]
        steps = []
        for pattern_node in chain:
            edge = pattern_node.edge if pattern_node.parent is not None else EdgeKind.CHILD
            steps.append(LinearStep(edge=edge, label=_label_constraint(pattern_node)))
        return steps

    def spine_nodes(self, node: PatternNode) -> list[PatternNode]:
        """Root-to-node chain (inclusive on both ends)."""
        chain = [node]
        chain.extend(node.iter_ancestors())
        chain.reverse()
        return chain

    # -- subtrees (Section 5 / Section 7) ---------------------------------------------

    def subtree_at(self, node: PatternNode, name: Optional[str] = None) -> "TreePattern":
        """``sub_q_v``: the query subtree rooted at ``node`` as a pattern.

        Used both for type-based pruning (does a function satisfy
        ``sub_q_v``?, Section 5) and as the subquery to push over a call
        (Section 7).
        """
        root = node.clone()
        # Re-rooting: the root's incoming edge is meaningless now.
        root.edge = EdgeKind.CHILD
        return TreePattern(root, name=name or f"{self.name}/sub@{node.uid}")

    # -- OR expansion ------------------------------------------------------------------

    def or_free_expansions(self) -> list["TreePattern"]:
        """All OR-free queries whose union this query denotes (Section 2).

        Exponential in the number of OR nodes; used for testing the OR
        semantics of the matcher, and for small reports.
        """
        roots = _expand_or(self.root)
        return [
            TreePattern(root, name=f"{self.name}#{i}")
            for i, root in enumerate(roots)
        ]

    # -- rendering ---------------------------------------------------------------------

    def to_string(self) -> str:
        return "/" + _render(self.root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreePattern({self.name!r}: {self.to_string()})"


def _label_constraint(node: PatternNode) -> Optional[str]:
    """The letter a linear step requires, or ``None`` for 'any label'."""
    if node.kind in (PatternKind.ELEMENT, PatternKind.VALUE):
        return node.label
    return None


def _render(node: PatternNode) -> str:
    token = node.render()
    if node.is_result:
        token += "!"
    if node.is_or:
        inner = " | ".join(_render(alt) for alt in node.children)
        return f"({inner})"
    out = [token]
    for child in node.children:
        sep = "" if child.edge is EdgeKind.CHILD else "//"
        out.append(f"[{sep}{_render(child)}]")
    return "".join(out)


def _expand_or(node: PatternNode) -> list[PatternNode]:
    """All OR-free clones of the subtree rooted at ``node``."""
    if node.is_or:
        expanded: list[PatternNode] = []
        for alt in node.children:
            for variant in _expand_or(alt):
                # The alternative takes the OR node's position and edge.
                variant.edge = node.edge
                expanded.append(variant)
        return expanded

    child_variants = [_expand_or(child) for child in node.children]
    combos = _cartesian(child_variants)
    out = []
    for combo in combos:
        copy = PatternNode(
            node.kind,
            node.label,
            edge=node.edge,
            is_result=node.is_result,
            function_names=node.function_names,
        )
        copy.origin = node.origin if node.origin is not None else node.uid
        for child in combo:
            # Clone at attach time: a variant may appear in many combos.
            copy.add_child(child.clone() if child.parent is not None else child)
        out.append(copy)
    return out


def _cartesian(groups: list[list[PatternNode]]) -> list[list[PatternNode]]:
    result: list[list[PatternNode]] = [[]]
    for group in groups:
        result = [prefix + [item] for prefix in result for item in group]
    return result
