"""Pattern-tree nodes for (extended) tree-pattern queries.

Section 2 of the paper defines queries as labelled trees whose nodes are:

* **constant** nodes — element names or data values;
* **variable** nodes — named variables; all occurrences of the same
  variable must map to data nodes with identical labels;
* **star** (``*``) nodes — match any data node.

Edges are *child* or *descendant* edges, and a distinguished set of nodes
are the *result* nodes.

"Extended queries" (end of Section 2) add two more node kinds used by the
relevance machinery:

* **OR** nodes — a choice between their children subtrees;
* **function** nodes — match function (service call) nodes in the
  document; a ``None`` name set is the star-labelled ``()`` matching any
  call, otherwise the set lists admissible service names (refined NFQs,
  Section 5).
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator, Optional, Sequence


class EdgeKind(enum.Enum):
    """How a pattern node hangs off its parent."""

    CHILD = "/"
    DESCENDANT = "//"


class PatternKind(enum.Enum):
    ELEMENT = "element"      # constant element label
    VALUE = "value"          # constant data value (leaf)
    VARIABLE = "variable"    # named variable
    STAR = "star"            # wildcard data node
    FUNCTION = "function"    # extended: matches a service-call node
    OR = "or"                # extended: choice between alternatives


_uid_counter = itertools.count(1)


class PatternNode:
    """One node of a tree pattern.

    Attributes:
        kind: the node kind (see :class:`PatternKind`).
        label: element name, value string or variable name (unused for
            star, function and OR nodes).
        function_names: for function nodes, the admissible service names
            (``None`` means the star call ``()`` of Section 3).
        edge: edge from the parent (``None`` on the root).
        children: for OR nodes these are the *alternatives*; for every
            other kind they are conjunctive sub-patterns.
        is_result: whether this node belongs to the result set.
        uid: process-unique id, giving pattern nodes a stable identity
            across copies (copies record their ``origin``).
    """

    __slots__ = (
        "kind",
        "label",
        "function_names",
        "edge",
        "children",
        "is_result",
        "uid",
        "origin",
        "parent",
    )

    def __init__(
        self,
        kind: PatternKind,
        label: str = "",
        *,
        edge: EdgeKind = EdgeKind.CHILD,
        children: Optional[Sequence["PatternNode"]] = None,
        is_result: bool = False,
        function_names: Optional[frozenset[str]] = None,
    ) -> None:
        self.kind = kind
        self.label = label
        self.function_names = function_names
        self.edge = edge
        self.children: list[PatternNode] = []
        self.is_result = is_result
        self.uid = next(_uid_counter)
        self.origin: Optional[int] = None
        self.parent: Optional[PatternNode] = None
        for child in children or ():
            self.add_child(child)

    # -- construction -------------------------------------------------------

    def add_child(self, child: "PatternNode") -> "PatternNode":
        if child.parent is not None:
            raise ValueError("pattern node already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    def remove_child(self, child: "PatternNode") -> None:
        self.children.remove(child)
        child.parent = None

    # -- predicates ---------------------------------------------------------

    @property
    def is_or(self) -> bool:
        return self.kind is PatternKind.OR

    @property
    def is_function(self) -> bool:
        return self.kind is PatternKind.FUNCTION

    @property
    def is_variable(self) -> bool:
        return self.kind is PatternKind.VARIABLE

    @property
    def is_data_kind(self) -> bool:
        """Can this pattern node only match data nodes?"""
        return self.kind in (
            PatternKind.ELEMENT,
            PatternKind.VALUE,
            PatternKind.VARIABLE,
            PatternKind.STAR,
        )

    # -- traversal ----------------------------------------------------------

    def iter_subtree(self) -> Iterator["PatternNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_ancestors(self) -> Iterator["PatternNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # -- copying ------------------------------------------------------------

    def clone(self) -> "PatternNode":
        """Deep copy; the copy records this node as its ``origin``."""
        copy = PatternNode(
            self.kind,
            self.label,
            edge=self.edge,
            is_result=self.is_result,
            function_names=self.function_names,
        )
        copy.origin = self.origin if self.origin is not None else self.uid
        for child in self.children:
            copy.add_child(child.clone())
        return copy

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        """A compact single-token rendering of this node alone."""
        if self.kind is PatternKind.ELEMENT:
            return self.label
        if self.kind is PatternKind.VALUE:
            return f'"{self.label}"'
        if self.kind is PatternKind.VARIABLE:
            return f"${self.label}"
        if self.kind is PatternKind.STAR:
            return "*"
        if self.kind is PatternKind.FUNCTION:
            if self.function_names is None:
                return "()"
            return "(" + "|".join(sorted(self.function_names)) + ")()"
        return "OR"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        marker = "!" if self.is_result else ""
        return f"PatternNode({self.render()}{marker}, uid={self.uid})"


# -- constructors -----------------------------------------------------------


def pelem(
    label: str,
    *children: PatternNode,
    edge: EdgeKind = EdgeKind.CHILD,
    result: bool = False,
) -> PatternNode:
    return PatternNode(
        PatternKind.ELEMENT, label, edge=edge, children=children, is_result=result
    )


def pvalue(text: object, *, edge: EdgeKind = EdgeKind.CHILD) -> PatternNode:
    return PatternNode(PatternKind.VALUE, str(text), edge=edge)


def pvar(
    name: str, *, edge: EdgeKind = EdgeKind.CHILD, result: bool = True
) -> PatternNode:
    return PatternNode(PatternKind.VARIABLE, name, edge=edge, is_result=result)


def pstar(
    *children: PatternNode,
    edge: EdgeKind = EdgeKind.CHILD,
    result: bool = False,
) -> PatternNode:
    return PatternNode(
        PatternKind.STAR, "*", edge=edge, children=children, is_result=result
    )


def pfunc(
    names: Optional[Sequence[str]] = None,
    *,
    edge: EdgeKind = EdgeKind.CHILD,
    result: bool = False,
) -> PatternNode:
    frozen = None if names is None else frozenset(names)
    return PatternNode(
        PatternKind.FUNCTION, "()", edge=edge, is_result=result, function_names=frozen
    )


def por(*alternatives: PatternNode, edge: EdgeKind = EdgeKind.CHILD) -> PatternNode:
    if len(alternatives) < 1:
        raise ValueError("an OR node needs at least one alternative")
    return PatternNode(PatternKind.OR, "|", edge=edge, children=alternatives)
