"""Tree-pattern containment, used for multi-query de-duplication.

Section 4.1 notes that the relevance machinery issues whole families of
NFQ queries whose evaluation can be optimised by "eliminating redundant
queries using containment checking as in [20]".  This module provides the
classical homomorphism test: a pattern ``q1`` is contained in ``q2``
(``q1 ⊆ q2``: every result of ``q1`` is a result of ``q2`` on every
document) whenever there is a homomorphism from ``q2`` into ``q1`` that

* maps root to root and result nodes onto result nodes,
* maps a child edge onto a child edge and a descendant edge onto any
  downward path of length >= 1,
* maps constants onto equal constants, stars onto anything, and function
  nodes onto function nodes with a narrower (or equal) name set.

The test is **sound** (it never claims containment that does not hold)
and complete for the child-only fragment; with descendant edges it is the
standard sound approximation, which is all de-duplication needs.  Queries
with variables or OR nodes are conservatively only de-duplicated when
structurally identical.
"""

from __future__ import annotations

from .nodes import EdgeKind, PatternKind, PatternNode
from .pattern import TreePattern


def subsumes(general: TreePattern, specific: TreePattern) -> bool:
    """Is ``specific ⊆ general`` (so ``specific`` is redundant in a union)?"""
    if _has_unsupported(general) or _has_unsupported(specific):
        return structurally_identical(general, specific)
    memo: dict[tuple[int, int], bool] = {}
    return _hom(general.root, specific.root, memo, require_root=True)


def structurally_identical(a: TreePattern, b: TreePattern) -> bool:
    """Exact isomorphism respecting child order-insensitivity."""
    return _identical(a.root, b.root)


def dedupe_patterns(patterns: list[TreePattern]) -> list[TreePattern]:
    """Drop queries subsumed by another one in the list.

    The result preserves order; when two queries are equivalent the first
    occurrence is kept.  Meant for unions of relevance queries: removing
    a subsumed query never changes the union of the results.
    """
    kept: list[TreePattern] = []
    for candidate in patterns:
        redundant = False
        for chosen in kept:
            if subsumes(chosen, candidate):
                redundant = True
                break
        if not redundant:
            kept = [
                existing
                for existing in kept
                if not subsumes(candidate, existing)
            ]
            kept.append(candidate)
    return kept


# -- internals -----------------------------------------------------------------


def _has_unsupported(pattern: TreePattern) -> bool:
    return any(
        n.kind in (PatternKind.OR, PatternKind.VARIABLE) for n in pattern.nodes()
    )


def _label_compatible(general: PatternNode, specific: PatternNode) -> bool:
    """Can the general node's test map onto the specific node's test?

    Everything the specific node matches must also be matched by the
    general node.
    """
    gk, sk = general.kind, specific.kind
    if gk is PatternKind.STAR:
        return sk in (PatternKind.STAR, PatternKind.ELEMENT, PatternKind.VALUE)
    if gk is PatternKind.ELEMENT:
        return sk is PatternKind.ELEMENT and general.label == specific.label
    if gk is PatternKind.VALUE:
        return sk is PatternKind.VALUE and general.label == specific.label
    if gk is PatternKind.FUNCTION:
        if sk is not PatternKind.FUNCTION:
            return False
        if general.function_names is None:
            return True
        if specific.function_names is None:
            return False
        return specific.function_names <= general.function_names
    raise AssertionError(f"unsupported kind {gk}")


def _hom(
    general: PatternNode,
    specific: PatternNode,
    memo: dict[tuple[int, int], bool],
    require_root: bool = False,
) -> bool:
    key = (general.uid, specific.uid)
    cached = memo.get(key)
    if cached is not None:
        return cached
    memo[key] = False  # cycle guard (patterns are trees, but cheap safety)

    outcome = _label_compatible(general, specific)
    if outcome and general.is_result and not specific.is_result:
        outcome = False
    if outcome:
        for gchild in general.children:
            if not _child_image_exists(gchild, specific, memo):
                outcome = False
                break
    memo[key] = outcome
    if require_root and outcome:
        # root must map to root: that is exactly what we checked.
        return outcome
    return outcome


def _child_image_exists(
    gchild: PatternNode,
    specific_parent: PatternNode,
    memo: dict[tuple[int, int], bool],
) -> bool:
    if gchild.edge is EdgeKind.CHILD:
        return any(
            schild.edge is EdgeKind.CHILD and _hom(gchild, schild, memo)
            for schild in specific_parent.children
        )
    # Descendant edge: any node strictly below the image works.
    stack = list(specific_parent.children)
    while stack:
        snode = stack.pop()
        if _hom(gchild, snode, memo):
            return True
        stack.extend(snode.children)
    return False


def _identical(a: PatternNode, b: PatternNode) -> bool:
    if (
        a.kind is not b.kind
        or a.label != b.label
        or a.edge is not b.edge
        or a.is_result != b.is_result
        or a.function_names != b.function_names
        or len(a.children) != len(b.children)
    ):
        return False
    return all(_identical(x, y) for x, y in zip(a.children, b.children))
