"""Tree-pattern queries: model, parser, matcher, containment."""

from .containment import dedupe_patterns, structurally_identical, subsumes
from .match import (
    MatchCounter,
    Matcher,
    MatchOptions,
    MatchSet,
    ResultRow,
    has_match,
    snapshot_result,
)
from .multimatch import GroupPassResult, LabelSummary, PatternGroup
from .nodes import (
    EdgeKind,
    PatternKind,
    PatternNode,
    pelem,
    pfunc,
    por,
    pstar,
    pvalue,
    pvar,
)
from .parse import PatternSyntaxError, parse_pattern
from .pattern import LinearStep, TreePattern

__all__ = [
    "EdgeKind",
    "GroupPassResult",
    "LabelSummary",
    "LinearStep",
    "MatchCounter",
    "MatchOptions",
    "MatchSet",
    "Matcher",
    "PatternGroup",
    "PatternKind",
    "PatternNode",
    "PatternSyntaxError",
    "ResultRow",
    "TreePattern",
    "dedupe_patterns",
    "has_match",
    "parse_pattern",
    "pelem",
    "pfunc",
    "por",
    "pstar",
    "pvalue",
    "pvar",
    "snapshot_result",
    "structurally_identical",
    "subsumes",
]
