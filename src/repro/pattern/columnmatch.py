"""Column-native pattern evaluation: whole match plans over arena slots.

PR 9's arena made *candidate enumeration* a column scan, but every
surviving candidate was still materialised into a ``Node`` and judged
by the object-graph matcher — attribute chasing, property calls and
per-node counter bumps on millions of slots.  This module compiles a
:class:`~repro.pattern.pattern.TreePattern` into a slot-level plan and
evaluates the *entire* pattern in slot space: the memoised boolean
``can-match`` phase, the existence semijoins answering descendant-edge
conditions (with the function-parameter barrier and ``ANY_DATA``
wildcard kinds), and the enumeration of embeddings all run over the
arena's ``kind/label/first_child/next_sibling`` int columns.  ``Node``
objects are touched exactly once per *final* row, when the caller
converts slot rows into :class:`~repro.pattern.match.ResultRow`s.

The plan compiler stands down (returns ``None``) on shapes the slot
world does not answer:

* **OR nodes** — alternatives may mix kinds and hide result nodes; the
  object walk already handles them and stays the oracle.
* **Interior data wildcards** — a star/variable node *with children*
  makes every data node a join entry point, the same shape the
  projection passes stand down on.  Leaf wildcards (the ubiquitous
  ``$x`` result leaves) are fully supported.

Runtime stand-downs (an unmirrored evaluation root, scope children
without slots, a ``BindingsOverlay``) are the caller's job —
:meth:`repro.pattern.match.Matcher.evaluate_at` falls back to the
object walk and counts a ``column_fallback``.

Equivalence contract: rows and first-witness bindings are *identical*
to the arena-assisted object walk.  Child candidates are enumerated in
sibling-chain order and descendant candidates in node-id order —
exactly the orders ``Matcher._candidates`` / ``_arena_candidates``
produce — so the differential suites can pin the two paths row by row,
bindings included.  Variables bind label *ids* during enumeration (id
equality is label equality within one arena) and are rendered to
strings once per recorded row.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..axml.arena import (
    ANY_DATA,
    KIND_ELEMENT,
    KIND_FUNCTION,
    KIND_VALUE,
    DocumentArena,
)
from .nodes import EdgeKind, PatternKind, PatternNode
from .pattern import TreePattern


@dataclasses.dataclass(frozen=True)
class PlanStep:
    """One compiled pattern node: its slot filter plus child partition.

    ``children`` are all conjunctive sub-steps (verified as boolean
    conditions by the ``can`` phase); ``enum_children`` is the subset
    carrying variables or result nodes, which enumeration must thread
    through — the same partition the object walk's ``_needs_enum``
    computes.
    """

    uid: int
    kind: PatternKind
    label: str
    function_names: Optional[frozenset[str]]
    edge: EdgeKind
    is_result: bool
    is_variable: bool
    children: tuple["PlanStep", ...]
    enum_children: tuple["PlanStep", ...]
    cond_children: tuple["PlanStep", ...]


class ColumnPlan:
    """A ``TreePattern`` compiled for slot-space evaluation."""

    def __init__(
        self,
        pattern: TreePattern,
        root: PlanStep,
        steps: tuple[PlanStep, ...],
        result_uids: tuple[int, ...],
    ) -> None:
        self.pattern = pattern
        self.root = root
        #: Every step, for per-run label-id resolution.
        self.steps = steps
        #: Result-node uids in ``pattern.result_nodes()`` order — the
        #: row layout the object walk's ``_record_row`` uses.
        self.result_uids = result_uids


def compile_plan(pattern: TreePattern) -> Optional[ColumnPlan]:
    """Compile ``pattern`` to a :class:`ColumnPlan`, or ``None`` when a
    shape rule stands the column path down (an OR node anywhere, or an
    interior data wildcard) — the caller keeps the object walk."""
    steps: list[PlanStep] = []

    def build(pnode: PatternNode) -> Optional[PlanStep]:
        kind = pnode.kind
        if kind is PatternKind.OR:
            return None
        if (
            kind in (PatternKind.STAR, PatternKind.VARIABLE)
            and pnode.children
        ):
            return None  # interior data wildcard
        children: list[PlanStep] = []
        for child in pnode.children:
            built = build(child)
            if built is None:
                return None
            children.append(built)
        # A child needs enumeration iff it binds something or some
        # descendant does — which is exactly "it has enum children".
        enum_children = tuple(
            c
            for c in children
            if c.is_result or c.is_variable or c.enum_children
        )
        step = PlanStep(
            uid=pnode.uid,
            kind=kind,
            label=pnode.label,
            function_names=pnode.function_names,
            edge=pnode.edge,
            is_result=pnode.is_result,
            is_variable=kind is PatternKind.VARIABLE,
            children=tuple(children),
            enum_children=enum_children,
            cond_children=tuple(
                c
                for c in children
                if not (c.is_result or c.is_variable or c.enum_children)
            ),
        )
        steps.append(step)
        return step

    root = build(pattern.root)
    if root is None:
        return None
    result_uids = tuple(r.uid for r in pattern.result_nodes())
    return ColumnPlan(pattern, root, tuple(steps), result_uids)


#: A slot row: result slots in ``result_nodes()`` order plus the
#: witnessing embedding's bindings, rendered to sorted string pairs.
SlotRow = tuple[tuple[int, ...], tuple[tuple[str, str], ...]]


class ColumnMatcher:
    """Evaluates one :class:`ColumnPlan` over an arena, in slot space.

    Stateless between runs: every :meth:`run` resolves label ids afresh
    (interning is append-only, a splice may introduce a label) and
    allocates fresh memo tables (the free list recycles slots between
    passes, so cross-run memos would be actively wrong).

    Effort lands in the column counters — ``column_pass_nodes`` (slots
    the scans touched), ``column_rows`` (rows produced) — rather than
    the object walk's ``can_checks``/``candidates_visited``, so the two
    paths' costs stay separately attributable in the metrics.
    """

    def __init__(
        self,
        plan: ColumnPlan,
        arena: DocumentArena,
        options,
        counter,
    ) -> None:
        self.plan = plan
        self.arena = arena
        self.options = options
        self.counter = counter

    # -- one evaluation pass -------------------------------------------------

    def run(
        self,
        root_slot: int,
        scope_slots: Optional[Sequence[int]] = None,
    ) -> list[SlotRow]:
        """All rows of the pattern anchored at ``root_slot``.

        ``scope_slots`` restricts the walk below the anchor to those
        direct children (the ``evaluate_scoped`` contract).  Rows are
        deduplicated by result-slot identity with first-witness
        bindings, exactly like ``Matcher._record_row``.
        """
        arena = self.arena
        self._kind = arena.kind
        self._label = arena.label
        self._parent = arena.parent
        self._first_child = arena.first_child
        self._next_sibling = arena.next_sibling
        self._node_ids = arena.node_id
        self._descend = self.options.descend_into_parameters
        self._scope_root = -1 if scope_slots is None else root_slot
        self._scope_children = (
            None if scope_slots is None else list(scope_slots)
        )
        self._can_memo: dict[tuple[int, int], bool] = {}
        self._below_memo: dict[tuple[int, int], bool] = {}
        self._param_memo: dict[int, bool] = {}
        self._visited = 0
        filters: dict[int, tuple[int, Optional[frozenset[int]]]] = {}
        dead = False
        for step in self.plan.steps:
            want_kind, want_ids = self._resolve(step)
            if want_ids is not None and not want_ids:
                # An un-interned label: no live slot can match, and the
                # pattern is conjunctive, so the result is empty.
                dead = True
                break
            filters[step.uid] = (want_kind, want_ids)
        self._filters = filters
        rows: list[SlotRow] = []
        root_step = self.plan.root
        if not dead and self._filter_ok(root_step, root_slot):
            labels = arena.labels
            result_uids = self.plan.result_uids
            seen: set[tuple[int, ...]] = set()
            counter = self.counter
            single = len(result_uids) == 1
            for env, assigns in self._embed(root_step, root_slot, {}):
                if single:
                    # One result node: its assignment is the whole row.
                    slots = (assigns[0][1],)
                else:
                    by_uid = dict(assigns)
                    # No OR nodes in a plan, so every result uid is bound.
                    slots = tuple(by_uid[uid] for uid in result_uids)
                if slots in seen:
                    continue
                seen.add(slots)
                counter.embeddings_found += 1
                if not env:
                    bindings: tuple = ()
                elif len(env) == 1:
                    name, lid = next(iter(env.items()))
                    bindings = ((name, labels[lid]),)
                else:
                    bindings = tuple(
                        sorted(
                            (name, labels[lid]) for name, lid in env.items()
                        )
                    )
                rows.append((slots, bindings))
        counter = self.counter
        counter.column_pass_nodes += self._visited
        counter.column_rows += len(rows)
        return rows

    def _filter_ok(self, step: PlanStep, slot: int) -> bool:
        """The step's slot filter alone (kind + label ids) — the whole
        node test for a plan step (no OR shapes survive compilation)."""
        want_kind, want_ids = self._filters[step.uid]
        k = self._kind[slot]
        if not (
            k == want_kind or (want_kind == ANY_DATA and k != KIND_FUNCTION)
        ):
            return False
        return want_ids is None or self._label[slot] in want_ids

    def _resolve(
        self, step: PlanStep
    ) -> tuple[int, Optional[frozenset[int]]]:
        """``(want_kind, want_label_ids)`` for a step, per run — the
        slot twin of ``Matcher._arena_filter`` (no OR case: the plan
        compiler already refused those patterns)."""
        arena = self.arena
        kind = step.kind
        if kind is PatternKind.ELEMENT or kind is PatternKind.VALUE:
            lid = arena.label_id(step.label)
            ids = frozenset() if lid is None else frozenset((lid,))
            want = KIND_ELEMENT if kind is PatternKind.ELEMENT else KIND_VALUE
            return (want, ids)
        if kind is PatternKind.FUNCTION:
            names = step.function_names
            if names is None:
                return (KIND_FUNCTION, None)
            ids = frozenset(
                lid
                for lid in (arena.label_id(name) for name in names)
                if lid is not None
            )
            return (KIND_FUNCTION, ids)
        return (ANY_DATA, None)  # star / variable leaf

    # -- slot traversal ------------------------------------------------------

    def _child_slots(self, slot: int) -> list[int]:
        """Scope-visible children of ``slot``, in sibling-chain order.

        Always a fresh list — callers use it as a mutable DFS stack.
        """
        if slot == self._scope_root:
            children = self._scope_children
            assert children is not None
            return list(children)
        out: list[int] = []
        ns = self._next_sibling
        c = self._first_child[slot]
        while c != -1:
            out.append(c)
            c = ns[c]
        return out

    # -- phase 1: boolean reachability ---------------------------------------

    def _can(self, step: PlanStep, slot: int) -> bool:
        key = (step.uid, slot)
        memo = self._can_memo
        cached = memo.get(key)
        if cached is not None:
            return cached
        want_kind, want_ids = self._filters[step.uid]
        k = self._kind[slot]
        if not (
            k == want_kind or (want_kind == ANY_DATA and k != KIND_FUNCTION)
        ):
            outcome = False
        elif want_ids is not None and self._label[slot] not in want_ids:
            outcome = False
        else:
            outcome = True
            for child in step.children:
                if not self._child_possible(child, slot):
                    outcome = False
                    break
        memo[key] = outcome
        return outcome

    def _child_possible(self, step: PlanStep, slot: int) -> bool:
        if step.edge is EdgeKind.CHILD:
            candidates = self._child_slots(slot)
            self._visited += len(candidates)
            for cand in candidates:
                if self._can(step, cand):
                    return True
            return False
        return self._exists_below(step, slot)

    def _exists_below(self, step: PlanStep, slot: int) -> bool:
        """Column semijoin: does a match for ``step`` exist strictly
        below ``slot``?  Iterative DFS with the parameter barrier; on a
        negative outcome every fully explored interior slot is negative
        too (the same memo propagation the object walk uses)."""
        memo = self._below_memo
        uid = step.uid
        key = (uid, slot)
        cached = memo.get(key)
        if cached is not None:
            return cached
        want_kind, want_ids = self._filters[uid]
        kind_col = self._kind
        label_col = self._label
        fc = self._first_child
        ns = self._next_sibling
        descend = self._descend
        # The filter *is* the node test, so leaf steps need no further
        # judgement; interior steps still check their child conditions.
        leaf = not step.children
        found = False
        explored: list[tuple[int, int]] = []
        stack = self._child_slots(slot)
        visited = 0
        while stack:
            s = stack.pop()
            visited += 1
            k = kind_col[s]
            if (
                (k == want_kind or (want_kind == ANY_DATA and k != KIND_FUNCTION))
                and (want_ids is None or label_col[s] in want_ids)
                and (leaf or self._can(step, s))
            ):
                found = True
                break
            if k == KIND_FUNCTION and not descend:
                continue
            skey = (uid, s)
            sub = memo.get(skey)
            if sub is True:
                found = True
                break
            if sub is False:
                continue
            explored.append(skey)
            c = fc[s]
            while c != -1:
                stack.append(c)
                c = ns[c]
        self._visited += visited
        if not found:
            for skey in explored:
                memo[skey] = False
        memo[key] = found
        return found

    # -- phase 2: enumeration ------------------------------------------------

    def _candidates(self, slot: int, step: PlanStep) -> list[int]:
        """Slots passing ``step``'s filter below ``slot``, in the object
        walk's order: sibling-chain order for child edges, node-id order
        for descendant edges (the ``_arena_candidates`` order), so
        first-witness bindings land identically.  The filter is applied
        *here*, during the scan — enumeration never re-tests it."""
        want_kind, want_ids = self._filters[step.uid]
        if step.edge is EdgeKind.CHILD:
            kind_col = self._kind
            label_col = self._label
            out = []
            visited = 0
            if slot == self._scope_root:
                children = self._scope_children
                assert children is not None
            else:
                # Walk the sibling chain inline — no intermediate list.
                children = None
                ns = self._next_sibling
                s = self._first_child[slot]
                while s != -1:
                    visited += 1
                    k = kind_col[s]
                    if (
                        k == want_kind
                        or (want_kind == ANY_DATA and k != KIND_FUNCTION)
                    ) and (want_ids is None or label_col[s] in want_ids):
                        out.append(s)
                    s = ns[s]
            if children is not None:
                for s in children:
                    visited += 1
                    k = kind_col[s]
                    if (
                        k == want_kind
                        or (want_kind == ANY_DATA and k != KIND_FUNCTION)
                    ) and (want_ids is None or label_col[s] in want_ids):
                        out.append(s)
            self._visited += visited
            return out
        if (
            want_ids is not None
            and want_kind != ANY_DATA
            and self._scope_children is None
            and self._parent[slot] == -1
        ):
            # Anchored at the arena's own root with a concrete label
            # filter: the subtree *is* the whole column, so sweep the
            # label column at C speed (``array.index``) instead of
            # chasing child/sibling pointers slot by slot.
            return self._flat_candidates(slot, want_kind, want_ids)
        kind_col = self._kind
        label_col = self._label
        fc = self._first_child
        ns = self._next_sibling
        descend = self._descend
        out = []
        stack = self._child_slots(slot)
        visited = 0
        while stack:
            s = stack.pop()
            visited += 1
            k = kind_col[s]
            if (
                (k == want_kind or (want_kind == ANY_DATA and k != KIND_FUNCTION))
                and (want_ids is None or label_col[s] in want_ids)
            ):
                out.append(s)
            if k == KIND_FUNCTION and not descend:
                continue
            c = fc[s]
            while c != -1:
                stack.append(c)
                c = ns[c]
        self._visited += visited
        out.sort(key=self._node_ids.__getitem__)
        return out

    def _flat_candidates(
        self, root_slot: int, want_kind: int, want_ids: frozenset[int]
    ) -> list[int]:
        """Descendant candidates below the arena root, by flat sweep.

        ``array.index`` finds each label hit at C speed; Python-level
        work is proportional to the *hits*, not the live slot count.
        Freed slots keep stale label values but carry ``KIND_FREE``, so
        the kind test rejects them; the function-parameter barrier the
        pointer walk enforces structurally is re-checked per hit with a
        memoised parent-chain climb.  Same slots, same node-id order as
        the DFS scan — only the traversal changed.
        """
        label_col = self._label
        kind_col = self._kind
        parent = self._parent
        memo = self._param_memo
        descend = self._descend
        out: list[int] = []
        tested = 0
        for lid in want_ids:
            pos = 0
            while True:
                try:
                    s = label_col.index(lid, pos)
                except ValueError:
                    break
                pos = s + 1
                tested += 1
                if kind_col[s] != want_kind or s == root_slot:
                    continue
                if not descend:
                    # Hits cluster under shared parents: probe the
                    # parent's memo entry before paying the full climb.
                    ok = memo.get(parent[s])
                    if ok is None:
                        ok = self._outside_parameters(s)
                    if not ok:
                        continue
                out.append(s)
        self._visited += tested
        out.sort(key=self._node_ids.__getitem__)
        return out

    def _outside_parameters(self, slot: int) -> bool:
        """No function node strictly above ``slot`` — i.e. the pointer
        walk (which never descends into function parameters) would have
        reached it.  The climb memoises every interior slot it judges,
        so repeated hits under one parent cost one dict probe."""
        if self._descend:
            return True
        kind_col = self._kind
        parent = self._parent
        memo = self._param_memo
        path: list[int] = []
        s = parent[slot]
        while s != -1:
            cached = memo.get(s)
            if cached is not None:
                ok = cached
                break
            if kind_col[s] == KIND_FUNCTION:
                ok = False
                break
            path.append(s)
            s = parent[s]
        else:
            ok = True
        for p in path:
            memo[p] = ok
        return ok

    def _embed(
        self, step: PlanStep, slot: int, env: dict[str, int]
    ) -> list[tuple[dict[str, int], tuple[tuple[int, int], ...]]]:
        """Completed (bindings, result assignments) pairs for ``step``
        embedded at ``slot``, in the object walk's enumeration order.

        The caller has already applied the step's slot filter (the
        candidate scans filter as they go).  Condition children are
        judged here via the memoised boolean phase; *enumeration*
        children are not pre-screened — their candidate scan is the
        same walk an existence probe would do, and an empty scan prunes
        the branch at the same cost, so the extra semijoin the object
        walk's ``_can`` pays buys nothing in slot space.  A branch
        either completes (identical pairs, identical order) or dies in
        a scan, so rows and first-witness bindings are pinned either
        way.
        """
        if step.is_variable:
            lid = self._label[slot]
            bound = env.get(step.label)
            if bound is not None:
                if bound != lid:
                    return []
            else:
                env = {**env, step.label: lid}
        for cond in step.cond_children:
            if not self._child_possible(cond, slot):
                return []
        assigns: tuple[tuple[int, int], ...] = (
            ((step.uid, slot),) if step.is_result else ()
        )
        results = [(env, assigns)]
        for child in step.enum_children:
            candidates = self._candidates(slot, child)
            if not candidates:
                return []
            # Per-candidate completions depend on env only through
            # variable joins, but the *candidate list* never does —
            # hoisting it out of the fold keeps the object walk's
            # nested-loop order (prior completions outermost, this
            # child's candidates next) at one scan instead of one per
            # completion.
            folded = []
            if not child.children:
                # A leaf enum child (a ``$x`` result leaf, typically):
                # its whole embedding is the variable bind plus the
                # result assignment — unroll it here instead of paying
                # a recursive call per (completion, candidate) pair.
                name = child.label if child.is_variable else None
                uid = child.uid if child.is_result else None
                label_col = self._label
                for prior_env, prior_assigns in results:
                    bound = None if name is None else prior_env.get(name)
                    for cand in candidates:
                        env2 = prior_env
                        if name is not None:
                            lid = label_col[cand]
                            if bound is not None:
                                if bound != lid:
                                    continue
                            else:
                                env2 = {**prior_env, name: lid}
                        folded.append(
                            (
                                env2,
                                prior_assigns
                                if uid is None
                                else prior_assigns + ((uid, cand),),
                            )
                        )
            else:
                for prior_env, prior_assigns in results:
                    for cand in candidates:
                        for env2, a2 in self._embed(child, cand, prior_env):
                            folded.append((env2, prior_assigns + a2))
            if not folded:
                return []
            results = folded
        return results
