"""Parser for the XPath-like surface syntax of tree patterns.

The paper writes queries both as drawn trees (Figure 4) and in an
"XPath-like syntax" (Sections 2-3), e.g.::

    /goingout/movies//show[title="The Hours"]/schedule
    /hotels/hotel[name="Best Western"][rating="5"]
           /nearby//restaurant[name=$X][address=$Y][rating="5"]
    /hotels/hotel/nearby//()          (an LPQ: star function node)
    //rating/getRating()              (a function node by name)

Supported constructs:

* ``/`` child steps and ``//`` descendant steps;
* ``name``, ``*`` wildcard, ``"value"`` constants, ``$X`` variables;
* ``()`` star function nodes and ``name()`` / ``(a|b)()`` named ones;
* predicates ``[relative-path]`` and value comparisons
  ``[path = "v"]`` / ``[path = $X]``;
* an explicit result marker ``!`` after any step token.

Result-node defaulting (when no ``!`` marker appears): if the query has
variables they are the result nodes (the paper's Figure 4 convention),
otherwise the last step on the main spine is (XPath convention).
"""

from __future__ import annotations

from typing import Optional

from .nodes import EdgeKind, PatternKind, PatternNode, pfunc, pstar
from .pattern import TreePattern


class PatternSyntaxError(ValueError):
    """Raised on malformed pattern text."""

    def __init__(self, message: str, text: str, position: int) -> None:
        pointer = " " * position + "^"
        super().__init__(f"{message} at position {position}:\n  {text}\n  {pointer}")
        self.position = position


_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.:"
)


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.spine_last: Optional[PatternNode] = None

    # -- low-level helpers ---------------------------------------------------

    def error(self, message: str) -> PatternSyntaxError:
        return PatternSyntaxError(message, self.text, self.pos)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_ws(self) -> None:
        while not self.at_end() and self.text[self.pos].isspace():
            self.pos += 1

    def eat(self, token: str) -> bool:
        self.skip_ws()
        if self.text.startswith(token, self.pos):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.eat(token):
            raise self.error(f"expected {token!r}")

    def read_name(self) -> str:
        self.skip_ws()
        start = self.pos
        while not self.at_end() and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start : self.pos]

    def read_string(self) -> str:
        self.expect('"')
        start = self.pos
        while not self.at_end() and self.text[self.pos] != '"':
            self.pos += 1
        if self.at_end():
            raise self.error("unterminated string literal")
        literal = self.text[start : self.pos]
        self.pos += 1
        return literal

    # -- grammar ---------------------------------------------------------------

    def parse_query(self) -> PatternNode:
        self.skip_ws()
        edge = self.read_leading_edge()
        root: PatternNode
        if edge is EdgeKind.DESCENDANT:
            # ``//x`` — anchor below an arbitrary root.
            root = pstar()
            node = self.parse_step(EdgeKind.DESCENDANT)
            root.add_child(node)
        else:
            root = self.parse_step(EdgeKind.CHILD)
            node = root
        while not self.at_end():
            self.skip_ws()
            if self.at_end():
                break
            step_edge = self.read_leading_edge()
            child = self.parse_step(step_edge)
            node.add_child(child)
            node = child
        self.spine_last = node
        return root

    def read_leading_edge(self) -> EdgeKind:
        if self.eat("//"):
            return EdgeKind.DESCENDANT
        if self.eat("/"):
            return EdgeKind.CHILD
        raise self.error("expected '/' or '//'")

    def parse_step(self, edge: EdgeKind) -> PatternNode:
        node = self.parse_test(edge)
        if self.eat("!"):
            node.is_result = True
        while self.peek() == "[":
            predicate = self.parse_predicate()
            node.add_child(predicate)
        return node

    def parse_test(self, edge: EdgeKind) -> PatternNode:
        self.skip_ws()
        ch = self.peek()
        if ch == "$":
            self.pos += 1
            return PatternNode(PatternKind.VARIABLE, self.read_name(), edge=edge)
        if ch == '"':
            return PatternNode(PatternKind.VALUE, self.read_string(), edge=edge)
        if ch == "*":
            self.pos += 1
            return PatternNode(PatternKind.STAR, "*", edge=edge)
        if ch == "(":
            return self.parse_function_test(edge)
        name = self.read_name()
        if self.peek() == "(":
            self.expect("(")
            self.expect(")")
            return pfunc([name], edge=edge)
        return PatternNode(PatternKind.ELEMENT, name, edge=edge)

    def parse_function_test(self, edge: EdgeKind) -> PatternNode:
        self.expect("(")
        if self.eat(")"):
            return pfunc(None, edge=edge)
        names = [self.read_name()]
        while self.eat("|"):
            names.append(self.read_name())
        self.expect(")")
        self.expect("(")
        self.expect(")")
        return pfunc(names, edge=edge)

    def parse_predicate(self) -> PatternNode:
        self.expect("[")
        edge = EdgeKind.CHILD
        if self.eat("//"):
            edge = EdgeKind.DESCENDANT
        else:
            self.eat("/")
        top = self.parse_step(edge)
        node = top
        while True:
            self.skip_ws()
            if self.peek() in ("/",):
                step_edge = self.read_leading_edge()
                child = self.parse_step(step_edge)
                node.add_child(child)
                node = child
                continue
            break
        if self.eat("="):
            node.add_child(self.parse_comparison_rhs())
        self.expect("]")
        return top

    def parse_comparison_rhs(self) -> PatternNode:
        self.skip_ws()
        if self.peek() == "$":
            self.pos += 1
            return PatternNode(PatternKind.VARIABLE, self.read_name())
        if self.peek() == '"':
            return PatternNode(PatternKind.VALUE, self.read_string())
        raise self.error("expected a string literal or variable after '='")


def parse_pattern(
    text: str,
    name: Optional[str] = None,
    result_variables: Optional[list[str]] = None,
) -> TreePattern:
    """Parse pattern text into a :class:`TreePattern`.

    Args:
        text: the query in the surface syntax described above.
        name: optional query name (defaults to the text itself).
        result_variables: restrict result marking to these variables
            (overrides the defaulting rule).
    """
    parser = _Parser(text)
    root = parser.parse_query()
    parser.skip_ws()
    if not parser.at_end():
        raise parser.error("unexpected trailing input")

    pattern = TreePattern(root, name=name or text.strip())
    _apply_result_defaults(pattern, result_variables, parser.spine_last)
    return pattern


def _apply_result_defaults(
    pattern: TreePattern,
    result_variables: Optional[list[str]],
    spine_last: Optional[PatternNode],
) -> None:
    if result_variables is not None:
        wanted = set(result_variables)
        marked: set[str] = set()
        for node in pattern.nodes():
            # Mark the first occurrence of each wanted variable only: a
            # join variable appears several times but denotes one value.
            node.is_result = (
                node.is_variable
                and node.label in wanted
                and node.label not in marked
            )
            if node.is_result:
                marked.add(node.label)
        missing = wanted - marked
        if missing:
            raise ValueError(f"unknown result variables: {sorted(missing)}")
        return

    if pattern.result_nodes():
        return  # explicit ``!`` markers win

    variables = [n for n in pattern.nodes() if n.is_variable]
    if variables:
        seen: set[str] = set()
        for node in variables:
            if node.label not in seen:
                node.is_result = True
                seen.add(node.label)
        return

    # XPath convention: the deepest step on the main spine.
    (spine_last or pattern.root).is_result = True
