"""Shard-parallel group passes: partition the document, scan in parallel.

The scoped-evaluation law behind answer maintenance (see
:meth:`~repro.pattern.match.Matcher.evaluate_scoped` and
``MatchSet.compose``) says: for a pattern whose root has exactly one
child, the full snapshot result is the composition of the scoped
results over the document root's depth-1 subtrees.  Nothing in that law
requires the scopes to be evaluated one at a time, or to contain one
subtree each — so a group pass over a large document can be *sharded*:

1. partition ``document.root.children`` into ``shards`` contiguous
   ranges of roughly equal size;
2. run one scoped :class:`~repro.pattern.multimatch.PatternGroup` pass
   per range — each shard owns a private group (the shared memo tables
   are single-threaded state) but all shards read the same document,
   label index and arena, which a pass never mutates;
3. compose the per-shard row groups **in shard index order** with
   :meth:`MatchSet.compose`, making the merged answer deterministic and
   independent of thread completion order.

Dispatch goes through the PR-3 scheduler vocabulary: a
:class:`~repro.services.scheduler.SchedulerPolicy` decides whether the
shard scans overlap on a ``ThreadPoolExecutor`` (``use_threads``) and
how many run at once (``max_concurrency``).  Sharding *stands down* —
one unscoped pass on shard 0's group — whenever the law does not apply:
a selected member's pattern root has several children (its rows could
straddle shard boundaries), or the root has fewer than two depth-1
subtrees to split.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
from typing import Hashable, Iterable, Mapping, Optional, Sequence

from ..axml.arena import DocumentArena
from ..axml.document import Document
from ..axml.index import LabelIndex
from ..axml.node import Node
from ..services.scheduler import SchedulerPolicy
from .match import MatchCounter, MatchOptions, MatchSet
from .multimatch import GroupPassResult, PatternGroup
from .pattern import TreePattern


def plan_shards(children: Sequence[Node], shards: int) -> list[tuple[Node, ...]]:
    """Partition depth-1 subtrees into ``shards`` contiguous ranges.

    Ranges are as even as possible (sizes differ by at most one) and
    preserve document order, so shard 0 holds the leftmost subtrees.
    Fewer children than shards yields fewer (singleton) ranges; an
    empty child list yields no ranges.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    total = len(children)
    count = min(shards, total)
    if count == 0:
        return []
    base, extra = divmod(total, count)
    ranges: list[tuple[Node, ...]] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        ranges.append(tuple(children[start : start + size]))
        start += size
    return ranges


@dataclasses.dataclass
class ShardedPassResult(GroupPassResult):
    """A :class:`GroupPassResult` with the sharding figures attached."""

    shard_passes: int = 0
    """Scoped shard scans this pass dispatched (0 = stood down)."""
    merge_rows: int = 0
    """Rows in the merged per-member answers (after dedup)."""


class ShardedPatternGroup:
    """A drop-in :class:`PatternGroup` that scans the document in shards.

    Mirrors the group interface the engine uses (``evaluate`` /
    ``extend`` / ``discard`` / membership) while holding one private
    :class:`PatternGroup` per shard — memo tables, member matchers and
    work counters are thread-local to a shard; per-pass counter deltas
    drain into the shared ``counter`` after the join, so the engine's
    accounting matches a serial pass.
    """

    def __init__(
        self,
        members: Mapping[Hashable, TreePattern],
        shards: int,
        options: Optional[MatchOptions] = None,
        counter: Optional[MatchCounter] = None,
        index: Optional[LabelIndex] = None,
        call_source: Optional[object] = None,
        arena: Optional[DocumentArena] = None,
        scheduler: Optional[SchedulerPolicy] = None,
        column_match: bool = False,
    ) -> None:
        if shards < 2:
            raise ValueError("ShardedPatternGroup needs shards >= 2")
        self.shards = shards
        self.counter = counter or MatchCounter()
        self.scheduler = scheduler or SchedulerPolicy(max_concurrency=shards)
        self._patterns: dict[Hashable, TreePattern] = dict(members)
        self._groups = [
            PatternGroup(
                members,
                options=options,
                counter=MatchCounter(),
                index=index,
                call_source=call_source,
                arena=arena,
                column_match=column_match,
            )
            for _ in range(shards)
        ]

    # -- membership (the engine's group interface) ---------------------------

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._patterns

    def keys(self) -> list[Hashable]:
        return list(self._patterns)

    @property
    def canonical_classes(self) -> int:
        return self._groups[0].canonical_classes

    def extend(self, members: Mapping[Hashable, TreePattern]) -> None:
        fresh = dict(members)
        for group in self._groups:
            group.extend(fresh)
        self._patterns.update(fresh)

    def discard(self, keys: Iterable[Hashable]) -> None:
        dropped = list(keys)
        for group in self._groups:
            group.discard(dropped)
        for key in dropped:
            self._patterns.pop(key, None)

    # -- the sharded pass ----------------------------------------------------

    def shardable(self, document: Document, selected: Sequence[Hashable]) -> bool:
        """Whether the composition law covers this pass.

        Every selected member's root must have exactly one child (one
        row never spans two depth-1 subtrees, so scoped unions compose
        to the full answer — the ``AnswerCache`` ``_scoped`` rule), and
        the document root needs at least two subtrees to split.
        """
        if len(document.root.children) < 2:
            return False
        return all(
            len(self._patterns[key].root.children) == 1 for key in selected
        )

    def evaluate(
        self,
        document: Document,
        keys: Optional[Sequence[Hashable]] = None,
        scope: "Optional[Node | Sequence[Node]]" = None,
    ) -> ShardedPassResult:
        """Evaluate the selected members, sharding when sound.

        Ineligible passes (explicit ``scope``, multi-child member
        roots, too few subtrees) run as one unscoped pass on shard 0's
        group — identical results, ``shard_passes == 0``.
        """
        selected = list(self._patterns) if keys is None else list(keys)
        if scope is not None or not self.shardable(document, selected):
            result = self._groups[0].evaluate(document, keys=selected, scope=scope)
            self._drain_counters()
            return _attach(result, shard_passes=0)

        ranges = plan_shards(document.root.children, self.shards)
        jobs = list(zip(self._groups, ranges))

        def run_shard(job: "tuple[PatternGroup, tuple[Node, ...]]") -> GroupPassResult:
            group, shard_children = job
            return group.evaluate(document, keys=selected, scope=shard_children)

        if self.scheduler.use_threads and len(jobs) > 1:
            workers = min(len(jobs), self.scheduler.max_concurrency)
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = [pool.submit(run_shard, job) for job in jobs]
                # Collected in shard index order — determinism does not
                # depend on which thread finishes first.
                shard_results = [future.result() for future in futures]
        else:
            shard_results = [run_shard(job) for job in jobs]
        self._drain_counters()

        match_sets = {
            key: MatchSet.compose(
                self._patterns[key],
                [result.match_sets[key].rows for result in shard_results],
            )
            for key in selected
        }
        merged = ShardedPassResult(
            match_sets=match_sets,
            nodes_visited=sum(r.nodes_visited for r in shard_results),
            skipped_subtrees=sum(r.skipped_subtrees for r in shard_results),
            candidate_reuses=sum(r.candidate_reuses for r in shard_results),
            projected=all(r.projected for r in shard_results),
            projection_size=sum(r.projection_size for r in shard_results),
            shard_passes=len(shard_results),
            merge_rows=sum(len(ms) for ms in match_sets.values()),
        )
        return merged

    def _drain_counters(self) -> None:
        """Fold the shards' per-pass work into the shared counter."""
        for group in self._groups:
            self.counter.merge(group.counter)
            for name in MatchCounter.__slots__:
                setattr(group.counter, name, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedPatternGroup({len(self._patterns)} members, "
            f"{self.shards} shards)"
        )


def _attach(result: GroupPassResult, shard_passes: int) -> ShardedPassResult:
    """Lift a plain pass result into the sharded result type."""
    return ShardedPassResult(
        match_sets=result.match_sets,
        nodes_visited=result.nodes_visited,
        skipped_subtrees=result.skipped_subtrees,
        candidate_reuses=result.candidate_reuses,
        projected=result.projected,
        projection_size=result.projection_size,
        shard_passes=shard_passes,
        merge_rows=sum(len(ms) for ms in result.match_sets.values()),
    )
