"""Shared multi-query matching: one document pass for a pattern family.

The engine's relevance queries are *derived from one user query*: the
NFQs of Figure 5 share the spine and all the condition branches, and
differ only around the focused node.  Evaluating them one by one
(`Matcher` per query, full traversal per query, per round) repeats
almost all of the boolean work ``|queries|`` times.  This module makes
the family a first-class object:

* :class:`PatternGroup` — compiles a keyed set of
  :class:`~repro.pattern.pattern.TreePattern` members into a merged
  label/edge discrimination structure: every pattern node is interned
  bottom-up into a *canonical class* (same node test, same edge-typed
  canonical children — variable names and result marks excluded, which
  the boolean phase never consults).  All members are then evaluated
  through memo tables keyed by ``(canonical id, document node)``, so a
  condition branch shared by sixteen NFQs is checked against a document
  node once, not sixteen times.  Filtered descendant-candidate lists
  are interned the same way.

* **Document projection** (in the spirit of type-based projection for
  XML): before a pass, the group merges the evaluated members' label
  summaries and computes the *projection set* — the nodes whose label
  some member actually tests, plus all their ancestors and the root.
  Subtree walks (descendant candidate enumeration, ``exists-below``)
  refuse to enter unprojected subtrees: such a subtree contains no node
  any member test accepts, so no embedding and no boolean fact can
  depend on it.  Sources come from a
  :class:`~repro.axml.index.LabelIndex` (O(footprint)), from an F-guide
  (call extents), or — lacking both — from one shared walk.  Projection
  is disabled when any evaluated member carries a data wildcard (star or
  variable test), which would make every data node a source.

Per-member results are byte-identical to a fresh per-query
:class:`~repro.pattern.match.Matcher` — that walker stays the
differential oracle (see ``tests/test_multimatch.py`` and the E12
bench).  Groups do not support bindings overlays: overlay lookups are
keyed by the *actual* pattern node, which canonical sharing would
conflate; the engine falls back to per-query matching there.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Iterable, Iterator, Mapping, Optional, Sequence

from ..axml.arena import DocumentArena
from ..axml.document import Document
from ..axml.index import LabelIndex
from ..axml.node import Node
from .match import Matcher, MatchCounter, MatchOptions, MatchSet
from .nodes import EdgeKind, PatternKind, PatternNode
from .pattern import TreePattern


@dataclasses.dataclass(frozen=True)
class LabelSummary:
    """The labels a pattern can test, root excluded — the projection
    footprint of one group member.

    Unlike :class:`repro.lazy.incremental.LabelFootprint` (which keys
    parent constraints for *delta* screening), this is the flat label
    alphabet: projection keeps whole ancestor chains anyway, so parent
    constraints buy nothing here.  The pattern root is excluded because
    it only ever maps to the document root, which is always projected.
    """

    data_labels: frozenset[str]
    function_names: frozenset[str]
    any_data: bool
    any_function: bool

    @classmethod
    def from_pattern(cls, pattern: TreePattern) -> "LabelSummary":
        data: set[str] = set()
        functions: set[str] = set()
        any_data = any_function = False
        for node in pattern.nodes():
            if node is pattern.root or node.is_or:
                continue  # OR carries no test; its alternatives do
            kind = node.kind
            if kind is PatternKind.ELEMENT or kind is PatternKind.VALUE:
                data.add(node.label)
            elif kind is PatternKind.FUNCTION:
                if node.function_names is None:
                    any_function = True
                else:
                    functions.update(node.function_names)
            else:  # STAR / VARIABLE accept any data node
                any_data = True
        return cls(
            data_labels=frozenset(data),
            function_names=frozenset(functions),
            any_data=any_data,
            any_function=any_function,
        )

    @classmethod
    def merge(cls, summaries: Iterable["LabelSummary"]) -> "LabelSummary":
        data: set[str] = set()
        functions: set[str] = set()
        any_data = any_function = False
        for summary in summaries:
            data |= summary.data_labels
            functions |= summary.function_names
            any_data = any_data or summary.any_data
            any_function = any_function or summary.any_function
        return cls(
            data_labels=frozenset(data),
            function_names=frozenset(functions),
            any_data=any_data,
            any_function=any_function,
        )

    def accepts(self, node: Node) -> bool:
        """Could any test of the summary accept this document node?"""
        if node.is_function:
            return self.any_function or node.label in self.function_names
        return self.any_data or node.label in self.data_labels


@dataclasses.dataclass
class GroupPassResult:
    """One shared evaluation pass over the document."""

    match_sets: dict[Hashable, MatchSet]
    nodes_visited: int
    """Nodes the group's subtree walks entered (including the shared
    projection-source walk when no index/guide served the sources)."""
    skipped_subtrees: int
    """Subtrees pruned at their root by the projection set."""
    candidate_reuses: int
    """Pre-filtered candidate lists answered from the shared memo."""
    projected: bool
    """Whether a projection set was in force (off under data wildcards)."""
    projection_size: int


class _MemberMatcher(Matcher):
    """A member's view of the group: same semantics as a fresh
    :class:`Matcher`, but all boolean facts and candidate lists are
    shared through canonical ids.

    Two sharing granularities are in play:

    * the full class (``cid``) keys the node-level ``_can`` and
      ``exists-below`` memos and the condition-level memo — exact
      structural equality, variable names and result marks aside;
    * the *shared-part* class (``scid``) keys candidate pre-filtering:
      it covers the node test plus the non-enumeration children (the
      conditions), excluding the member-specific spine/output chain.
      ``_shared_can`` — a sound necessary condition for ``_can`` — is
      memoised under it, so the expensive scan that rejects almost all
      candidates runs once per shared class, not once per member.
    """

    def __init__(self, pattern: TreePattern, group: "PatternGroup") -> None:
        super().__init__(
            pattern,
            options=group.options,
            counter=group.counter,
            index=group.index,
            arena=group.arena,
            column_match=group.column_match,
        )
        self._group = group
        # Alias the group's tables and id maps: every member reads and
        # writes the same memos, keyed canonically (see _memo_key
        # below).  Bound directly on the member because they sit on the
        # hottest paths.
        self._can_memo = group._can_memo
        self._below_memo = group._below_memo
        self._cids = group._cids
        self._scids = group._scids
        self._cond_memo = group._cond_memo
        self._shared_memo = group._shared_can_memo

    def _reset_memos(self) -> None:
        """The group clears the shared tables once per pass; a member's
        own evaluate() must not wipe its siblings' work."""

    def _memo_key(self, pnode: PatternNode, dnode: Node) -> tuple[int, int]:
        return (self._cids[pnode.uid], id(dnode))

    def _can(self, pnode: PatternNode, dnode: Node) -> bool:
        # Same conjunction as the base matcher, factored so the shared
        # part (node test + condition children) is answered per *shared
        # class* while only the member-specific enumeration chain is
        # re-checked per member.  Enumeration-free subtrees (pure
        # conditions) skip the split: there cid and scid induce the
        # same partition, so a second memo would only double the probes.
        key = (self._cids[pnode.uid], id(dnode))
        cached = self._can_memo.get(key)
        if cached is not None:
            return cached
        self.counter.can_checks += 1
        needs = self._needs_enum
        if pnode.is_or:
            outcome = any(self._can(alt, dnode) for alt in pnode.children)
        elif not needs[pnode.uid]:
            outcome = self._label_matches(pnode, dnode) and all(
                self._child_possible(child, dnode)
                for child in pnode.children
            )
        elif not self._shared_can(pnode, dnode):
            outcome = False
        else:
            outcome = all(
                self._child_possible(child, dnode)
                for child in pnode.children
                if needs[child.uid]
            )
        self._can_memo[key] = outcome
        return outcome

    def _shared_can(self, pnode: PatternNode, dnode: Node) -> bool:
        """The member-independent slice of ``_can``: the node test plus
        every non-enumeration (condition) child.  A necessary condition
        for ``_can``, shared across members through the scid."""
        key = (self._scids[pnode.uid], id(dnode))
        cached = self._shared_memo.get(key)
        if cached is not None:
            return cached
        if not self._label_matches(pnode, dnode):
            outcome = False
        else:
            needs = self._needs_enum
            outcome = all(
                self._child_possible(child, dnode)
                for child in pnode.children
                if not needs[child.uid]
            )
        self._shared_memo[key] = outcome
        return outcome

    def _shared_prefilter(self, pnode: PatternNode, dnode: Node) -> bool:
        """``_shared_can`` lifted over OR alternatives — the candidate
        pre-filter (sound: it is implied by ``_quick_filter``)."""
        if pnode.is_or:
            return any(
                self._shared_prefilter(alt, dnode) for alt in pnode.children
            )
        return self._shared_can(pnode, dnode)

    def _child_possible(self, child: PatternNode, dnode: Node) -> bool:
        # Memoised at the *condition* level on top of the node-level
        # _can memo: a sibling member that shares this condition class
        # answers it with one dict probe instead of re-iterating the
        # document node's children (the any()/exists-below loop).
        # Sound because members carry no overlay (group precondition)
        # and the outcome is a pure function of (condition class, edge,
        # node) on an unchanging document.  The edge must key the memo:
        # a node's cid describes its own subtree, not how it hangs off
        # its parent, and the same condition class reached by CHILD in
        # one member and DESCENDANT in another answers differently.
        key = (self._cids[child.uid], child.edge, id(dnode))
        memo = self._cond_memo
        cached = memo.get(key)
        if cached is None:
            if child.edge is EdgeKind.CHILD:
                if self._needs_enum[child.uid]:
                    # Spine steps: screen candidates with the *shared*
                    # prefilter first — memo hits for every sibling
                    # member of the scid family — so the member-specific
                    # _can only touches the few survivors instead of
                    # every child.
                    cached = any(
                        self._can(child, cand)
                        for cand in self._children_of(dnode)
                        if self._shared_prefilter(child, cand)
                    )
                else:
                    cached = any(
                        self._can(child, cand)
                        for cand in self._children_of(dnode)
                    )
            else:
                cached = self._exists_below(child, dnode)
            memo[key] = cached
        return cached

    def _visit_ok(self, node: Node) -> bool:
        group = self._group
        projected = group._projected
        if projected is None or node.node_id in projected:
            group._nodes_visited += 1
            return True
        group._skipped_subtrees += 1
        return False

    def _candidates(
        self, dnode: Node, edge: EdgeKind, pnode: Optional[PatternNode] = None
    ) -> Iterator[Node]:
        if pnode is None:
            yield from super()._candidates(dnode, edge, pnode)
            return
        # Intern the *pre-filtered* candidate list under the step's
        # shared class: the scan that rejects almost every child (or
        # descendant) runs once per shared class, and each member's
        # _quick_filter then touches only the few survivors.  Sound
        # because the pre-filter is implied by _quick_filter, which
        # _combine still applies per member.
        group = self._group
        key = (group._scids[pnode.uid], id(dnode), edge)
        cached = group._cand_memo.get(key)
        if cached is None:
            cached = [
                cand
                for cand in super()._candidates(dnode, edge, pnode)
                if self._shared_prefilter(pnode, cand)
            ]
            group._cand_memo[key] = cached
        else:
            group._candidate_reuses += 1
        yield from cached


class PatternGroup:
    """A keyed family of patterns evaluated in one shared pass.

    Args:
        members: mapping of caller-chosen keys (the engine uses the
            relevance queries' ``target_uid``) to patterns.
        options: embedding semantics, shared by all members.
        counter: work counters, shared by all members.
        index: optional label index over the target document — serves
            both the members' descendant steps (as in a plain
            :class:`Matcher`) and the projection sources.
        call_source: optional F-guide-like object (anything with a
            ``document`` attribute and a ``function_extents(names)``
            method) used for function-node projection sources when no
            index is available.
        arena: optional column mirror of the target document
            (:class:`~repro.axml.arena.DocumentArena`).  Descendant
            steps and exists-below checks become tight scans over the
            int columns; when every evaluated member is column-
            answerable (no OR nodes) the projection set is skipped
            entirely — the label prefilter of the scans subsumes it —
            and otherwise the projected set is computed column-side.
        column_match: run each member's *whole* pattern in slot space
            (:mod:`repro.pattern.columnmatch`) when it compiles,
            materialising nodes only for final rows; members that
            stand down (OR, interior wildcards) use the shared walk as
            before.  Requires ``arena``; ignored without one.

    ``evaluate`` returns per-member :class:`MatchSet`s identical to
    fresh per-pattern matchers.  Bindings overlays are unsupported (see
    the module docstring).
    """

    def __init__(
        self,
        members: Mapping[Hashable, TreePattern],
        options: Optional[MatchOptions] = None,
        counter: Optional[MatchCounter] = None,
        index: Optional[LabelIndex] = None,
        call_source: Optional[object] = None,
        arena: Optional[DocumentArena] = None,
        column_match: bool = False,
    ) -> None:
        self.options = options or MatchOptions()
        self.counter = counter or MatchCounter()
        self.index = index
        self.call_source = call_source
        self.arena = arena
        self.column_match = bool(column_match) and arena is not None
        self._can_memo: dict[tuple[int, int], bool] = {}
        self._below_memo: dict[tuple[int, int], bool] = {}
        self._cond_memo: dict[tuple[int, EdgeKind, int], bool] = {}
        self._shared_can_memo: dict[tuple[int, int], bool] = {}
        self._cand_memo: dict[tuple[int, int, EdgeKind], list[Node]] = {}
        self._cids: dict[int, int] = {}
        self._scids: dict[int, int] = {}
        self._canon_table: dict[tuple, int] = {}
        self._shared_table: dict[tuple, int] = {}
        self._projected: Optional[set[int]] = None
        self._nodes_visited = 0
        self._skipped_subtrees = 0
        self._candidate_reuses = 0
        self._members: dict[Hashable, _MemberMatcher] = {}
        self._summaries: dict[Hashable, LabelSummary] = {}
        self._has_or: dict[Hashable, bool] = {}
        for key, pattern in dict(members).items():
            self._intern(pattern.root)
            self._members[key] = _MemberMatcher(pattern, self)
            self._summaries[key] = LabelSummary.from_pattern(pattern)
            self._has_or[key] = any(n.is_or for n in pattern.nodes())

    def __len__(self) -> int:
        return len(self._members)

    def keys(self) -> list[Hashable]:
        return list(self._members)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._members

    def extend(self, members: Mapping[Hashable, TreePattern]) -> None:
        """Intern additional members into the live group.

        The canonical tables are append-only (hash-consing never
        invalidates an existing class id), so new patterns join an
        existing group without recompiling the rest — the serving
        layer's subscription churn path.  Duplicate keys are rejected:
        a key identifies one member pattern for the group's lifetime.
        """
        fresh = dict(members)
        for key in fresh:
            if key in self._members:
                raise ValueError(f"group member {key!r} already present")
        for key, pattern in fresh.items():
            self._intern(pattern.root)
            self._members[key] = _MemberMatcher(pattern, self)
            self._summaries[key] = LabelSummary.from_pattern(pattern)
            self._has_or[key] = any(n.is_or for n in pattern.nodes())

    def discard(self, keys: Iterable[Hashable]) -> None:
        """Drop members (unknown keys are ignored).

        Canonical classes contributed by departed members linger in the
        intern tables — they are ids, not work: passes only evaluate
        the selected members, and a later :meth:`extend` may re-use
        them.  This keeps cancellation O(|dropped|) under thousands of
        comings and goings.
        """
        for key in keys:
            self._members.pop(key, None)
            self._summaries.pop(key, None)
            self._has_or.pop(key, None)

    @property
    def canonical_classes(self) -> int:
        """Distinct canonical node classes across all member patterns —
        the sharing figure (``sum(|members|)`` nodes collapse to this)."""
        return len(self._canon_table)

    # -- canonicalization ---------------------------------------------------

    def _intern(self, node: PatternNode) -> tuple[int, int, bool]:
        """Bottom-up hash-consing into canonical classes.

        Two ids per node, returned as ``(cid, scid, needs_enum)``:

        * ``cid`` keys the node's full *boolean-phase* behaviour: its
          label test (variables and stars collapse — both accept any
          data node) and the edge-typed multiset of its children's
          classes.  ``_can`` is a conjunction over children (a
          disjunction for OR), so child order is irrelevant and the
          children are sorted.  Variable names and result marks are
          deliberately excluded: enumeration, which does consult them,
          is never shared.
        * ``scid`` keys the *shared part* only — the label test plus the
          non-enumeration (condition) children.  Sibling members whose
          steps differ only in where the spine/output continues share an
          scid, so condition screening of candidates runs once for the
          family (see ``_MemberMatcher._shared_can``).  For OR nodes the
          scid covers every alternative's scid, matching what the
          prefilter consults.
        """
        child_info = [
            (child.edge.value, *self._intern(child))
            for child in node.children
        ]
        children = tuple(sorted((e, cid) for e, cid, _, _ in child_info))
        kind = node.kind
        if kind is PatternKind.STAR or kind is PatternKind.VARIABLE:
            head: tuple = ("*",)
        elif kind is PatternKind.FUNCTION:
            names = node.function_names
            head = ("()", None if names is None else tuple(sorted(names)))
        elif kind is PatternKind.OR:
            head = ("|",)
        else:
            head = (kind.value, node.label)
        cid = self._canon_table.setdefault(
            (head, children), len(self._canon_table)
        )
        self._cids[node.uid] = cid
        if kind is PatternKind.OR:
            # The prefilter on OR asks _shared_can of each alternative.
            shared = tuple(
                sorted((e, scid) for e, _, scid, _ in child_info)
            )
        else:
            # _shared_can asks full _child_possible of each condition
            # child, a function of that child's *cid* and edge.
            shared = tuple(
                sorted((e, cid) for e, cid, _, needs in child_info if not needs)
            )
        scid = self._shared_table.setdefault(
            (head, shared), len(self._shared_table)
        )
        self._scids[node.uid] = scid
        needs = node.is_result or node.is_variable or any(
            n for _, _, _, n in child_info
        )
        return cid, scid, needs

    # -- the shared pass ----------------------------------------------------

    def evaluate(
        self,
        document: Document,
        keys: Optional[Sequence[Hashable]] = None,
        scope: "Optional[Node | Sequence[Node]]" = None,
    ) -> GroupPassResult:
        """Evaluate the selected members (default: all) in one pass.

        One projection set and one family of memo tables serve every
        selected member; the tables are cleared first, so the pass is
        correct on whatever state the document is in now.

        ``scope`` (one direct child of the document root, or a sequence
        of them — a shard's contiguous range) restricts the whole pass
        to those depth-1 subtrees, mirroring
        :meth:`~repro.pattern.match.Matcher.evaluate_scoped` — every
        member and every shared memo sees the same scope, and the
        tables are cleared afterwards so no scoped fact leaks into a
        later unscoped pass.
        """
        selected = list(self._members) if keys is None else list(keys)
        scope_triple = None
        if scope is not None:
            children = (
                (scope,) if isinstance(scope, Node) else tuple(scope)
            )
            if not children:
                raise ValueError("scope must name at least one child")
            for child in children:
                if child.parent is not document.root:
                    raise ValueError(
                        "scope members must be direct children of the "
                        "document root"
                    )
            scope_triple = (
                document.root,
                children,
                frozenset(id(child) for child in children),
            )
        self._can_memo.clear()
        self._below_memo.clear()
        self._cond_memo.clear()
        self._shared_can_memo.clear()
        self._cand_memo.clear()
        self._nodes_visited = 0
        self._skipped_subtrees = 0
        self._candidate_reuses = 0
        arena = self.arena
        if (
            arena is not None
            and arena.slot_for(document.root) is not None
            and not any(self._has_or[key] for key in selected)
        ):
            # Column scans label-prefilter every candidate themselves,
            # so a projection set would only re-derive pruning the
            # arena already applies; skip computing it.  OR members
            # fall off the column fast path (alternatives need the
            # object-side test), so they still want the projected walk.
            self._projected = None
        else:
            self._projected = self._compute_projection(document, selected)
        try:
            for member in self._members.values():
                member._scope = scope_triple
            match_sets = {
                key: self._members[key].evaluate(document) for key in selected
            }
        finally:
            projected = self._projected
            self._projected = None
            for member in self._members.values():
                member._scope = None
            if scope_triple is not None:
                # Scoped boolean facts must not survive into an
                # unscoped (or differently scoped) pass.
                self._can_memo.clear()
                self._below_memo.clear()
                self._cond_memo.clear()
                self._shared_can_memo.clear()
                self._cand_memo.clear()
        return GroupPassResult(
            match_sets=match_sets,
            nodes_visited=self._nodes_visited,
            skipped_subtrees=self._skipped_subtrees,
            candidate_reuses=self._candidate_reuses,
            projected=projected is not None,
            projection_size=0 if projected is None else len(projected),
        )

    # -- projection ---------------------------------------------------------

    def _compute_projection(
        self, document: Document, selected: Sequence[Hashable]
    ) -> Optional[set[int]]:
        """Node ids the selected members could possibly touch.

        Soundness: every non-root test of every selected member is in
        the merged summary, so a node in no source's ancestor chain is
        accepted by no member test — a walk skipping its subtree loses
        no candidate, no embedding, and flips no boolean outcome.  The
        pattern roots map only to the document root, which is always
        projected.  ``None`` (projection off) when a data wildcard makes
        every data node a source.
        """
        summary = LabelSummary.merge(
            self._summaries[key] for key in selected
        )
        if summary.any_data:
            return None
        arena = self.arena
        if arena is not None and arena.slot_for(document.root) is not None:
            # Column-side projection: label names resolve to interned
            # ids (a name never interned maps to no node — dropped),
            # then one pass over the arrays collects sources and their
            # ancestor chains.
            data_ids = frozenset(
                lid
                for lid in map(arena.label_id, summary.data_labels)
                if lid is not None
            )
            function_ids = frozenset(
                lid
                for lid in map(arena.label_id, summary.function_names)
                if lid is not None
            )
            projected = arena.collect_projection(
                data_ids, function_ids, summary.any_function
            )
            root_id = document.root.node_id
            if root_id is not None:
                projected.add(root_id)
            return projected
        projected = set()
        root_id = document.root.node_id
        if root_id is not None:
            projected.add(root_id)
        for node in self._projection_sources(document, summary):
            cursor: Optional[Node] = node
            while (
                cursor is not None
                and cursor.node_id is not None
                and cursor.node_id not in projected
            ):
                projected.add(cursor.node_id)
                cursor = cursor.parent
        return projected

    def _projection_sources(
        self, document: Document, summary: LabelSummary
    ) -> list[Node]:
        index = self.index
        if index is not None and index.document is document:
            sources: list[Node] = []
            for label in summary.data_labels:
                sources.extend(index.labels.get(label, {}).values())
            if summary.any_function:
                sources.extend(index.function_nodes())
            else:
                for name in summary.function_names:
                    sources.extend(index.functions.get(name, {}).values())
            return sources
        sources = []
        needs_functions = summary.any_function or bool(summary.function_names)
        guide = self.call_source
        if (
            needs_functions
            and guide is not None
            and getattr(guide, "document", None) is document
        ):
            sources.extend(
                guide.function_extents(
                    None if summary.any_function else summary.function_names
                )
            )
            needs_functions = False
        if summary.data_labels or needs_functions:
            # No index: one shared walk finds every source — still one
            # traversal for the whole family instead of one per member.
            for node in document.iter_nodes():
                self._nodes_visited += 1
                if node.is_function:
                    if needs_functions and (
                        summary.any_function
                        or node.label in summary.function_names
                    ):
                        sources.append(node)
                elif node.label in summary.data_labels:
                    sources.append(node)
        return sources

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PatternGroup({len(self._members)} members, "
            f"{self.canonical_classes} canonical classes)"
        )
