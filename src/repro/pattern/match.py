"""Query embeddings: evaluating tree patterns over AXML trees.

Implements Definition 1 of the paper — an embedding is a tree
homomorphism from the pattern to the document mapping the pattern root to
the document root, preserving parent-child (child edges) and
ancestor-descendant (descendant edges) relationships, with consistent
variable bindings.  The *snapshot result* of a query is the set of
restrictions of all embeddings to the result nodes.

Extended patterns (Section 2's "some useful machinery") are evaluated
natively: an OR node matches when one of its alternatives does, and
function pattern nodes map to function nodes of the document.

Performance notes — the matcher is exercised on tens of thousands of
document nodes by the benchmarks, so it works in two phases:

1. a memoised boolean ``can-match`` pass (ignoring variable consistency,
   a sound necessary condition), including a memoised
   ``exists-below`` relation so descendant edges cost ``O(|q|·|d|)``;
2. enumeration of embeddings, threaded through only the pattern branches
   that contain variables or result nodes — purely boolean branches are
   answered by phase 1.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, Optional, Protocol, Sequence

from ..axml.arena import (
    ANY_DATA,
    KIND_ELEMENT,
    KIND_FUNCTION,
    KIND_VALUE,
    DocumentArena,
)
from ..axml.document import Document
from ..axml.index import LabelIndex
from ..axml.node import Node
from .columnmatch import ColumnMatcher, compile_plan
from .nodes import EdgeKind, PatternKind, PatternNode
from .pattern import TreePattern


class OverlayLike(Protocol):
    """Duck type of :class:`repro.lazy.pushing.BindingsOverlay`.

    Pushed-bindings replies (Section 7) are embeddings that exist only
    as remote tuples; the matcher consults the overlay wherever a
    pattern child could be satisfied by such a reply instead of by
    document nodes.
    """

    def lookup(self, dnode: Node, pnode: PatternNode) -> list:
        ...

    def positions(self, pnode: PatternNode) -> list:
        ...


@dataclasses.dataclass(frozen=True)
class MatchOptions:
    """Tunables for the embedding semantics.

    Attributes:
        descend_into_parameters: whether descendant steps may traverse
            *into* the parameter subtrees of function nodes.  The paper
            treats parameters as arguments to be shipped to the service,
            not as document content, so the default is ``False`` (the
            function node itself is still visible, which is what the
            relevance queries need).
        use_label_index: whether descendant-step candidate enumeration
            may consult a :class:`~repro.axml.index.LabelIndex` (when
            the matcher was given one) instead of walking the whole
            subtree.  On by default; turning it off keeps the
            exhaustive walk as the oracle path, with the index still
            attached — which is how the differential tests compare the
            two.
    """

    descend_into_parameters: bool = False
    use_label_index: bool = True


class MatchCounter:
    """Work counters, used by the experiments to report matcher effort.

    ``candidates_visited`` counts nodes enumerated by walking the tree
    (child steps and un-indexed descendant steps alike, so the figure
    is comparable across edge kinds); ``index_candidates`` counts nodes
    served by a label index instead of a walk.

    The column counters keep the slot path's effort separately
    attributable: ``column_pass_nodes`` counts slots the column
    matcher's scans touched, ``column_rows`` the rows it produced, and
    ``column_fallbacks`` the evaluations where the fast path was
    requested but stood down to the object walk (no plan, an overlay,
    an unmirrored root or scope).
    """

    __slots__ = (
        "can_checks",
        "candidates_visited",
        "column_fallbacks",
        "column_pass_nodes",
        "column_rows",
        "embeddings_found",
        "evaluations",
        "index_candidates",
    )

    def __init__(self) -> None:
        self.can_checks = 0
        self.candidates_visited = 0
        self.column_fallbacks = 0
        self.column_pass_nodes = 0
        self.column_rows = 0
        self.embeddings_found = 0
        self.evaluations = 0
        self.index_candidates = 0

    def merge(self, other: "MatchCounter") -> None:
        self.can_checks += other.can_checks
        self.candidates_visited += other.candidates_visited
        self.column_fallbacks += other.column_fallbacks
        self.column_pass_nodes += other.column_pass_nodes
        self.column_rows += other.column_rows
        self.embeddings_found += other.embeddings_found
        self.evaluations += other.evaluations
        self.index_candidates += other.index_candidates


@dataclasses.dataclass(frozen=True)
class ResultRow:
    """One element of a snapshot result.

    ``nodes`` is aligned with ``pattern.result_nodes()`` order;
    ``bindings`` holds every variable binding of the witnessing
    embedding, sorted by variable name.
    """

    nodes: tuple[Node, ...]
    bindings: tuple[tuple[str, str], ...]

    def binding(self, variable: str) -> Optional[str]:
        for name, value in self.bindings:
            if name == variable:
                return value
        return None

    def values(self) -> tuple[str, ...]:
        """The labels of the result nodes (values for leaf matches)."""
        return tuple(node.label for node in self.nodes)


class MatchSet:
    """The snapshot result ``q(d)`` of a pattern over a tree."""

    def __init__(self, pattern: TreePattern, rows: list[ResultRow]) -> None:
        self.pattern = pattern
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    @staticmethod
    def row_key(row: ResultRow) -> tuple[int, ...]:
        """Stable identity of a row: the result nodes' document ids.

        Node ids are allocated monotonically and never reused, so the
        key survives removals — the answer-maintenance layer uses it to
        recognise rows across splices (bindings are tie-broken by the
        first witnessing embedding and are *not* part of identity).
        """
        return tuple(
            -1 if node.node_id is None else node.node_id
            for node in row.nodes
        )

    @classmethod
    def compose(
        cls, pattern: TreePattern, row_groups: Iterable[list[ResultRow]]
    ) -> "MatchSet":
        """Union of per-scope row groups, deduplicated by row identity.

        The decomposition answer maintenance relies on (see
        :meth:`Matcher.evaluate_scoped`): the full snapshot result is
        the composition of the scoped results over all depth-1 subtrees.
        First occurrence wins, preserving group order.
        """
        rows: list[ResultRow] = []
        seen: set[tuple[int, ...]] = set()
        for group in row_groups:
            for row in group:
                key = cls.row_key(row)
                if key not in seen:
                    seen.add(key)
                    rows.append(row)
        return cls(pattern, rows)

    def spliced(
        self,
        retracted: "set[tuple[int, ...]]",
        added: list[ResultRow],
    ) -> "MatchSet":
        """A new result with ``retracted`` row keys removed and ``added``
        rows appended — the splice primitive of answer maintenance."""
        if not retracted and not added:
            return self
        rows = [
            row for row in self.rows if self.row_key(row) not in retracted
        ]
        rows.extend(added)
        return MatchSet(self.pattern, rows)

    def distinct_nodes(self, position: int = 0) -> list[Node]:
        """Distinct document nodes bound at one result position."""
        seen: dict[int, Node] = {}
        for row in self.rows:
            node = row.nodes[position]
            seen.setdefault(id(node), node)
        return list(seen.values())

    def value_rows(self) -> set[tuple[str, ...]]:
        """Result rows as label tuples — handy for equality in tests."""
        return {row.values() for row in self.rows}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatchSet({len(self.rows)} rows of {self.pattern.name!r})"


class Matcher:
    """Evaluates one pattern over trees; reusable across documents."""

    def __init__(
        self,
        pattern: TreePattern,
        options: Optional[MatchOptions] = None,
        counter: Optional[MatchCounter] = None,
        overlay: Optional["OverlayLike"] = None,
        index: Optional[LabelIndex] = None,
        arena: Optional[DocumentArena] = None,
        column_match: bool = False,
    ) -> None:
        self.pattern = pattern
        self.options = options or MatchOptions()
        self.counter = counter or MatchCounter()
        self.overlay = overlay
        self.index = index
        self.arena = arena
        #: Column fast path (``repro.pattern.columnmatch``): auto-off
        #: without an arena; an overlay or an uncompilable shape (OR,
        #: interior data wildcards) leaves ``_column`` unset, so every
        #: evaluation stands down to the walk and counts a fallback.
        self.column_match = bool(column_match) and arena is not None
        self._column: Optional[ColumnMatcher] = None
        if self.column_match and overlay is None:
            plan = compile_plan(pattern)
            if plan is not None:
                self._column = ColumnMatcher(
                    plan, arena, self.options, self.counter
                )
        self._result_nodes = pattern.result_nodes()
        self._needs_enum: dict[int, bool] = {}
        self._compute_needs_enum(pattern.root)
        self._can_memo: dict[tuple[int, int], bool] = {}
        self._below_memo: dict[tuple[int, int], bool] = {}
        #: When set to ``(root, children, id-set)``, the walk below
        #: ``root`` is restricted to the depth-1 subtrees under
        #: ``children`` (one for answer maintenance, a contiguous range
        #: for shard passes).
        self._scope: Optional[
            tuple[Node, tuple[Node, ...], frozenset[int]]
        ] = None

    # -- public API --------------------------------------------------------

    def evaluate(self, document: Document) -> MatchSet:
        """Snapshot result over a document (root maps to root)."""
        return self.evaluate_at(document.root)

    def evaluate_at(self, root: Node) -> MatchSet:
        """Snapshot result with the pattern root mapped to ``root``."""
        self._reset_memos()
        self.counter.evaluations += 1
        if self.column_match:
            column_rows = self._column_pass(root)
            if column_rows is not None:
                return MatchSet(self.pattern, column_rows)
        rows: dict[tuple[int, ...], ResultRow] = {}
        for env, assigns in self._embed(self.pattern.root, root, {}):
            self._record_row(rows, env, assigns)
        return MatchSet(self.pattern, list(rows.values()))

    def _column_pass(self, root: Node) -> Optional[list[ResultRow]]:
        """The column fast path: the whole pattern evaluated in slot
        space (:mod:`repro.pattern.columnmatch`), nodes materialised
        only for the final rows.  ``None`` means stand-down — no
        compiled plan (OR / interior wildcard / overlay), an unmirrored
        root, or a scope child without a slot — counted as a
        ``column_fallback``; the caller runs the object walk."""
        column = self._column
        arena = self.arena
        slot_rows = None
        if column is not None and arena is not None:
            root_slot = arena.slot_for(root)
            scope = self._scope
            scope_slots: Optional[list[int]] = None
            usable = root_slot is not None
            if usable and scope is not None:
                if scope[0] is not root:
                    usable = False
                else:
                    scope_slots = []
                    for child in scope[1]:
                        child_slot = arena.slot_for(child)
                        if child_slot is None:
                            usable = False
                            break
                        scope_slots.append(child_slot)
            if usable:
                assert root_slot is not None
                slot_rows = column.run(root_slot, scope_slots)
        if slot_rows is None:
            self.counter.column_fallbacks += 1
            return None
        node_at = arena._node_at
        return [
            ResultRow(
                nodes=tuple(node_at[s] for s in slots), bindings=bindings
            )
            for slots, bindings in slot_rows
        ]

    def evaluate_scoped(
        self, document: Document, scope: "Node | Sequence[Node]"
    ) -> MatchSet:
        """Snapshot result restricted to a set of depth-1 subtrees.

        The pattern root still maps to the document root, but below the
        root the walk may only enter ``scope`` — one direct child of
        the root, or a sequence of them (a shard of the root's child
        range; see ``repro.pattern.shards``).  When the pattern root
        has exactly one child, every embedding's non-root images are
        confined to a single depth-1 subtree, so the full snapshot
        result is exactly the composition (:meth:`MatchSet.compose`)
        of the scoped results over any partition of the root children —
        the invariant the answer-maintenance layer
        (``repro.lazy.answers``) splices over and the shard-parallel
        group pass merges by.
        """
        children = (scope,) if isinstance(scope, Node) else tuple(scope)
        if not children:
            raise ValueError("scope must name at least one root child")
        for child in children:
            if child.parent is not document.root:
                raise ValueError(
                    "scope must be a direct child of the document root"
                )
        self._scope = (
            document.root,
            children,
            frozenset(id(child) for child in children),
        )
        try:
            return self.evaluate_at(document.root)
        finally:
            self._scope = None

    def evaluate_forest(
        self, forest: Iterable[Node], anchor_edge: EdgeKind = EdgeKind.CHILD
    ) -> MatchSet:
        """Snapshot result over a detached forest.

        The pattern root may map to any tree root of the forest (child
        anchoring) or to any node of the forest (descendant anchoring).
        This is how services evaluate pushed subqueries over their own
        results (Section 7): the result forest is spliced in at exactly
        the position the pushed pattern's root would occupy.
        """
        self._reset_memos()
        self.counter.evaluations += 1
        rows: dict[tuple[int, ...], ResultRow] = {}
        for tree in forest:
            anchors: Iterable[Node]
            if anchor_edge is EdgeKind.CHILD:
                anchors = (tree,)
            else:
                anchors = tree.iter_subtree()
            for anchor in anchors:
                for env, assigns in self._embed(self.pattern.root, anchor, {}):
                    self._record_row(rows, env, assigns)
        return MatchSet(self.pattern, list(rows.values()))

    def has_embedding(self, root: Node) -> bool:
        """Does at least one embedding exist? (phase-1 check + variables)."""
        self._reset_memos()
        self.counter.evaluations += 1
        for _ in self._embed(self.pattern.root, root, {}):
            return True
        return False

    # -- building-block queries (used by the F-guide residual filter) ----------

    def reset(self) -> None:
        """Drop memo tables (call between evaluations on a mutated doc)."""
        self._reset_memos()

    def node_test(self, pnode: PatternNode, dnode: Node) -> bool:
        """Does the node-level test of ``pnode`` accept ``dnode``?"""
        if pnode.is_or:
            return any(self.node_test(alt, dnode) for alt in pnode.children)
        return self._label_matches(pnode, dnode)

    def condition_holds(self, pnode: PatternNode, dnode: Node) -> bool:
        """Can the child condition ``pnode`` be satisfied under ``dnode``?

        Boolean semantics only (value joins across branches are ignored
        — the sound approximation Section 6 uses for residual NFQ
        filtering on guide candidates).
        """
        return self._child_possible(pnode, dnode)

    # -- bookkeeping ----------------------------------------------------------

    def _reset_memos(self) -> None:
        self._can_memo.clear()
        self._below_memo.clear()

    # -- subclass hooks (repro.pattern.multimatch) ---------------------------

    def _memo_key(self, pnode: PatternNode, dnode: Node) -> tuple[int, int]:
        """Memo key for boolean facts about ``(pnode, dnode)``.

        The group matcher overrides this with the pattern node's
        *canonical* id so structurally equal branches of different
        member patterns share one memo entry.  Sound because the
        boolean phase never looks at variable names or result marks.
        """
        return (pnode.uid, id(dnode))

    def _visit_ok(self, node: Node) -> bool:
        """May a subtree walk enter ``node``?

        The group matcher overrides this with a projection-set check:
        a subtree containing no node any member pattern tests can be
        skipped wholesale.  The plain matcher visits everything.
        """
        return True

    def _children_of(self, dnode: Node) -> "Sequence[Node]":
        """The children visible to the walk under the active scope.

        Everywhere the matcher steps from a node to its children it
        must go through this hook, so :meth:`evaluate_scoped` can
        narrow the scoped root to its depth-1 subtree range.
        """
        scope = self._scope
        if scope is not None and dnode is scope[0]:
            return scope[1]
        return dnode.children

    def _record_row(
        self,
        rows: dict[tuple[int, ...], ResultRow],
        env: dict[str, str],
        assigns: tuple[tuple[int, Node], ...],
    ) -> None:
        by_uid = dict(assigns)
        nodes = tuple(by_uid[r.uid] for r in self._result_nodes if r.uid in by_uid)
        if len(nodes) != len(self._result_nodes):
            # An OR branch hid some result node: skip incomplete rows.
            # (Relevance queries mark exactly one node, which is always
            # outside OR alternatives, so this never triggers for them.)
            return
        key = tuple(id(n) for n in nodes)
        if key not in rows:
            self.counter.embeddings_found += 1
            rows[key] = ResultRow(
                nodes=nodes, bindings=tuple(sorted(env.items()))
            )

    def _compute_needs_enum(self, node: PatternNode) -> bool:
        needed = node.is_result or node.is_variable
        for child in node.children:
            needed = self._compute_needs_enum(child) or needed
        self._needs_enum[node.uid] = needed
        return needed

    # -- phase 1: boolean reachability ---------------------------------------------

    def _label_matches(self, pnode: PatternNode, dnode: Node) -> bool:
        kind = pnode.kind
        if kind is PatternKind.ELEMENT:
            return dnode.is_element and dnode.label == pnode.label
        if kind is PatternKind.VALUE:
            return dnode.is_value and dnode.label == pnode.label
        if kind is PatternKind.VARIABLE or kind is PatternKind.STAR:
            return dnode.is_data
        if kind is PatternKind.FUNCTION:
            if not dnode.is_function:
                return False
            names = pnode.function_names
            return names is None or dnode.label in names
        raise AssertionError(f"unexpected pattern kind {kind}")

    def _can(self, pnode: PatternNode, dnode: Node) -> bool:
        key = self._memo_key(pnode, dnode)
        cached = self._can_memo.get(key)
        if cached is not None:
            return cached
        self.counter.can_checks += 1
        if pnode.is_or:
            outcome = any(self._can(alt, dnode) for alt in pnode.children)
        elif not self._label_matches(pnode, dnode):
            outcome = False
        else:
            outcome = all(
                self._child_possible(child, dnode) for child in pnode.children
            )
        self._can_memo[key] = outcome
        return outcome

    def _overlay_rows(self, child: PatternNode, dnode: Node) -> list:
        """Overlay rows standing for embeddings of ``child`` when its
        parent pattern node is matched at ``dnode``.

        A bindings reply is recorded at the call's parent.  For a child
        step that position must be ``dnode`` itself, but a descendant
        step from ``dnode`` would have walked into the spliced forest of
        any call position reachable below it — so those positions'
        rows count too (same reachability rules as the walk:
        scope and the function-parameter barrier).
        """
        overlay = self.overlay
        if overlay is None:
            return []
        rows = list(overlay.lookup(dnode, child))
        if child.edge is EdgeKind.DESCENDANT:
            descend = self.options.descend_into_parameters
            for position, extra in overlay.positions(child):
                if not extra or position is dnode:
                    continue
                if position.is_function and not descend:
                    continue  # a parameter forest: invisible to the walk
                if self._strictly_below(position, dnode):
                    rows.extend(extra)
        return rows

    def _child_possible(self, child: PatternNode, dnode: Node) -> bool:
        if self.overlay is not None and self._overlay_rows(child, dnode):
            return True
        if child.edge is EdgeKind.CHILD:
            return any(
                self._can(child, cand) for cand in self._children_of(dnode)
            )
        return self._exists_below(child, dnode)

    def _exists_below(self, pnode: PatternNode, dnode: Node) -> bool:
        """Is there a match for ``pnode`` strictly below ``dnode``?

        Iterative DFS (documents can be deeper than the recursion
        limit) with memoisation: on a negative outcome every fully
        explored interior node is negative too.
        """
        memo = self._below_memo
        key = self._memo_key(pnode, dnode)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if self.arena is not None:
            scanned = self._exists_below_arena(pnode, dnode)
            if scanned is not None:
                memo[key] = scanned
                return scanned
        if (
            self.index is not None
            and self.options.use_label_index
            and self.index.document.contains(dnode)
        ):
            indexed = self._exists_below_indexed(pnode, dnode)
            if indexed is not None:
                memo[key] = indexed
                return indexed
        descend_into_params = self.options.descend_into_parameters
        found = False
        explored: list[tuple[int, int]] = []
        stack = [c for c in self._children_of(dnode) if self._visit_ok(c)]
        while stack:
            node = stack.pop()
            if self._can(pnode, node):
                found = True
                break
            if node.is_function and not descend_into_params:
                continue
            node_key = self._memo_key(pnode, node)
            sub = memo.get(node_key)
            if sub is True:
                found = True
                break
            if sub is False:
                continue
            explored.append(node_key)
            stack.extend(c for c in node.children if self._visit_ok(c))
        if not found:
            for node_key in explored:
                memo[node_key] = False
        memo[key] = found
        return found

    #: Selectivity cutoff for index probes below interior nodes.  From
    #: the document root the bucket is never larger than the walk, but a
    #: big bucket probed for a *small* subtree is a pessimisation — the
    #: walk stops after |subtree| nodes, the bucket scan only after
    #: |bucket| ancestor checks.  Subtree sizes are not maintained, so
    #: below the root the index is used only for small (selective)
    #: buckets.
    SMALL_BUCKET = 64

    def _index_worthwhile(
        self, buckets: list[dict[int, Node]], dnode: Node
    ) -> bool:
        assert self.index is not None
        if dnode is self.index.document.root:
            return True
        return sum(len(members) for members in buckets) <= self.SMALL_BUCKET

    def _exists_below_indexed(
        self, pnode: PatternNode, dnode: Node
    ) -> Optional[bool]:
        """Index-served existence check, or ``None`` when the test is
        not index-answerable (wildcards) or the bucket is too big to
        beat the walk.  Probes only the label's bucket instead of
        walking the subtree."""
        buckets = self._index_buckets(pnode)
        if buckets is None or not self._index_worthwhile(buckets, dnode):
            return None
        for members in buckets:
            for node in members.values():
                self.counter.index_candidates += 1
                if self._strictly_below(node, dnode) and self._can(
                    pnode, node
                ):
                    return True
        return False

    # -- arena fast paths ------------------------------------------------------

    def _arena_filter(
        self, pnode: PatternNode
    ) -> Optional[tuple[int, Optional[frozenset[int]]]]:
        """Compile ``pnode``'s node test to an arena column filter
        ``(want_kind, want_label_ids)``, or ``None`` when the test is
        not column-answerable (OR nodes — alternatives can mix kinds;
        the index or the walk handles them).  ``want_label_ids`` of
        ``None`` means any label; an *empty* set means the label was
        never interned, so no live node can match.  Label-id sets are
        computed per call (two dict probes), never cached: interning is
        append-only and a later splice may introduce the label.
        """
        arena = self.arena
        assert arena is not None
        kind = pnode.kind
        if kind is PatternKind.ELEMENT or kind is PatternKind.VALUE:
            lid = arena.label_id(pnode.label)
            ids = frozenset() if lid is None else frozenset((lid,))
            want = KIND_ELEMENT if kind is PatternKind.ELEMENT else KIND_VALUE
            return (want, ids)
        if kind is PatternKind.STAR or kind is PatternKind.VARIABLE:
            return (ANY_DATA, None)
        if kind is PatternKind.FUNCTION:
            names = pnode.function_names
            if names is None:
                return (KIND_FUNCTION, None)
            ids = frozenset(
                lid
                for lid in (arena.label_id(name) for name in names)
                if lid is not None
            )
            return (KIND_FUNCTION, ids)
        return None

    def _arena_roots(self, dnode: Node) -> Optional[list[int]]:
        """Slots of the walk's entry points below ``dnode`` (its
        scope-visible children), or ``None`` when ``dnode`` is not
        mirrored by the arena (wrong document, stale node)."""
        arena = self.arena
        assert arena is not None
        if arena.slot_for(dnode) is None:
            return None
        slot_of = arena._slot_of
        roots = []
        for child in self._children_of(dnode):
            slot = slot_of.get(child.node_id)
            if slot is not None:
                roots.append(slot)
        return roots

    def _exists_below_arena(
        self, pnode: PatternNode, dnode: Node
    ) -> Optional[bool]:
        """Column-scan existence check: a tight int-loop DFS over the
        arena arrays, label-prefiltered.  For every non-OR pattern kind
        the column screen is *equivalent* to ``_label_matches`` (an
        un-interned label already returned ``False`` above; ``ANY_DATA``
        on a live slot is exactly ``is_data``; a function-name set is
        screened by interned ids), so a leaf ``pnode`` needs no per-node
        re-test at all — only interior pnodes still run ``_can``, for
        their child conditions.  ``None`` falls back to the index probe
        or the object walk.
        """
        spec = self._arena_filter(pnode)
        if spec is None:
            return None
        roots = self._arena_roots(dnode)
        if roots is None:
            return None
        want_kind, want_ids = spec
        if want_ids is not None and not want_ids:
            return False
        arena = self.arena
        assert arena is not None
        kind_col = arena.kind
        label_col = arena.label
        first_child = arena.first_child
        next_sibling = arena.next_sibling
        node_at = arena._node_at
        descend = self.options.descend_into_parameters
        leaf = not pnode.children
        stack = roots
        while stack:
            slot = stack.pop()
            k = kind_col[slot]
            if (
                (k == want_kind or (want_kind == ANY_DATA and k != KIND_FUNCTION))
                and (want_ids is None or label_col[slot] in want_ids)
                and (leaf or self._can(pnode, node_at[slot]))
            ):
                return True
            if k == KIND_FUNCTION and not descend:
                continue
            c = first_child[slot]
            while c != -1:
                stack.append(c)
                c = next_sibling[c]
        return False

    def _arena_candidates(
        self, pnode: PatternNode, dnode: Node
    ) -> Optional[list[Node]]:
        """Descendant candidates served from the columns, label-
        prefiltered, in node-id order (same deterministic order as the
        index path; skipped nodes cannot pass ``_quick_filter``).
        ``None`` falls back to the index or the walk.
        """
        spec = self._arena_filter(pnode)
        if spec is None:
            return None
        roots = self._arena_roots(dnode)
        if roots is None:
            return None
        want_kind, want_ids = spec
        if want_ids is not None and not want_ids:
            return []
        arena = self.arena
        assert arena is not None
        slots = arena.scan_descendants(
            roots, want_kind, want_ids, self.options.descend_into_parameters
        )
        slots.sort(key=arena.node_id.__getitem__)
        self.counter.candidates_visited += len(slots)
        node_at = arena._node_at
        return [node_at[slot] for slot in slots]

    # -- phase 2: enumeration ------------------------------------------------------------

    def _candidates(
        self, dnode: Node, edge: EdgeKind, pnode: Optional[PatternNode] = None
    ) -> Iterator[Node]:
        if edge is EdgeKind.CHILD:
            for child in self._children_of(dnode):
                self.counter.candidates_visited += 1
                yield child
            return
        if pnode is not None and self.arena is not None:
            served = self._arena_candidates(pnode, dnode)
            if served is not None:
                yield from served
                return
        if (
            pnode is not None
            and self.index is not None
            and self.options.use_label_index
            and self.index.document.contains(dnode)
        ):
            indexed = self._index_candidates(pnode, dnode)
            if indexed is not None:
                yield from indexed
                return
        stack = [
            c for c in reversed(self._children_of(dnode)) if self._visit_ok(c)
        ]
        while stack:
            node = stack.pop()
            self.counter.candidates_visited += 1
            yield node
            if node.is_function and not self.options.descend_into_parameters:
                continue
            stack.extend(
                c for c in reversed(node.children) if self._visit_ok(c)
            )

    def _index_candidates(
        self, pnode: PatternNode, dnode: Node
    ) -> Optional[list[Node]]:
        """Descendant candidates for ``pnode`` under ``dnode``, by label.

        Returns ``None`` when the step is not index-answerable (star
        and variable tests match any data node, so the index would just
        replay the walk) or when the bucket fails the selectivity
        cutoff.  Candidates come back in node-id order — a deterministic
        order; row sets are independent of it.
        """
        buckets = self._index_buckets(pnode)
        if buckets is None or not self._index_worthwhile(buckets, dnode):
            return None
        hits: dict[int, Node] = {}
        for members in buckets:
            hits.update(members)
        out = [
            (node_id, node)
            for node_id, node in hits.items()
            if self._strictly_below(node, dnode)
        ]
        out.sort(key=lambda pair: pair[0])
        self.counter.index_candidates += len(out)
        return [node for _, node in out]

    def _index_buckets(
        self, pnode: PatternNode
    ) -> Optional[list[dict[int, Node]]]:
        assert self.index is not None
        kind = pnode.kind
        if kind is PatternKind.ELEMENT or kind is PatternKind.VALUE:
            return [self.index.labels.get(pnode.label, {})]
        if kind is PatternKind.FUNCTION:
            names = pnode.function_names
            if names is None:
                return list(self.index.functions.values())
            return [self.index.functions.get(name, {}) for name in names]
        if pnode.is_or:
            buckets: list[dict[int, Node]] = []
            for alt in pnode.children:
                sub = self._index_buckets(alt)
                if sub is None:
                    return None
                buckets.extend(sub)
            return buckets
        return None  # STAR / VARIABLE: any data node qualifies

    def _strictly_below(self, node: Node, dnode: Node) -> bool:
        """Would the subtree walk from ``dnode`` reach ``node``?

        Mirrors the walk's function-parameter barrier: parameter
        subtrees are invisible to descendant steps unless the options
        say otherwise.  Under an active scope the walk leaves the
        scoped root through exactly one child, so an index-served
        candidate only counts when the path to it passes through that
        child — otherwise the index would smuggle in nodes the scoped
        walk cannot reach.
        """
        descend = self.options.descend_into_parameters
        scope = self._scope
        prev = node
        ancestor = node.parent
        while ancestor is not None:
            if ancestor is dnode:
                if (
                    scope is not None
                    and ancestor is scope[0]
                    and id(prev) not in scope[2]
                ):
                    return False
                return True
            if ancestor.is_function and not descend:
                return False
            prev = ancestor
            ancestor = ancestor.parent
        return False

    def _embed(
        self, pnode: PatternNode, dnode: Node, env: dict[str, str]
    ) -> Iterator[tuple[dict[str, str], tuple[tuple[int, Node], ...]]]:
        if pnode.is_or:
            for alt in pnode.children:
                yield from self._embed(alt, dnode, env)
            return
        if not self._can(pnode, dnode):
            return
        if pnode.is_variable:
            bound = env.get(pnode.label)
            if bound is not None:
                if bound != dnode.label:
                    return
            else:
                env = {**env, pnode.label: dnode.label}

        assigns: tuple[tuple[int, Node], ...] = ()
        if pnode.is_result:
            assigns = ((pnode.uid, dnode),)

        enum_children = [
            c for c in pnode.children if self._needs_enum[c.uid]
        ]
        # Purely boolean children were already verified by _can(pnode,.).
        yield from self._combine(enum_children, 0, dnode, env, assigns)

    def _combine(
        self,
        enum_children: list[PatternNode],
        index: int,
        dnode: Node,
        env: dict[str, str],
        assigns: tuple[tuple[int, Node], ...],
    ) -> Iterator[tuple[dict[str, str], tuple[tuple[int, Node], ...]]]:
        if index == len(enum_children):
            yield env, assigns
            return
        child = enum_children[index]
        for cand in self._candidates(dnode, child.edge, child):
            if not self._quick_filter(child, cand):
                continue
            for env2, a2 in self._embed(child, cand, env):
                yield from self._combine(
                    enum_children, index + 1, dnode, env2, assigns + a2
                )
        if self.overlay is not None:
            for row in self._overlay_rows(child, dnode):
                env2 = row.merge_env(env)
                if env2 is None:
                    continue
                extra = tuple(
                    (uid, node) for uid, node in row.nodes_by_uid.items()
                )
                yield from self._combine(
                    enum_children, index + 1, dnode, env2, assigns + extra
                )

    def _quick_filter(self, pnode: PatternNode, dnode: Node) -> bool:
        if pnode.is_or:
            return any(self._can(alt, dnode) for alt in pnode.children)
        return self._can(pnode, dnode)


# -- module-level conveniences ---------------------------------------------------


def snapshot_result(
    pattern: TreePattern,
    document: Document,
    options: Optional[MatchOptions] = None,
    counter: Optional[MatchCounter] = None,
) -> MatchSet:
    """Evaluate ``pattern`` over ``document`` in its current state."""
    return Matcher(pattern, options=options, counter=counter).evaluate(document)


def has_match(pattern: TreePattern, document: Document) -> bool:
    return Matcher(pattern).has_embedding(document.root)
