"""Structured evaluation tracing: span trees over two clocks.

The engine's metrics answer *how much* work an evaluation did; they
cannot answer *where the time went*.  This module provides the span
tree behind the per-phase claims of the paper's evaluation (E1/E2
pruning, E5 layering): every phase of an evaluation —

    evaluate
      satisfiability          (building / simplifying the NFQs)
      layer
        round
          relevance_check     (evaluating the relevance queries)
          batch               (one concurrent dispatch, when the
                               scheduler is on — wraps its calls'
                               ``invocation`` spans, whose simulated
                               intervals legitimately overlap)
          invocation          (one service call, with attempt /
                               backoff / breaker / cache-hit events)
            push              (computing the pushed subquery)
      final_match             (conventional evaluation at the end)
        answer_maint          (serving the final match from the
                               maintained answer: dirty-subtree
                               re-matching + row splicing)

The serving layer (``repro.serve``) adds its own root above these:

    serve_round               (one QueryServer round: admission,
                               the shared cross-tenant group pass,
                               then the due refreshes)
      serve_refresh           (one subscription's refresh — wraps
                               the engine's ``evaluate`` tree when
                               the refresh actually ran the engine)

— becomes a :class:`Span` carrying *wall-clock* timings (real CPU cost
of being lazy) and *simulated-clock* timings (the bus clock: service
latency, transfer, backoff), plus tags and point-in-time
:class:`SpanEvent` s (retry attempts, faults, breaker transitions).

Spans are delivered to a :class:`TraceSink` as they close (children
before parents, ids threading the tree back together).  Three sinks
ship with the system: :class:`InMemorySink` for tests and benchmarks,
:class:`JsonlSink` for offline analysis, and the implicit no-op path —
when no sink is configured the engine uses the shared
:data:`NULL_TRACER`, whose ``span()``/``event()`` do nothing, keeping
tracing near-zero-cost when disabled.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Any, Callable, Iterable, Optional, Protocol, TextIO, Union


# Canonical phase names, so the engine, the profile aggregation and the
# tests never drift on spelling.
EVALUATE = "evaluate"
SATISFIABILITY = "satisfiability"
LAYER = "layer"
ROUND = "round"
RELEVANCE_CHECK = "relevance_check"
GROUP_PASS = "group_pass"
COLUMN_PASS = "column_pass"
BATCH = "batch"
INVOCATION = "invocation"
PUSH = "push"
FINAL_MATCH = "final_match"
ANSWER_MAINT = "answer_maint"
SERVE_ROUND = "serve_round"
SERVE_REFRESH = "serve_refresh"

# Event names emitted by the service bus inside an ``invocation`` span.
EVENT_ATTEMPT = "attempt"
EVENT_FAULT = "fault"
EVENT_RETRY = "retry"
EVENT_BACKOFF = "backoff"
EVENT_BREAKER_TRIP = "breaker_trip"
EVENT_SHORT_CIRCUIT = "breaker_short_circuit"
EVENT_CACHE_HIT = "cache_hit"


@dataclasses.dataclass
class SpanEvent:
    """A point-in-time annotation on a span (a retry, a breaker trip...)."""

    name: str
    wall_s: float
    sim_s: float
    tags: dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanEvent":
        return cls(
            name=data["name"],
            wall_s=data["wall_s"],
            sim_s=data["sim_s"],
            tags=dict(data.get("tags") or {}),
        )


@dataclasses.dataclass
class Span:
    """One timed phase of an evaluation.

    Wall times are seconds relative to the tracer's epoch (so traces
    are small numbers and comparable across exports); simulated times
    are readings of the bus clock.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_wall_s: float
    start_sim_s: float
    end_wall_s: Optional[float] = None
    end_sim_s: Optional[float] = None
    tags: dict[str, Any] = dataclasses.field(default_factory=dict)
    events: list[SpanEvent] = dataclasses.field(default_factory=list)
    children: list["Span"] = dataclasses.field(default_factory=list)

    @property
    def wall_s(self) -> float:
        """Inclusive wall duration (0.0 while still open)."""
        if self.end_wall_s is None:
            return 0.0
        return self.end_wall_s - self.start_wall_s

    @property
    def sim_s(self) -> float:
        """Inclusive simulated duration (0.0 while still open)."""
        if self.end_sim_s is None:
            return 0.0
        return self.end_sim_s - self.start_sim_s

    def iter_subtree(self) -> Iterable["Span"]:
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def find_all(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree."""
        return [span for span in self.iter_subtree() if span.name == name]

    def event_names(self) -> list[str]:
        return [event.name for event in self.events]

    def to_dict(self) -> dict[str, Any]:
        """The flat (childless) JSONL representation of this span."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_wall_s": self.start_wall_s,
            "end_wall_s": self.end_wall_s,
            "start_sim_s": self.start_sim_s,
            "end_sim_s": self.end_sim_s,
            "tags": dict(self.tags),
            "events": [event.to_dict() for event in self.events],
        }

    def to_tree_dict(self) -> dict[str, Any]:
        """The nested representation (for round-trip comparisons)."""
        data = self.to_dict()
        data["children"] = [child.to_tree_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            start_wall_s=data["start_wall_s"],
            end_wall_s=data.get("end_wall_s"),
            start_sim_s=data["start_sim_s"],
            end_sim_s=data.get("end_sim_s"),
            tags=dict(data.get("tags") or {}),
            events=[SpanEvent.from_dict(e) for e in data.get("events") or []],
        )


class TraceSink(Protocol):
    """Receives every span as it closes (children close before parents)."""

    def on_span_end(self, span: Span) -> None:  # pragma: no cover - protocol
        ...


class InMemorySink:
    """Collects spans in memory — the sink for tests and benchmarks."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def on_span_end(self, span: Span) -> None:
        self.spans.append(span)

    @property
    def roots(self) -> list[Span]:
        """Completed root spans (one per ``evaluate``), children attached."""
        return [span for span in self.spans if span.parent_id is None]

    def find_all(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def clear(self) -> None:
        self.spans.clear()


class JsonlSink:
    """Writes one JSON object per closed span to a line-oriented stream.

    Accepts a path (opened and owned, close with :meth:`close` or use
    as a context manager) or an already-open text stream (borrowed).
    """

    def __init__(self, target: Union[str, TextIO]) -> None:
        if isinstance(target, str):
            self._handle: TextIO = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def on_span_end(self, span: Span) -> None:
        self._handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class TeeSink:
    """Fans every span out to several sinks (e.g. memory + JSONL)."""

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks = list(sinks)

    def on_span_end(self, span: Span) -> None:
        for sink in self.sinks:
            sink.on_span_end(span)


def load_jsonl_spans(lines: Iterable[str]) -> list[Span]:
    """Rebuild the span trees from JSONL lines; returns the roots.

    The inverse of exporting through :class:`JsonlSink`:
    ``load_jsonl_spans(open(path))`` reconstructs exactly the trees an
    :class:`InMemorySink` would have held for the same run.
    """
    spans: dict[int, Span] = {}
    order: list[Span] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        span = Span.from_dict(json.loads(line))
        spans[span.span_id] = span
        order.append(span)
    roots: list[Span] = []
    for span in order:
        if span.parent_id is None:
            roots.append(span)
        else:
            parent = spans.get(span.parent_id)
            if parent is None:
                roots.append(span)  # orphan: parent line missing/truncated
            else:
                parent.children.append(span)
    return roots


class _NullSpanContext:
    """The shared do-nothing context manager behind :data:`NULL_TRACER`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every operation is a near-free no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **tags: Any) -> _NullSpanContext:
        return _NULL_CONTEXT

    def event(self, name: str, **tags: Any) -> None:
        return None


NULL_TRACER = NullTracer()
"""Module-wide singleton used whenever tracing is off."""


class _SpanContext:
    """Context manager closing one span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc: object) -> bool:
        self._tracer._end_span(self._span)
        return False


class Tracer:
    """Builds the span tree for one component (engine and bus share one).

    ``sim_clock`` supplies the simulated-seconds reading for span
    boundaries and events — the engine binds it to the bus clock so
    spans measure simulated service time alongside wall time.
    """

    enabled = True

    def __init__(
        self,
        sink: TraceSink,
        sim_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.sink = sink
        self.sim_clock = sim_clock or (lambda: 0.0)
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._stack: list[Span] = []

    def _now_wall(self) -> float:
        return time.perf_counter() - self._epoch

    def span(self, name: str, **tags: Any) -> _SpanContext:
        """Open a child of the current span (or a new root)."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_wall_s=self._now_wall(),
            start_sim_s=self.sim_clock(),
            tags=tags,
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanContext(self, span)

    def _end_span(self, span: Span) -> None:
        span.end_wall_s = self._now_wall()
        span.end_sim_s = self.sim_clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - misuse guard (out-of-order exit)
            self._stack = [s for s in self._stack if s is not span]
        if self._stack:
            self._stack[-1].children.append(span)
        self.sink.on_span_end(span)

    def event(self, name: str, **tags: Any) -> None:
        """Attach a point event to the innermost open span (if any)."""
        if not self._stack:
            return
        self._stack[-1].events.append(
            SpanEvent(
                name=name,
                wall_s=self._now_wall(),
                sim_s=self.sim_clock(),
                tags=tags,
            )
        )

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None


AnyTracer = Union[Tracer, NullTracer]


def tracer_for(
    trace: Union[TraceSink, Tracer, NullTracer, None],
    sim_clock: Optional[Callable[[], float]] = None,
) -> AnyTracer:
    """Normalise a user-facing ``trace=`` argument into a tracer.

    Accepts ``None`` (tracing off), an existing tracer (reused so bus
    spans nest under engine spans), or a bare :class:`TraceSink` (a
    fresh :class:`Tracer` is wrapped around it).
    """
    if trace is None:
        return NULL_TRACER
    if isinstance(trace, (Tracer, NullTracer)):
        return trace
    return Tracer(trace, sim_clock=sim_clock)


def verify_nesting(root: Span) -> list[str]:
    """Structural soundness check used by tests and the CLI.

    Returns a list of violations (empty = sound): every span closed,
    every child's wall/simulated interval within its parent's, and
    every event within its span.
    """
    problems: list[str] = []
    eps = 1e-9
    for span in root.iter_subtree():
        if span.end_wall_s is None or span.end_sim_s is None:
            problems.append(f"span {span.span_id} ({span.name}) never closed")
            continue
        for child in span.children:
            if child.end_wall_s is None or child.end_sim_s is None:
                continue  # reported on its own visit
            if (
                child.start_wall_s < span.start_wall_s - eps
                or child.end_wall_s > span.end_wall_s + eps
            ):
                problems.append(
                    f"child {child.span_id} ({child.name}) wall interval "
                    f"escapes parent {span.span_id} ({span.name})"
                )
            if (
                child.start_sim_s < span.start_sim_s - eps
                or child.end_sim_s > span.end_sim_s + eps
            ):
                problems.append(
                    f"child {child.span_id} ({child.name}) simulated "
                    f"interval escapes parent {span.span_id} ({span.name})"
                )
        for event in span.events:
            if (
                event.wall_s < span.start_wall_s - eps
                or event.wall_s > span.end_wall_s + eps
            ):
                problems.append(
                    f"event {event.name!r} outside span "
                    f"{span.span_id} ({span.name})"
                )
    return problems
