"""Per-phase aggregation of span trees: where did the time go?

Turns the span tree of one (or many) evaluations into a table of
*exclusive* per-phase costs — each span's own time minus the time of
its children — so phases sum to the totals instead of double counting.
This is the breakdown the benchmarks' profile mode and the CLI's
``--trace`` flag print.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from .trace import Span


@dataclasses.dataclass
class PhaseStats:
    """Accumulated cost of one phase name across a trace."""

    name: str
    count: int = 0
    wall_s: float = 0.0
    """Exclusive wall-clock seconds (children's time excluded)."""
    sim_s: float = 0.0
    """Exclusive simulated seconds (children's time excluded)."""
    events: int = 0

    def add(self, span: Span) -> None:
        child_wall = sum(child.wall_s for child in span.children)
        child_sim = sum(child.sim_s for child in span.children)
        self.count += 1
        self.wall_s += max(span.wall_s - child_wall, 0.0)
        self.sim_s += max(span.sim_s - child_sim, 0.0)
        self.events += len(span.events)


def phase_profile(roots: Iterable[Span]) -> dict[str, PhaseStats]:
    """Aggregate span trees into per-phase stats, keyed by span name."""
    profile: dict[str, PhaseStats] = {}
    for root in roots:
        for span in root.iter_subtree():
            stats = profile.get(span.name)
            if stats is None:
                stats = profile[span.name] = PhaseStats(name=span.name)
            stats.add(span)
    return profile


def format_phase_profile(
    profile: dict[str, PhaseStats], title: str = "phase profile"
) -> str:
    """Render a profile as an aligned plain-text table."""
    headers = ("phase", "count", "wall_s", "sim_s", "events")
    rows = [
        (
            stats.name,
            str(stats.count),
            f"{stats.wall_s:.4f}",
            f"{stats.sim_s:.3f}",
            str(stats.events),
        )
        for stats in sorted(
            profile.values(), key=lambda s: s.wall_s + s.sim_s, reverse=True
        )
    ]
    table = [headers] + rows
    widths = [max(len(line[i]) for line in table) for i in range(len(headers))]
    lines = [f"== {title} =="]
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
