"""Static termination analysis for AXML rewritings.

Section 2 of the paper: "since function invocations may return new data
and new function calls, a rewriting may never terminate.  This behavior
is inherent in the AXML model, and is carefully studied in [2], which
provides sufficient conditions for termination."

This module implements the classical sufficient condition from that
line of work: build the *call graph* over function names — ``f -> g``
when ``g`` may appear (at any depth) inside a derived output of ``f`` —
and check it for cycles.  An acyclic call graph bounds the invocation
chains by its height, so every rewriting terminates; a cycle means some
service can (transitively) re-emit a call to itself and rewritings may
be infinite, in which case the engine's invocation budget
(:attr:`repro.lazy.config.EngineConfig.max_invocations`) is the safety
net the paper's "computation halts ... after some time limit" refers
to.

Functions with ``any``-typed outputs are conservatively treated as able
to emit every known function.
"""

from __future__ import annotations

import dataclasses

from . import regex as rx
from .schema import Schema


@dataclasses.dataclass(frozen=True)
class TerminationReport:
    """Outcome of the static analysis."""

    terminating: bool
    call_graph: dict[str, frozenset[str]]
    cyclic_functions: frozenset[str]
    max_chain_length: int | None
    """Height of the call graph when acyclic (bound on nesting depth)."""

    def explain(self) -> str:
        if self.terminating:
            return (
                "call graph is acyclic: every rewriting terminates within "
                f"{self.max_chain_length} nested invocation(s)"
            )
        cyclic = ", ".join(sorted(self.cyclic_functions))
        return (
            "call graph has cycles through {" + cyclic + "}: rewritings "
            "may be infinite; rely on the engine's invocation budget"
        )


def call_graph(schema: Schema) -> dict[str, frozenset[str]]:
    """``f -> g`` iff a call to ``g`` may appear inside a (derived)
    subtree produced by ``f``."""
    all_functions = frozenset(schema.functions)
    graph: dict[str, frozenset[str]] = {}
    for fname, signature in schema.functions.items():
        if signature.output_type.mentions_any():
            graph[fname] = all_functions
            continue
        reachable: set[str] = set()
        seen_elements: set[str] = set()
        frontier = list(signature.output_type.letters())
        while frontier:
            letter = frontier.pop()
            if letter == rx.DATA:
                continue
            if letter in schema.functions:
                reachable.add(letter)
                continue  # nested calls' own outputs are *their* edges
            if letter in seen_elements:
                continue
            seen_elements.add(letter)
            content = schema.content_model(letter)
            if content.mentions_any():
                reachable |= all_functions
                continue
            frontier.extend(content.letters())
        graph[fname] = frozenset(reachable)
    return graph


def analyze_termination(schema: Schema) -> TerminationReport:
    """Run the sufficient condition and report."""
    graph = call_graph(schema)
    cyclic = _nodes_on_cycles(graph)
    if cyclic:
        return TerminationReport(
            terminating=False,
            call_graph=graph,
            cyclic_functions=frozenset(cyclic),
            max_chain_length=None,
        )
    return TerminationReport(
        terminating=True,
        call_graph=graph,
        cyclic_functions=frozenset(),
        max_chain_length=_height(graph),
    )


def guaranteed_terminating(schema: Schema) -> bool:
    """Convenience wrapper: is every rewriting guaranteed finite?"""
    return analyze_termination(schema).terminating


def _nodes_on_cycles(graph: dict[str, frozenset[str]]) -> set[str]:
    """Functions reachable from themselves (including self-loops)."""
    cyclic: set[str] = set()
    for start in graph:
        frontier = list(graph.get(start, ()))
        seen: set[str] = set()
        while frontier:
            node = frontier.pop()
            if node == start:
                cyclic.add(start)
                break
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(graph.get(node, ()))
    return cyclic


def _height(graph: dict[str, frozenset[str]]) -> int:
    """Longest invocation chain in an acyclic call graph."""
    memo: dict[str, int] = {}

    def depth(node: str) -> int:
        cached = memo.get(node)
        if cached is not None:
            return cached
        memo[node] = 0  # graph is acyclic; this is only a guard
        value = 1 + max(
            (depth(nxt) for nxt in graph.get(node, ()) if nxt in graph),
            default=0,
        )
        memo[node] = value
        return value

    return max((depth(node) for node in graph), default=0)
