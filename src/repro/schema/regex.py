"""Regular expressions over label alphabets.

The paper's schemas (Section 2, Figure 2) describe element content models
and function input/output types with DTD-like regular expressions over an
alphabet of element names, function names and the keyword ``data`` (a
data-value leaf)::

    hotel   = name.address.rating.nearby
    nearby  = restaurant*.getNearbyRestos*.museum*.getNearbyMuseums*
    rating  = (data | getRating)

Grammar implemented here (whitespace-insensitive):

* names — letters (element / function names); ``data`` is just a name
  with the reserved meaning "value leaf"; ``any`` is the wildcard letter;
* postfix ``*`` (Kleene star), ``+`` (one or more), ``?`` (optional);
* infix ``.`` for concatenation and ``|`` for alternation
  (``|`` binds loosest);
* ``()`` groups; ``epsilon`` / ``()``-empty content via the name
  ``empty``.
"""

from __future__ import annotations

from typing import Iterator, Optional

DATA = "data"
"""The reserved letter for data-value leaves."""

ANY = "any"
"""The reserved wildcard letter (matches any label, incl. values)."""

EMPTY_WORD = "empty"
"""The reserved name denoting the empty content model (epsilon)."""


class Regex:
    """Base class of the regex AST."""

    def letters(self) -> set[str]:
        """All concrete letters mentioned (excluding the ``any`` wildcard)."""
        raise NotImplementedError

    def mentions_any(self) -> bool:
        raise NotImplementedError

    def nullable(self) -> bool:
        """Does the language contain the empty word?"""
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.render()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Regex) and self.render() == other.render()

    def __hash__(self) -> int:
        return hash(self.render())


class Epsilon(Regex):
    def letters(self) -> set[str]:
        return set()

    def mentions_any(self) -> bool:
        return False

    def nullable(self) -> bool:
        return True

    def render(self) -> str:
        return EMPTY_WORD


class Letter(Regex):
    """A single letter: an element name, function name, ``data`` or ``any``."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("letter name cannot be empty")
        self.name = name

    def letters(self) -> set[str]:
        return set() if self.name == ANY else {self.name}

    def mentions_any(self) -> bool:
        return self.name == ANY

    def nullable(self) -> bool:
        return False

    def render(self) -> str:
        return self.name


class Concat(Regex):
    def __init__(self, parts: list[Regex]) -> None:
        if len(parts) < 2:
            raise ValueError("Concat needs at least two parts")
        self.parts = parts

    def letters(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.letters()
        return out

    def mentions_any(self) -> bool:
        return any(part.mentions_any() for part in self.parts)

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def render(self) -> str:
        return ".".join(_group(p, for_concat=True) for p in self.parts)


class Alt(Regex):
    def __init__(self, parts: list[Regex]) -> None:
        if len(parts) < 2:
            raise ValueError("Alt needs at least two parts")
        self.parts = parts

    def letters(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.letters()
        return out

    def mentions_any(self) -> bool:
        return any(part.mentions_any() for part in self.parts)

    def nullable(self) -> bool:
        return any(part.nullable() for part in self.parts)

    def render(self) -> str:
        return "(" + " | ".join(p.render() for p in self.parts) + ")"


class Star(Regex):
    def __init__(self, inner: Regex) -> None:
        self.inner = inner

    def letters(self) -> set[str]:
        return self.inner.letters()

    def mentions_any(self) -> bool:
        return self.inner.mentions_any()

    def nullable(self) -> bool:
        return True

    def render(self) -> str:
        return _group(self.inner) + "*"


class Plus(Regex):
    def __init__(self, inner: Regex) -> None:
        self.inner = inner

    def letters(self) -> set[str]:
        return self.inner.letters()

    def mentions_any(self) -> bool:
        return self.inner.mentions_any()

    def nullable(self) -> bool:
        return self.inner.nullable()

    def render(self) -> str:
        return _group(self.inner) + "+"


class Maybe(Regex):
    def __init__(self, inner: Regex) -> None:
        self.inner = inner

    def letters(self) -> set[str]:
        return self.inner.letters()

    def mentions_any(self) -> bool:
        return self.inner.mentions_any()

    def nullable(self) -> bool:
        return True

    def render(self) -> str:
        return _group(self.inner) + "?"


def _group(regex: Regex, for_concat: bool = False) -> str:
    needs_parens = isinstance(regex, (Concat, Alt)) if not for_concat else isinstance(
        regex, Alt
    )
    text = regex.render()
    if needs_parens and not text.startswith("("):
        return f"({text})"
    return text


ANY_CONTENT = Star(Letter(ANY))
"""The ``any`` output type: an arbitrary forest (Section 3's assumption)."""


# -- parser ----------------------------------------------------------------------


class RegexSyntaxError(ValueError):
    pass


_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-:"
)


def parse_regex(text: str) -> Regex:
    """Parse the DTD-like regex syntax of Figure 2."""
    tokens = list(_tokenize(text))
    regex, position = _parse_alt(tokens, 0)
    if position != len(tokens):
        raise RegexSyntaxError(f"trailing input in regex: {text!r}")
    return regex


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    index = 0
    while index < len(text):
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch in "().|*+?":
            yield (ch, ch)
            index += 1
            continue
        if ch in _NAME_CHARS:
            start = index
            while index < len(text) and text[index] in _NAME_CHARS:
                index += 1
            yield ("name", text[start:index])
            continue
        raise RegexSyntaxError(f"unexpected character {ch!r} in regex: {text!r}")


def _parse_alt(tokens: list[tuple[str, str]], pos: int) -> tuple[Regex, int]:
    part, pos = _parse_concat(tokens, pos)
    parts = [part]
    while pos < len(tokens) and tokens[pos][0] == "|":
        part, pos = _parse_concat(tokens, pos + 1)
        parts.append(part)
    if len(parts) == 1:
        return parts[0], pos
    return Alt(parts), pos


def _parse_concat(tokens: list[tuple[str, str]], pos: int) -> tuple[Regex, int]:
    part, pos = _parse_postfix(tokens, pos)
    parts = [part]
    while pos < len(tokens) and tokens[pos][0] == ".":
        part, pos = _parse_postfix(tokens, pos + 1)
        parts.append(part)
    if len(parts) == 1:
        return parts[0], pos
    return Concat(parts), pos


def _parse_postfix(tokens: list[tuple[str, str]], pos: int) -> tuple[Regex, int]:
    regex, pos = _parse_atom(tokens, pos)
    while pos < len(tokens) and tokens[pos][0] in "*+?":
        kind = tokens[pos][0]
        if kind == "*":
            regex = Star(regex)
        elif kind == "+":
            regex = Plus(regex)
        else:
            regex = Maybe(regex)
        pos += 1
    return regex, pos


def _parse_atom(tokens: list[tuple[str, str]], pos: int) -> tuple[Regex, int]:
    if pos >= len(tokens):
        raise RegexSyntaxError("unexpected end of regex")
    kind, value = tokens[pos]
    if kind == "(":
        regex, pos = _parse_alt(tokens, pos + 1)
        if pos >= len(tokens) or tokens[pos][0] != ")":
            raise RegexSyntaxError("unbalanced parenthesis in regex")
        return regex, pos + 1
    if kind == "name":
        if value == EMPTY_WORD:
            return Epsilon(), pos + 1
        return Letter(value), pos + 1
    raise RegexSyntaxError(f"unexpected token {value!r} in regex")


def letter_sequence(regex: Regex) -> Optional[list[str]]:
    """If the language is a single fixed word, return it (else ``None``)."""
    if isinstance(regex, Epsilon):
        return []
    if isinstance(regex, Letter):
        return None if regex.name == ANY else [regex.name]
    if isinstance(regex, Concat):
        out: list[str] = []
        for part in regex.parts:
            seq = letter_sequence(part)
            if seq is None:
                return None
            out.extend(seq)
        return out
    return None
