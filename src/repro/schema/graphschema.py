"""Lenient satisfiability via graph schemas (Section 6.1).

The paper's implementation trades accuracy for speed: *"we use a lenient
description of the output types of functions, which ignores the
cardinality of elements and their order.  The derived output type of a
function is then represented by a simple graph schema, in the spirit of
[8], and checking satisfiability amounts to checking if the query can be
embedded in this graph.  This can be tested in time polynomial in the
size of the schema."*

The graph schema has one node per element label (plus ``data``); there
is an edge ``a → b`` when ``b`` may appear among the *derived* children
of ``a`` — i.e. in the content model of ``a`` with function letters
recursively replaced by their output alphabets.  A pattern embeds into
the graph by a straightforward memoised recursion (PTIME).

The result is an over-approximation of the exact test (never prunes a
relevant call, may let some irrelevant ones through) — exactly the safe
trade-off Section 4's "lenient rewriting" discussion calls for.
"""

from __future__ import annotations

from ..pattern.nodes import EdgeKind, PatternKind, PatternNode
from ..pattern.pattern import TreePattern
from . import regex as rx
from .schema import Schema


class GraphSchema:
    """The derived can-contain graph of a schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._succ: dict[str, tuple[set[str], bool]] = {}
        self._reach: dict[str, tuple[set[str], bool]] = {}

    def successors(self, label: str) -> tuple[set[str], bool]:
        """Derived child letters of a label; flag is the ``any`` top."""
        cached = self._succ.get(label)
        if cached is None:
            cached = self.schema.derived_child_letters(label)
            self._succ[label] = cached
        return cached

    def reachable_below(self, label: str) -> tuple[set[str], bool]:
        """Labels reachable strictly below a label (for descendants)."""
        cached = self._reach.get(label)
        if cached is None:
            cached = self.schema.can_contain_closure(label)
            self._reach[label] = cached
        return cached

    def edge_exists(self, parent: str, child: str) -> bool:
        letters, top = self.successors(parent)
        return top or child in letters


class LenientSatisfiability:
    """PTIME pattern-into-graph-schema embedding test."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.graph = GraphSchema(schema)
        self._memo: dict[tuple[str, int], bool] = {}

    def function_satisfies(
        self,
        function_name: str,
        pattern: TreePattern,
        anchor_edge: EdgeKind = EdgeKind.CHILD,
    ) -> bool:
        letters, top = self.schema.derived_output_letters(function_name)
        if top:
            return True
        root = pattern.root
        if any(self._embeds(letter, root) for letter in letters):
            return True
        if anchor_edge is EdgeKind.DESCENDANT:
            deeper: set[str] = set()
            for letter in letters:
                if letter == rx.DATA:
                    continue
                below, below_top = self.graph.reachable_below(letter)
                if below_top:
                    return True
                deeper |= below
            return any(self._embeds(letter, root) for letter in deeper)
        return False

    def pattern_satisfiable_under(
        self, element_label: str, pattern: TreePattern
    ) -> bool:
        return self._embeds(element_label, pattern.root)

    # -- internals -------------------------------------------------------------

    def _embeds(self, letter: str, pnode: PatternNode) -> bool:
        key = (letter, pnode.uid)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        outcome = self._embeds_raw(letter, pnode)
        self._memo[key] = outcome
        return outcome

    def _embeds_raw(self, letter: str, pnode: PatternNode) -> bool:
        if letter == rx.ANY:
            return True
        if letter == rx.DATA:
            if pnode.kind is PatternKind.VALUE:
                return True
            if pnode.kind in (PatternKind.VARIABLE, PatternKind.STAR):
                return not pnode.children
            return False
        if pnode.kind is PatternKind.ELEMENT and pnode.label != letter:
            return False
        if pnode.kind is PatternKind.VALUE:
            return False
        if pnode.kind in (PatternKind.FUNCTION, PatternKind.OR):
            raise ValueError(
                "satisfiability is defined on plain patterns "
                "(no OR / function pattern nodes)"
            )
        for child in pnode.children:
            if not self._child_embeds(letter, child):
                return False
        return True

    def _child_embeds(self, letter: str, child: PatternNode) -> bool:
        if child.edge is EdgeKind.CHILD:
            letters, top = self.graph.successors(letter)
        else:
            letters, top = self.graph.reachable_below(letter)
        if top:
            return True
        return any(self._embeds(candidate, child) for candidate in letters)
