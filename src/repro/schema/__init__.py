"""Schemas, regular expressions, automata, and satisfiability oracles."""

from .automata import (
    NFA,
    from_linear_steps,
    from_regex,
    languages_intersect,
    some_word_is_prefix_of,
    symbols_compatible,
    word_automaton,
)
from .graphschema import GraphSchema, LenientSatisfiability
from .regex import (
    ANY,
    ANY_CONTENT,
    DATA,
    Alt,
    Concat,
    Epsilon,
    Letter,
    Maybe,
    Plus,
    Regex,
    RegexSyntaxError,
    Star,
    parse_regex,
)
from .satisfiability import (
    AlwaysSatisfiable,
    ExactSatisfiability,
    SatisfiabilityOracle,
)
from .schema import FunctionSignature, Schema, SchemaError, parse_schema
from .termination import (
    TerminationReport,
    analyze_termination,
    call_graph,
    guaranteed_terminating,
)

__all__ = [
    "ANY",
    "ANY_CONTENT",
    "Alt",
    "AlwaysSatisfiable",
    "Concat",
    "DATA",
    "Epsilon",
    "ExactSatisfiability",
    "FunctionSignature",
    "GraphSchema",
    "LenientSatisfiability",
    "Letter",
    "Maybe",
    "NFA",
    "Plus",
    "Regex",
    "RegexSyntaxError",
    "SatisfiabilityOracle",
    "Schema",
    "SchemaError",
    "Star",
    "TerminationReport",
    "analyze_termination",
    "call_graph",
    "guaranteed_terminating",
    "from_linear_steps",
    "from_regex",
    "languages_intersect",
    "parse_regex",
    "parse_schema",
    "some_word_is_prefix_of",
    "symbols_compatible",
    "word_automaton",
]
