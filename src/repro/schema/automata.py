"""Symbolic finite automata over label alphabets.

The influence analysis of Section 4.2 (Proposition 3) and the
independence condition (*) of Section 4.4 both reduce to operations on
the regular languages of linear path expressions:

* build the automaton of a linear path / content-model regex,
* close it under prefixes,
* build a product automaton and test (non-)emptiness [16].

Document labels come from an unbounded alphabet (data values are labels
too), so the automata are *symbolic*: besides concrete letters a
transition may carry the wildcard ``ANY``, and letter compatibility in
the product construction is ``a∩a = a``, ``a∩ANY = a``, ``ANY∩ANY ≠ ∅``
(the alphabet is treated as infinite, which is the right reading for
AXML: services can invent fresh labels and values).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from ..pattern.nodes import EdgeKind
from ..pattern.pattern import LinearStep
from . import regex as rx

ANY = rx.ANY


class NFA:
    """A nondeterministic finite automaton with epsilon moves."""

    def __init__(self) -> None:
        self.n_states = 0
        self.start = self.new_state()
        self.accepting: set[int] = set()
        self.transitions: dict[int, list[tuple[str, int]]] = {}
        self.epsilons: dict[int, set[int]] = {}

    # -- construction -------------------------------------------------------

    def new_state(self) -> int:
        state = self.n_states
        self.n_states += 1
        return state

    def add_edge(self, src: int, symbol: str, dst: int) -> None:
        self.transitions.setdefault(src, []).append((symbol, dst))

    def add_eps(self, src: int, dst: int) -> None:
        self.epsilons.setdefault(src, set()).add(dst)

    # -- basic queries ---------------------------------------------------------

    def eps_closure(self, states: Iterable[int]) -> set[int]:
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for nxt in self.epsilons.get(state, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return closure

    def accepts(self, word: Sequence[str]) -> bool:
        """Membership of a concrete word (no wildcards in the word)."""
        current = self.eps_closure({self.start})
        for letter in word:
            nxt: set[int] = set()
            for state in current:
                for symbol, dst in self.transitions.get(state, ()):
                    if symbol == ANY or symbol == letter:
                        nxt.add(dst)
            if not nxt:
                return False
            current = self.eps_closure(nxt)
        return bool(current & self.accepting)

    def is_empty(self) -> bool:
        """Is the recognised language empty?"""
        seen = {self.start}
        queue = deque([self.start])
        while queue:
            state = queue.popleft()
            if state in self.accepting:
                return False
            for nxt in self.epsilons.get(state, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
            for _, nxt in self.transitions.get(state, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return True

    # -- derived automata ----------------------------------------------------------

    def prefix_closed(self) -> "NFA":
        """The automaton of all prefixes of the language.

        Every state that can reach an accepting state becomes accepting.
        (If the language is empty so is its prefix language.)
        """
        out = self._copy()
        co_reach = self._co_reachable()
        out.accepting = set(co_reach)
        return out

    def _co_reachable(self) -> set[int]:
        reverse: dict[int, set[int]] = {}
        for src, edges in self.transitions.items():
            for _, dst in edges:
                reverse.setdefault(dst, set()).add(src)
        for src, dsts in self.epsilons.items():
            for dst in dsts:
                reverse.setdefault(dst, set()).add(src)
        seen = set(self.accepting)
        queue = deque(seen)
        while queue:
            state = queue.popleft()
            for prev in reverse.get(state, ()):
                if prev not in seen:
                    seen.add(prev)
                    queue.append(prev)
        return seen

    def _copy(self) -> "NFA":
        out = NFA.__new__(NFA)
        out.n_states = self.n_states
        out.start = self.start
        out.accepting = set(self.accepting)
        out.transitions = {s: list(e) for s, e in self.transitions.items()}
        out.epsilons = {s: set(d) for s, d in self.epsilons.items()}
        return out


def symbols_compatible(a: str, b: str) -> bool:
    """Can two symbolic letters denote a common concrete label?"""
    return a == ANY or b == ANY or a == b


def languages_intersect(left: NFA, right: NFA) -> bool:
    """Non-emptiness of the product automaton ([16], used by (*))."""
    start = (left.start, right.start)
    seen = {start}
    queue = deque([start])
    left_acc = left.accepting
    right_acc = right.accepting
    while queue:
        lstate, rstate = queue.popleft()
        if lstate in left_acc and rstate in right_acc:
            return True
        for lnxt in left.epsilons.get(lstate, ()):
            pair = (lnxt, rstate)
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
        for rnxt in right.epsilons.get(rstate, ()):
            pair = (lstate, rnxt)
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
        for lsym, lnxt in left.transitions.get(lstate, ()):
            for rsym, rnxt in right.transitions.get(rstate, ()):
                if symbols_compatible(lsym, rsym):
                    pair = (lnxt, rnxt)
                    if pair not in seen:
                        seen.add(pair)
                        queue.append(pair)
    return False


def some_word_is_prefix_of(left: NFA, right: NFA) -> bool:
    """Is some word of ``left`` a prefix of some word of ``right``?

    This is exactly the test of Proposition 3: build the automaton of
    the prefixes of ``right`` and intersect with ``left``.
    """
    return languages_intersect(left, right.prefix_closed())


# -- constructions ------------------------------------------------------------------


def from_regex(regex: rx.Regex) -> NFA:
    """Thompson construction of a symbolic NFA from a regex AST."""
    nfa = NFA()
    enter, leave = _thompson(nfa, regex)
    nfa.add_eps(nfa.start, enter)
    nfa.accepting = {leave}
    return nfa


def _thompson(nfa: NFA, regex: rx.Regex) -> tuple[int, int]:
    if isinstance(regex, rx.Epsilon):
        state = nfa.new_state()
        return state, state
    if isinstance(regex, rx.Letter):
        enter = nfa.new_state()
        leave = nfa.new_state()
        nfa.add_edge(enter, regex.name, leave)
        return enter, leave
    if isinstance(regex, rx.Concat):
        enter, leave = _thompson(nfa, regex.parts[0])
        for part in regex.parts[1:]:
            nxt_enter, nxt_leave = _thompson(nfa, part)
            nfa.add_eps(leave, nxt_enter)
            leave = nxt_leave
        return enter, leave
    if isinstance(regex, rx.Alt):
        enter = nfa.new_state()
        leave = nfa.new_state()
        for part in regex.parts:
            p_enter, p_leave = _thompson(nfa, part)
            nfa.add_eps(enter, p_enter)
            nfa.add_eps(p_leave, leave)
        return enter, leave
    if isinstance(regex, rx.Star):
        enter = nfa.new_state()
        leave = nfa.new_state()
        i_enter, i_leave = _thompson(nfa, regex.inner)
        nfa.add_eps(enter, leave)
        nfa.add_eps(enter, i_enter)
        nfa.add_eps(i_leave, i_enter)
        nfa.add_eps(i_leave, leave)
        return enter, leave
    if isinstance(regex, rx.Plus):
        i_enter, i_leave = _thompson(nfa, regex.inner)
        nfa.add_eps(i_leave, i_enter)
        return i_enter, i_leave
    if isinstance(regex, rx.Maybe):
        enter = nfa.new_state()
        leave = nfa.new_state()
        i_enter, i_leave = _thompson(nfa, regex.inner)
        nfa.add_eps(enter, leave)
        nfa.add_eps(enter, i_enter)
        nfa.add_eps(i_leave, leave)
        return enter, leave
    raise TypeError(f"unknown regex node {regex!r}")


def from_linear_steps(
    steps: Sequence[LinearStep], descendant_tail: bool = False
) -> NFA:
    """The language of label paths matching a linear pattern path.

    A child step with label ``l`` contributes the letter ``l``; a
    descendant step contributes ``ANY* l`` (an arbitrary gap, then the
    label); steps with no label constraint (star/variable nodes)
    contribute ``ANY``.  With ``descendant_tail`` the language is
    suffixed by ``ANY*`` — the position language of a relevance query
    whose target hangs by a descendant edge, so its calls may sit at any
    depth below the linear path.
    """
    nfa = NFA()
    current = nfa.start
    for step in steps:
        if step.edge is EdgeKind.DESCENDANT:
            gap = nfa.new_state()
            nfa.add_eps(current, gap)
            nfa.add_edge(gap, ANY, gap)
            current = gap
        nxt = nfa.new_state()
        nfa.add_edge(current, step.label if step.label is not None else ANY, nxt)
        current = nxt
    if descendant_tail:
        nfa.add_edge(current, ANY, current)
    nfa.accepting = {current}
    return nfa


def word_automaton(word: Sequence[str]) -> NFA:
    """The automaton of a single concrete word (used by tests/F-guide)."""
    nfa = NFA()
    current = nfa.start
    for letter in word:
        nxt = nfa.new_state()
        nfa.add_edge(current, letter, nxt)
        current = nxt
    nfa.accepting = {current}
    return nfa
