"""Exact function-satisfiability: does ``f`` satisfy a (sub)query?

Definition 6 of the paper: given a schema ``τ``, a function ``f``
*satisfies* a query ``q`` if ``q(d) ≠ ∅`` for some **derived** instance
``d`` of ``f``'s output type — derived instances being everything an
instance can rewrite into by (recursively, partially) invoking the
embedded calls.  The paper obtains an algorithm exponential in the size
of schema and query by extending Milo & Suciu's test [22] to derived
instances, and proves the problem NP-hard.

The construction used here:

* Because embeddings are homomorphisms (not injective), a pattern node
  ``p`` with children ``c1..ck`` is satisfiable under an element labelled
  ``a`` iff some word of the *derived* language of ``τ(a)`` contains, for
  every ``ci``, at least one occurrence of a letter that covers ``ci``.
  That is a hitting-set reachability problem on the content-model NFA
  extended with a coverage bitmask — states ``(q, mask ⊆ 2^k)``, which is
  where the (unavoidable) exponential in the pattern fan-out lives.
* Function letters occurring in content words expand *horizontally* into
  words of their own derived output language; the set of coverage masks
  one ``f``-occurrence can contribute is computed as a least fixpoint
  over all (mutually recursive) function signatures.
* Descendant-edge pattern children are resolved through the derived
  can-contain closure of the schema.  For several descendant children
  routed through one branch this is a mild over-approximation (their
  witnesses are checked level-by-level independently); over-approximation
  keeps rewritings *safe* in the paper's sense — no relevant call is ever
  pruned.
* A ``data`` letter covers value constants, and variables/stars without
  children (instances are free to choose leaf values).
* ``any``-typed content makes everything below it satisfiable.

The module also defines the oracle protocol shared with the lenient
backend (:mod:`repro.schema.graphschema`) and the trivial
"assume any output" oracle of Section 3.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Protocol

from ..pattern.nodes import EdgeKind, PatternKind, PatternNode
from ..pattern.pattern import TreePattern
from . import regex as rx
from .schema import Schema


class SatisfiabilityOracle(Protocol):
    """The pruning interface used by refined NFQs (Section 5)."""

    def function_satisfies(
        self,
        function_name: str,
        pattern: TreePattern,
        anchor_edge: EdgeKind = EdgeKind.CHILD,
    ) -> bool:
        """Can a derived output of the function make the pattern match?

        ``anchor_edge`` is the edge by which the pattern's root hangs in
        the original query: for a child edge the root must be produced at
        the exact call position, for a descendant edge anywhere below.
        """


class AlwaysSatisfiable:
    """Section 3's assumption: every function may return anything."""

    def function_satisfies(
        self,
        function_name: str,
        pattern: TreePattern,
        anchor_edge: EdgeKind = EdgeKind.CHILD,
    ) -> bool:
        return True


class ExactSatisfiability:
    """The exact (exponential, per the paper) satisfiability test."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._cover_memo: dict[tuple[str, int], bool] = {}
        self._deep_memo: dict[tuple[str, int], bool] = {}

    # -- public API ---------------------------------------------------------

    def function_satisfies(
        self,
        function_name: str,
        pattern: TreePattern,
        anchor_edge: EdgeKind = EdgeKind.CHILD,
    ) -> bool:
        sig = self.schema.signature(function_name)
        root = pattern.root
        targets = [root]
        return self._word_can_hit(sig.output_type, targets, anchor_edge)

    def pattern_satisfiable_under(
        self, element_label: str, pattern: TreePattern
    ) -> bool:
        """Can the pattern root embed at an element with this label?"""
        return self._cover(element_label, pattern.root)

    # -- letter coverage -------------------------------------------------------

    def _cover(self, letter: str, pnode: PatternNode) -> bool:
        """Can a node produced for ``letter`` host an embedding of ``pnode``?"""
        key = (letter, pnode.uid)
        cached = self._cover_memo.get(key)
        if cached is not None:
            return cached
        self._cover_memo[key] = False  # pessimistic guard; LFP semantics
        outcome = self._cover_raw(letter, pnode)
        self._cover_memo[key] = outcome
        return outcome

    def _cover_raw(self, letter: str, pnode: PatternNode) -> bool:
        if letter == rx.ANY:
            return True  # an unconstrained node can be anything at all
        if letter == rx.DATA:
            if pnode.kind is PatternKind.VALUE:
                return True
            if pnode.kind in (PatternKind.VARIABLE, PatternKind.STAR):
                return not pnode.children
            return False
        # Element letter.
        if pnode.kind is PatternKind.ELEMENT and pnode.label != letter:
            return False
        if pnode.kind is PatternKind.VALUE:
            return False
        if pnode.kind in (PatternKind.FUNCTION, PatternKind.OR):
            raise ValueError(
                "satisfiability is defined on plain patterns "
                "(no OR / function pattern nodes)"
            )
        if not pnode.children:
            return True
        return self._word_can_hit(
            self.schema.content_model(letter), pnode.children, None
        )

    def _deep_cover(self, letter: str, pnode: PatternNode) -> bool:
        """Can ``pnode`` embed strictly below a node labelled ``letter``?"""
        if letter in (rx.ANY,):
            return True
        if letter == rx.DATA:
            return False
        key = (letter, pnode.uid)
        cached = self._deep_memo.get(key)
        if cached is not None:
            return cached
        below, top = self.schema.can_contain_closure(letter)
        outcome = top or any(self._cover(b, pnode) for b in below)
        self._deep_memo[key] = outcome
        return outcome

    # -- the hitting-set reachability test ------------------------------------------

    def _word_can_hit(
        self,
        content: rx.Regex,
        targets: list[PatternNode],
        anchor_edge: Optional[EdgeKind],
    ) -> bool:
        """Does some derived word of ``content`` cover all ``targets``?

        When ``anchor_edge`` is ``None`` the targets are pattern children
        and each uses its own edge; otherwise all targets use the given
        edge (the top-level call anchoring a pushed/sub pattern).
        """
        k = len(targets)
        if k == 0:
            return True
        full_mask = (1 << k) - 1

        mask_cache: dict[str, int] = {}

        def letter_mask(letter: str) -> int:
            cached = mask_cache.get(letter)
            if cached is not None:
                return cached
            mask = 0
            for i, target in enumerate(targets):
                edge = anchor_edge or target.edge
                if self._cover(letter, target):
                    mask |= 1 << i
                elif edge is EdgeKind.DESCENDANT and self._deep_cover(letter, target):
                    mask |= 1 << i
            mask_cache[letter] = mask
            return mask

        achievable = self._function_masks_fixpoint(content, letter_mask, full_mask)
        masks = self._nfa_masks(content, letter_mask, achievable, full_mask)
        return full_mask in masks

    def _function_masks_fixpoint(
        self,
        content: rx.Regex,
        letter_mask,
        full_mask: int,
    ) -> dict[str, set[int]]:
        """Least fixpoint of per-function achievable coverage masks."""
        involved = self._involved_functions(content)
        achievable: dict[str, set[int]] = {f: set() for f in involved}
        changed = True
        while changed:
            changed = False
            for fname in involved:
                out_type = self.schema.signature(fname).output_type
                masks = self._nfa_masks(out_type, letter_mask, achievable, full_mask)
                if not masks <= achievable[fname]:
                    achievable[fname] |= masks
                    changed = True
        return achievable

    def _involved_functions(self, content: rx.Regex) -> set[str]:
        involved: set[str] = set()
        frontier = [content]
        while frontier:
            regex = frontier.pop()
            for letter in regex.letters():
                if letter in self.schema.functions and letter not in involved:
                    involved.add(letter)
                    frontier.append(self.schema.functions[letter].output_type)
        return involved

    def _nfa_masks(
        self,
        content: rx.Regex,
        letter_mask,
        achievable: dict[str, set[int]],
        full_mask: int,
    ) -> set[int]:
        """Coverage masks reachable at accepting states of the content NFA."""
        nfa = self.schema._nfa_for(content)
        start_states = nfa.eps_closure({nfa.start})
        seen: set[tuple[int, int]] = {(s, 0) for s in start_states}
        queue = deque(seen)
        out: set[int] = set()
        while queue:
            state, mask = queue.popleft()
            if state in nfa.accepting:
                out.add(mask)
            for symbol, dst in nfa.transitions.get(state, ()):
                contributions: list[int]
                if symbol == rx.ANY:
                    contributions = [full_mask]
                elif symbol in achievable:
                    # A call may stay unexpanded (contributing nothing) or
                    # expand to any word of its derived output language.
                    contributions = [0, *achievable[symbol]]
                else:
                    contributions = [letter_mask(symbol)]
                for contribution in contributions:
                    for nxt in nfa.eps_closure({dst}):
                        item = (nxt, mask | contribution)
                        if item not in seen:
                            seen.add(item)
                            queue.append(item)
        return out
