"""AXML schemas: element content models and function signatures.

Section 2 / Figure 2 of the paper: a schema ``τ`` associates

* with each function name a pair of regular expressions — the *input*
  and *output* types of the Web service, and
* with each element name a regular expression over element names,
  function names and ``data`` — the content model.

The textual format of Figure 2 is supported::

    functions:
      getHotels         = [in: data, out: hotel*]
      getRating         = [in: data, out: data]
      getNearbyRestos   = [in: data, out: restaurant*]
    elements:
      hotels     = hotel*.getHotels*
      hotel      = name.address.rating.nearby
      rating     = (data | getRating)

Functions that are *not* declared are assumed to have output type ``any``
— exactly the Section 3 assumption under which relevance is purely
positional; Section 5 then uses declared signatures to prune further.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from ..axml.document import Document
from ..axml.node import Node
from . import automata
from . import regex as rx


@dataclasses.dataclass(frozen=True)
class FunctionSignature:
    """A Web-service signature: name plus input/output types."""

    name: str
    input_type: rx.Regex
    output_type: rx.Regex

    @property
    def output_is_any(self) -> bool:
        return self.output_type.mentions_any()

    def render(self) -> str:
        return (
            f"{self.name} = [in: {self.input_type.render()}, "
            f"out: {self.output_type.render()}]"
        )


class SchemaError(ValueError):
    """Raised on malformed schema text or invalid documents."""


class Schema:
    """A schema ``τ``: content models plus function signatures."""

    def __init__(
        self,
        elements: Optional[dict[str, rx.Regex]] = None,
        functions: Optional[Iterable[FunctionSignature]] = None,
    ) -> None:
        self.elements: dict[str, rx.Regex] = dict(elements or {})
        self.functions: dict[str, FunctionSignature] = {
            sig.name: sig for sig in functions or ()
        }
        self._nfa_cache: dict[str, automata.NFA] = {}
        self._derived_child_cache: dict[str, tuple[set[str], bool]] = {}
        self._derived_output_cache: dict[str, tuple[set[str], bool]] = {}

    # -- declaration helpers -------------------------------------------------

    def declare_element(self, name: str, content: str | rx.Regex) -> None:
        self.elements[name] = _as_regex(content)
        self._invalidate_caches()

    def declare_function(
        self, name: str, input_type: str | rx.Regex, output_type: str | rx.Regex
    ) -> None:
        self.functions[name] = FunctionSignature(
            name, _as_regex(input_type), _as_regex(output_type)
        )
        self._invalidate_caches()

    def _invalidate_caches(self) -> None:
        self._nfa_cache.clear()
        self._derived_child_cache.clear()
        self._derived_output_cache.clear()

    # -- lookups ------------------------------------------------------------------

    def content_model(self, element_name: str) -> rx.Regex:
        """The content model of an element (``any`` if undeclared)."""
        return self.elements.get(element_name, rx.ANY_CONTENT)

    def has_element(self, element_name: str) -> bool:
        return element_name in self.elements

    def signature(self, function_name: str) -> FunctionSignature:
        """The signature of a function (``any``/``any`` if undeclared)."""
        sig = self.functions.get(function_name)
        if sig is not None:
            return sig
        return FunctionSignature(function_name, rx.ANY_CONTENT, rx.ANY_CONTENT)

    def is_function_name(self, name: str) -> bool:
        return name in self.functions

    def function_names(self) -> list[str]:
        return sorted(self.functions)

    # -- derived alphabets (Section 5) ----------------------------------------------

    def derived_child_letters(self, element_name: str) -> tuple[set[str], bool]:
        """Labels that may appear as children of an element in *derived*
        instances: the content-model alphabet with function letters
        recursively replaced by their output alphabets.

        Returns ``(letters, top)`` where ``top`` is True when an
        ``any``-typed letter was encountered, meaning any label at all
        can occur.
        """
        cached = self._derived_child_cache.get(element_name)
        if cached is None:
            cached = self._expand_alphabet(self.content_model(element_name), set())
            self._derived_child_cache[element_name] = cached
        return cached

    def derived_output_letters(self, function_name: str) -> tuple[set[str], bool]:
        """Labels that may appear at the top level of derived outputs."""
        cached = self._derived_output_cache.get(function_name)
        if cached is None:
            cached = self._expand_alphabet(
                self.signature(function_name).output_type, set()
            )
            self._derived_output_cache[function_name] = cached
        return cached

    def _expand_alphabet(
        self, regex: rx.Regex, in_progress: set[str]
    ) -> tuple[set[str], bool]:
        letters: set[str] = set()
        top = regex.mentions_any()
        for letter in regex.letters():
            if letter in self.functions:
                if letter in in_progress:
                    continue  # recursive schema: already accounted for
                sub_letters, sub_top = self._expand_alphabet(
                    self.functions[letter].output_type, in_progress | {letter}
                )
                letters |= sub_letters
                top = top or sub_top
            else:
                letters.add(letter)
        return letters, top

    def can_contain_closure(self, element_name: str) -> tuple[set[str], bool]:
        """All labels reachable strictly below an element in derived
        instances (the reachability closure used by descendant edges).
        """
        seen: set[str] = set()
        top = False
        frontier = [element_name]
        while frontier:
            label = frontier.pop()
            letters, is_top = self.derived_child_letters(label)
            top = top or is_top
            for letter in letters:
                if letter not in seen:
                    seen.add(letter)
                    if letter != rx.DATA:
                        frontier.append(letter)
        return seen, top

    # -- validation -----------------------------------------------------------------

    def _nfa_for(self, regex: rx.Regex) -> automata.NFA:
        key = regex.render()
        nfa = self._nfa_cache.get(key)
        if nfa is None:
            nfa = automata.from_regex(regex)
            self._nfa_cache[key] = nfa
        return nfa

    @staticmethod
    def child_word(node: Node) -> list[str]:
        """The letter word formed by a node's children."""
        letters = []
        for child in node.children:
            if child.is_value:
                letters.append(rx.DATA)
            else:
                letters.append(child.label)
        return letters

    def validate_node(self, node: Node, path: str = "") -> list[str]:
        """Validate a subtree; returns a list of violation messages.

        Iterative traversal: arbitrarily deep documents validate without
        hitting the recursion limit.
        """
        errors: list[str] = []
        stack: list[tuple[Node, str]] = [(node, path)]
        while stack:
            current, prefix = stack.pop()
            if current.is_value:
                continue
            where = f"{prefix}/{current.label}"
            if current.is_function:
                model = self.signature(current.label).input_type
                kind = "input of call"
            else:
                model = self.content_model(current.label)
                kind = "content of element"
            word = self.child_word(current)
            if not self._nfa_for(model).accepts(word):
                errors.append(
                    f"{where}: {kind} {current.label!r} does not match "
                    f"{model.render()!r} (children: {word})"
                )
            stack.extend((child, where) for child in reversed(current.children))
        return errors

    def validate_document(self, document: Document) -> list[str]:
        return self.validate_node(document.root)

    def validate_output(self, function_name: str, forest: list[Node]) -> list[str]:
        """Check a call result against the function's output type."""
        sig = self.signature(function_name)
        word = [rx.DATA if t.is_value else t.label for t in forest]
        errors = []
        if not self._nfa_for(sig.output_type).accepts(word):
            errors.append(
                f"output of {function_name!r} does not match "
                f"{sig.output_type.render()!r} (roots: {word})"
            )
        for tree in forest:
            errors.extend(self.validate_node(tree, f"<{function_name} result>"))
        return errors

    # -- consistency ---------------------------------------------------------------------

    def check_consistency(self) -> list[str]:
        """Warnings about letters used but never declared.

        Undeclared names are legal (they default to ``any``), but in a
        hand-written schema they usually indicate a typo; this check is
        what the CLI's validate subcommand surfaces.
        """
        declared = set(self.elements) | set(self.functions) | {rx.DATA, rx.ANY}
        warnings: list[str] = []
        for name, content in sorted(self.elements.items()):
            for letter in sorted(content.letters() - declared):
                warnings.append(
                    f"element {name!r} mentions undeclared {letter!r}"
                )
        for fname in sorted(self.functions):
            signature = self.functions[fname]
            for letter in sorted(signature.output_type.letters() - declared):
                warnings.append(
                    f"output of {fname!r} mentions undeclared {letter!r}"
                )
            for letter in sorted(signature.input_type.letters() - declared):
                warnings.append(
                    f"input of {fname!r} mentions undeclared {letter!r}"
                )
        return warnings

    # -- rendering -----------------------------------------------------------------------

    def render(self) -> str:
        lines = ["functions:"]
        for name in sorted(self.functions):
            lines.append("  " + self.functions[name].render())
        lines.append("elements:")
        for name in sorted(self.elements):
            lines.append(f"  {name} = {self.elements[name].render()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schema({len(self.elements)} elements, "
            f"{len(self.functions)} functions)"
        )


def _as_regex(spec: str | rx.Regex) -> rx.Regex:
    if isinstance(spec, rx.Regex):
        return spec
    return rx.parse_regex(spec)


def parse_schema(text: str) -> Schema:
    """Parse the Figure 2 textual schema format."""
    schema = Schema()
    section = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered in ("functions:", "function:"):
            section = "functions"
            continue
        if lowered in ("elements:", "data:", "element:"):
            section = "elements"
            continue
        if "=" not in line:
            raise SchemaError(f"cannot parse schema line: {raw_line!r}")
        name, _, rhs = line.partition("=")
        name = name.strip()
        rhs = rhs.strip()
        if section == "functions" or rhs.startswith("["):
            schema.functions[name] = _parse_signature(name, rhs)
        elif section == "elements":
            schema.elements[name] = rx.parse_regex(rhs)
        else:
            raise SchemaError(
                f"schema line outside of a section: {raw_line!r} "
                "(start with 'functions:' or 'elements:')"
            )
    return schema


def _parse_signature(name: str, rhs: str) -> FunctionSignature:
    body = rhs.strip()
    if not (body.startswith("[") and body.endswith("]")):
        raise SchemaError(f"function signature must be [in: ..., out: ...]: {rhs!r}")
    body = body[1:-1]
    in_part, _, out_part = body.partition(",")
    in_key, _, in_rx = in_part.partition(":")
    out_key, _, out_rx = out_part.partition(":")
    if in_key.strip() != "in" or out_key.strip() != "out":
        raise SchemaError(f"function signature must be [in: ..., out: ...]: {rhs!r}")
    return FunctionSignature(
        name, rx.parse_regex(in_rx.strip()), rx.parse_regex(out_rx.strip())
    )
