"""Command-line interface: evaluate, validate and analyse AXML documents.

Usage examples::

    # Evaluate a query over an AXML document with declarative services.
    repro-axml eval --document hotels.xml --services services.xml \
        --schema hotels.schema --strategy lazy-nfq-typed \
        --query '/hotels/hotel[rating="5"]/name'

    # Validate a document against a schema.
    repro-axml validate --document hotels.xml --schema hotels.schema

    # Inspect the relevance machinery for a query.
    repro-axml analyze --schema hotels.schema \
        --query '/hotels/hotel[rating="5"]/name'

    # Host several standing queries on one server and drive rounds.
    repro-axml serve --document hotels.xml --services services.xml \
        --query '/hotels/hotel/name' --query '/hotels//resto' \
        --rounds 3

The declarative services file is an XML catalogue of keyed mock
services (the offline stand-in for real SOAP endpoints)::

    <services>
      <service name="getRating" latency="0.05" in="data" out="data">
        <case key="22 Madison Av.">2</case>
        <default>3</default>
      </service>
    </services>

The content of each ``<case>``/``<default>`` is the result forest, in
the same AXML-XML dialect as documents (so results may themselves embed
``axml:call`` elements).
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET
from typing import Optional, Sequence

from .axml.node import Node
from .axml.xmlio import from_etree, parse_document, serialize_document
from .lazy.config import EngineConfig, FaultPolicy, Strategy, TypingMode
from .lazy.engine import LazyQueryEvaluator
from .lazy.influence import InfluenceAnalyzer
from .lazy.layers import compute_layers
from .lazy.relevance import build_nfqs, linear_path_queries
from .lazy.report import (
    compare_strategies,
    format_comparison,
    format_trace_profile,
)
from .obs.trace import InMemorySink, JsonlSink, TeeSink
from .pattern.parse import parse_pattern
from .schema.schema import parse_schema
from .schema.termination import analyze_termination
from .serve import QueryServer, TenantPolicy
from .services.catalog import FlakyService, TableService, make_signature
from .services.registry import ServiceBus, ServiceRegistry
from .services.resilience import CircuitBreakerPolicy, RetryPolicy
from .services.service import PushMode

_STRATEGIES = {s.value: s for s in Strategy}
_PUSH_MODES = {m.value: m for m in PushMode}
_TYPINGS = {t.value: t for t in TypingMode}
_FAULT_POLICIES = {p.value: p for p in FaultPolicy}


def load_services(path: str) -> ServiceRegistry:
    """Parse the declarative services catalogue."""
    root = ET.parse(path).getroot()
    services = []
    for service_elem in root.findall("service"):
        name = service_elem.get("name")
        if not name:
            raise ValueError(f"{path}: <service> is missing its name")
        latency = float(service_elem.get("latency", "0.05"))
        supports_push = service_elem.get("push", "true").lower() != "false"
        signature = None
        if service_elem.get("in") and service_elem.get("out"):
            signature = make_signature(
                name, service_elem.get("in"), service_elem.get("out")
            )
        table: dict[str, list[Node]] = {}
        default: Optional[list[Node]] = None
        for case in service_elem:
            forest = _forest_of(case)
            if case.tag == "case":
                key = case.get("key")
                if key is None:
                    raise ValueError(f"{path}: <case> needs a key for {name}")
                table[key] = forest
            elif case.tag == "default":
                default = forest
            else:
                raise ValueError(f"{path}: unexpected <{case.tag}> in {name}")
        services.append(
            TableService(
                name,
                table,
                default=default,
                signature=signature,
                latency_s=latency,
                supports_push=supports_push,
            )
        )
    return ServiceRegistry(services)


def _forest_of(container: ET.Element) -> list[Node]:
    """The AXML forest held by a catalogue entry (text + elements)."""
    wrapper = from_etree(container)
    forest = []
    for child in list(wrapper.children):
        child.detach()
        forest.append(child)
    return forest


def _fault_policy_of(args: argparse.Namespace) -> FaultPolicy:
    if args.fault_policy is not None:
        return _FAULT_POLICIES[args.fault_policy]
    if args.skip_faults:  # legacy flag: explicit lossy tolerance
        return FaultPolicy.SKIP
    if args.tolerant:
        return FaultPolicy.default_non_raising()
    return FaultPolicy.RAISE


def _build_config(args: argparse.Namespace, trace=None) -> EngineConfig:
    retry = RetryPolicy(
        max_attempts=args.max_attempts,
        base_backoff_s=args.backoff,
        timeout_s=args.timeout,
    )
    breaker = (
        CircuitBreakerPolicy(failure_threshold=args.breaker_threshold)
        if args.breaker_threshold > 0
        else None
    )
    return EngineConfig(
        strategy=_STRATEGIES[args.strategy],
        typing=_TYPINGS[args.typing],
        use_layers=not args.no_layers,
        parallel=not args.sequential,
        use_fguide=args.fguide,
        speculative=args.speculative,
        push_mode=_PUSH_MODES[args.push],
        drop_value_joins=args.relaxed,
        validate_io=args.validate_io,
        fault_policy=_fault_policy_of(args),
        retry=retry,
        breaker=breaker,
        max_invocations=args.max_calls,
        max_concurrency=getattr(args, "max_concurrency", 1),
        call_cache=bool(
            getattr(args, "call_cache", False)
            or getattr(args, "call_cache_ttl", None) is not None
        ),
        call_cache_ttl_s=getattr(args, "call_cache_ttl", None),
        incremental=getattr(args, "incremental", False),
        shared_matching=getattr(args, "shared_matching", False),
        arena=getattr(args, "arena", False),
        column_match=getattr(args, "column_match", False),
        shards=getattr(args, "shards", 1),
        maintain_answers=getattr(args, "maintain_answers", False),
        trace=trace,
    )


def _maybe_inject_faults(
    registry: ServiceRegistry, args: argparse.Namespace
) -> ServiceRegistry:
    """Wrap every service in a seeded FlakyService when --fault-rate asks."""
    if not getattr(args, "fault_rate", 0.0):
        return registry
    flaky = ServiceRegistry(
        FlakyService(
            registry.resolve(name),
            fault_rate=args.fault_rate,
            seed=args.fault_seed + index,
        )
        for index, name in enumerate(registry.names())
    )
    return flaky


def _check_flag_combinations(args: argparse.Namespace) -> Optional[str]:
    """The flag combinations that would silently do nothing.

    ``EngineConfig`` accepts them (the knobs auto-stand-down), but a
    command line asking for a fast path that cannot engage deserves an
    error naming the missing flag, not a quietly slower run.
    """
    if getattr(args, "column_match", False) and not getattr(args, "arena", False):
        return (
            "--column-match needs the arena columns to run on: "
            "pass --arena (or drop --column-match)"
        )
    if getattr(args, "shards", 1) > 1 and not getattr(
        args, "shared_matching", False
    ):
        return (
            "--shards only shards the shared group pass: "
            "pass --shared-matching (or keep --shards 1)"
        )
    return None


def cmd_eval(args: argparse.Namespace) -> int:
    problem = _check_flag_combinations(args)
    if problem is not None:
        print(f"eval: {problem}", file=sys.stderr)
        return 2
    document = parse_document(_read(args.document), name=args.document)
    schema = parse_schema(_read(args.schema)) if args.schema else None
    registry = (
        load_services(args.services) if args.services else ServiceRegistry([])
    )
    registry = _maybe_inject_faults(registry, args)
    query = parse_pattern(args.query)
    collector = None
    jsonl = None
    trace = None
    if args.trace or args.trace_out:
        collector = InMemorySink()
        trace = collector
        if args.trace_out:
            jsonl = JsonlSink(args.trace_out)
            trace = TeeSink(collector, jsonl)
    engine = LazyQueryEvaluator(
        ServiceBus(registry),
        schema=schema,
        config=_build_config(args, trace=trace),
    )
    try:
        outcome = engine.evaluate(query, document)
    finally:
        if jsonl is not None:
            jsonl.close()
    print(outcome.metrics.summary())
    print(outcome.to_xml())
    if collector is not None:
        print(format_trace_profile(collector))
    if jsonl is not None:
        print(f"(trace written to {args.trace_out})")
    if args.save_document:
        with open(args.save_document, "w", encoding="utf-8") as handle:
            handle.write(serialize_document(document))
        print(f"(rewritten document saved to {args.save_document})")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run every strategy side by side over the same inputs."""
    schema = parse_schema(_read(args.schema)) if args.schema else None
    registry = (
        load_services(args.services) if args.services else ServiceRegistry([])
    )
    query = parse_pattern(args.query)
    document_text = _read(args.document)

    def document_factory():
        return parse_document(document_text, name=args.document)

    def bus_factory():
        return ServiceBus(registry)

    configs = [
        EngineConfig(strategy=strategy)
        for strategy in (
            Strategy.NAIVE,
            Strategy.TOP_DOWN,
            Strategy.LAZY_LPQ,
            Strategy.LAZY_NFQ,
            Strategy.LAZY_NFQ_TYPED,
        )
    ]
    rows = compare_strategies(
        configs,
        query,
        document_factory=document_factory,
        bus_factory=bus_factory,
        schema=schema,
    )
    print(format_comparison(rows, title=f"strategies over {args.document}"))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    document = parse_document(_read(args.document), name=args.document)
    schema = parse_schema(_read(args.schema))
    errors = schema.validate_document(document)
    if not errors:
        print("document is valid")
        return 0
    for error in errors:
        print(f"violation: {error}")
    return 1


def cmd_analyze(args: argparse.Namespace) -> int:
    query = parse_pattern(args.query)
    print(f"query: {query.to_string()}")
    print("\nlinear path queries (Section 3.1):")
    for rq in linear_path_queries(query, dedupe=False):
        print(f"  {rq.pattern.to_string()}")
    nfqs = build_nfqs(query)
    print("\nnode-focused queries (Figure 5, de-duplicated):")
    for rq in nfqs:
        print(f"  {rq.pattern.to_string()}")
    layers = compute_layers(nfqs, InfluenceAnalyzer(nfqs))
    print("\nlayers (Section 4.3):")
    for layer in layers:
        mode = "parallel" if layer.fully_parallel else "sequential"
        names = ", ".join(q.target.render() for q in layer.queries)
        print(f"  layer {layer.index} ({mode}): {names}")
    if args.schema:
        schema = parse_schema(_read(args.schema))
        report = analyze_termination(schema)
        print(f"\ntermination: {report.explain()}")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    """Inspect, instantiate and export factory workload specs."""
    import json

    from .workloads.factory import REGIMES, WorkloadSpec, generate

    if args.list:
        for name, spec in REGIMES.items():
            print(f"{name:22s} {spec.description}")
        return 0
    if args.spec:
        spec = WorkloadSpec.from_json(json.loads(_read(args.spec)))
    elif args.regime:
        spec = REGIMES[args.regime]
    else:
        print(
            "workload: pass --list, --regime NAME or --spec FILE",
            file=sys.stderr,
        )
        return 2
    if args.seed is not None:
        import dataclasses

        spec = dataclasses.replace(spec, seed=args.seed)
    gen = generate(spec)
    if args.emit_spec:
        print(json.dumps(spec.to_json(), indent=2, sort_keys=True))
        return 0
    if args.emit_document is not None:
        print(serialize_document(gen.make_document(args.emit_document)))
        return 0
    stats = gen.describe()
    print(f"regime: {stats['name']} (seed={stats['seed']})")
    if spec.description:
        print(f"  {spec.description}")
    print(f"mode: {stats['query_shape']}, fault plan: {stats['fault_plan']}")
    print(
        f"document 0: {stats['nodes']} nodes, {stats['calls']} calls "
        f"({stats['documents']} document(s))"
    )
    for service, count in sorted(stats["calls_per_service"].items()):
        print(f"  {service}: {count} call(s)")
    print(f"queries ({stats['queries']}):")
    for i in range(spec.n_queries):
        query = gen.query_for(i)
        rows = gen.oracle_rows(query, gen.document_for_query(i))
        print(
            f"  [{i}] {query.to_string()}  "
            f"(doc {gen.document_for_query(i)}, {len(rows)} oracle rows)"
        )
    if spec.n_rounds:
        trace = gen.arrival_trace()
        arrivals = ", ".join(
            "{" + ",".join(map(str, due)) + "}" for due in trace
        )
        print(f"arrival trace ({spec.n_rounds} rounds): {arrivals}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Host standing queries on one QueryServer and drive rounds."""
    document = parse_document(_read(args.document), name=args.document)
    registry = (
        load_services(args.services) if args.services else ServiceRegistry([])
    )
    config = EngineConfig.serving(strategy=_STRATEGIES[args.strategy])
    server = QueryServer(ServiceBus(registry), config=config)
    policy = None
    if args.budget is not None or args.max_inflight is not None:
        policy = TenantPolicy(
            invocation_budget=args.budget, max_inflight=args.max_inflight
        )
    tenants = args.tenant or ["default"]
    for index, query_text in enumerate(args.query):
        tenant = tenants[min(index, len(tenants) - 1)]
        if policy is not None:
            server.register_tenant(tenant, policy)
        sub = server.subscribe(query_text, document, tenant=tenant)
        print(
            f"subscribed {sub.name} (tenant {tenant}): "
            f"{len(sub.rows)} rows"
        )
    for _ in range(args.rounds):
        report = server.run_round()
        counts = " ".join(
            f"{status}={count}"
            for status, count in sorted(report.counts().items())
        )
        print(
            f"round {report.index}: due={len(report.outcomes)}"
            + (f" {counts}" if counts else " (nothing due)")
        )
    print("\nper-tenant metrics:")
    for metrics in server.tenant_metrics().values():
        served = " ".join(
            f"{key}={metrics[key]}"
            for key in (
                "refreshes",
                "fresh",
                "skipped",
                "maintained",
                "evaluated",
                "deferred",
                "invocations",
            )
        )
        print(
            f"  {metrics['tenant']}: {served} "
            f"p50={metrics['p50_latency_s']:.4f}s "
            f"p99={metrics['p99_latency_s']:.4f}s"
        )
    for sub in server.subscriptions:
        print(
            f"  {sub.name}: {len(sub.rows)} rows, "
            f"{sub.stream.pending} pending deltas"
        )
    return 0


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-axml",
        description="Lazy query evaluation for Active XML documents.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ev = sub.add_parser("eval", help="evaluate a query over a document")
    ev.add_argument("--document", required=True, help="AXML document (XML)")
    ev.add_argument("--query", required=True, help="tree-pattern query")
    ev.add_argument("--schema", help="schema file (Figure 2 format)")
    ev.add_argument("--services", help="declarative services catalogue (XML)")
    ev.add_argument(
        "--strategy",
        choices=sorted(_STRATEGIES),
        default="lazy-nfq",
    )
    ev.add_argument("--typing", choices=sorted(_TYPINGS), default="none")
    ev.add_argument("--push", choices=sorted(_PUSH_MODES), default="none")
    ev.add_argument("--fguide", action="store_true")
    ev.add_argument("--speculative", action="store_true")
    ev.add_argument("--relaxed", action="store_true", help="drop value joins")
    ev.add_argument("--no-layers", action="store_true")
    ev.add_argument("--sequential", action="store_true")
    ev.add_argument("--validate-io", action="store_true")
    ev.add_argument(
        "--fault-policy",
        choices=sorted(_FAULT_POLICIES),
        default=None,
        help="what to do when a service faults (default: raise)",
    )
    ev.add_argument(
        "--tolerant",
        action="store_true",
        help="shorthand for the default non-raising policy (freeze)",
    )
    ev.add_argument(
        "--skip-faults",
        action="store_true",
        help="legacy: delete faulted calls (lossy; prefer --fault-policy freeze)",
    )
    ev.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="retry budget per call under --fault-policy retry",
    )
    ev.add_argument(
        "--backoff",
        type=float,
        default=0.1,
        help="base exponential backoff between retries, simulated seconds",
    )
    ev.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-attempt simulated deadline in seconds",
    )
    ev.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive faults before a service's circuit opens (0 disables)",
    )
    ev.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject faults: wrap every service in a seeded FlakyService",
    )
    ev.add_argument(
        "--fault-seed",
        type=int,
        default=2004,
        help="seed for --fault-rate injection",
    )
    ev.add_argument("--max-calls", type=int, default=100_000)
    ev.add_argument(
        "--max-concurrency",
        type=int,
        default=1,
        help="calls of a parallel round in flight at once on the "
        "simulated clock (1 = serial clock; >1 charges the batch "
        "makespan instead of the sum)",
    )
    ev.add_argument(
        "--call-cache",
        action="store_true",
        help="memoize call replies on the bus (service + argument "
        "digest); assumes services are functions of their parameters",
    )
    ev.add_argument(
        "--call-cache-ttl",
        type=float,
        default=None,
        help="expiry for memoized replies, in simulated seconds "
        "(implies --call-cache)",
    )
    ev.add_argument(
        "--incremental",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="incremental relevance analysis: maintain a label index "
        "through splices and re-run only the relevance queries a "
        "splice could have affected (--no-incremental restores the "
        "exhaustive per-round re-evaluation)",
    )
    ev.add_argument(
        "--shared-matching",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="shared relevance matching: evaluate each round's "
        "relevance queries together in one projected group pass "
        "instead of one traversal per query (--no-shared-matching "
        "restores the per-query oracle walker)",
    )
    ev.add_argument(
        "--arena",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="column-backed matching: mirror the document into a "
        "struct-of-arrays arena and serve the hot traversals as tight "
        "int-column scans (--no-arena restores the object walk, the "
        "differential oracle)",
    )
    ev.add_argument(
        "--column-match",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="column-native pattern matching: compile each pattern into "
        "a slot-level plan and run the whole match over the arena's int "
        "columns, touching Node objects only for the final rows (needs "
        "--arena; --no-column-match restores the object walk, the "
        "differential oracle)",
    )
    ev.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard-parallel group passes: partition the root's depth-1 "
        "subtrees into this many ranges and scan them concurrently, "
        "merging answers deterministically (needs --shared-matching; "
        "1 keeps the single full pass)",
    )
    ev.add_argument(
        "--maintain-answers",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="delta-driven answer maintenance for continuous queries: "
        "materialise the standing result per depth-1 subtree and "
        "re-match only the subtrees a mutation touched, skipping the "
        "engine when the cached answer is provably current "
        "(--no-maintain-answers restores full re-evaluation, the "
        "differential oracle)",
    )
    ev.add_argument(
        "--trace",
        action="store_true",
        help="collect an evaluation trace and print the per-phase breakdown",
    )
    ev.add_argument(
        "--trace-out",
        help="write the evaluation's span tree as JSONL (implies --trace)",
    )
    ev.add_argument("--save-document", help="write the rewritten document")
    ev.set_defaults(handler=cmd_eval)

    co = sub.add_parser("compare", help="run every strategy side by side")
    co.add_argument("--document", required=True)
    co.add_argument("--query", required=True)
    co.add_argument("--schema")
    co.add_argument("--services")
    co.set_defaults(handler=cmd_compare)

    va = sub.add_parser("validate", help="validate a document against a schema")
    va.add_argument("--document", required=True)
    va.add_argument("--schema", required=True)
    va.set_defaults(handler=cmd_validate)

    an = sub.add_parser("analyze", help="inspect the relevance machinery")
    an.add_argument("--query", required=True)
    an.add_argument("--schema")
    an.set_defaults(handler=cmd_analyze)

    se = sub.add_parser(
        "serve", help="host standing queries on one query server"
    )
    se.add_argument("--document", required=True, help="AXML document (XML)")
    se.add_argument(
        "--query",
        action="append",
        required=True,
        help="tree-pattern query; repeat to register several",
    )
    se.add_argument("--services", help="declarative services catalogue (XML)")
    se.add_argument(
        "--strategy", choices=sorted(_STRATEGIES), default="lazy-nfq"
    )
    se.add_argument(
        "--tenant",
        action="append",
        help="tenant for the query at the same position (last one "
        "covers the rest; default: one shared tenant)",
    )
    se.add_argument(
        "--rounds", type=int, default=1, help="serving rounds to drive"
    )
    se.add_argument(
        "--budget",
        type=int,
        default=None,
        help="per-tenant invocation budget per round",
    )
    se.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="per-tenant engine refreshes per round",
    )
    se.set_defaults(handler=cmd_serve)

    wl = sub.add_parser(
        "workload", help="inspect and export factory workload regimes"
    )
    wl.add_argument(
        "--list", action="store_true", help="list the named regimes"
    )
    wl.add_argument("--regime", help="named regime to instantiate")
    wl.add_argument("--spec", help="workload spec JSON file to instantiate")
    wl.add_argument(
        "--seed", type=int, default=None, help="override the spec seed"
    )
    wl.add_argument(
        "--emit-spec",
        action="store_true",
        help="print the spec as JSON instead of a summary",
    )
    wl.add_argument(
        "--emit-document",
        type=int,
        default=None,
        metavar="INDEX",
        help="print generated document INDEX as XML",
    )
    wl.set_defaults(handler=cmd_workload)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
