"""The AXML document substrate: trees, documents, builder DSL, XML I/O."""

from .builder import C, E, V, build_document
from .document import Document, DocumentObserver, DocumentStats, SpliceDelta
from .index import LabelIndex
from .node import Activation, Node, NodeKind, call, element, value
from .paths import (
    LabelPath,
    call_position,
    common_prefix,
    format_path,
    is_prefix,
    parse_path,
    path_to,
)
from .xmlio import (
    forest_size_bytes,
    parse,
    parse_document,
    serialize,
    serialize_document,
    serialize_forest,
    serialized_size,
)

__all__ = [
    "Activation",
    "C",
    "Document",
    "DocumentObserver",
    "DocumentStats",
    "E",
    "LabelIndex",
    "LabelPath",
    "Node",
    "NodeKind",
    "SpliceDelta",
    "V",
    "build_document",
    "call",
    "call_position",
    "common_prefix",
    "element",
    "forest_size_bytes",
    "format_path",
    "is_prefix",
    "parse",
    "parse_document",
    "parse_path",
    "path_to",
    "serialize",
    "serialize_document",
    "serialize_forest",
    "serialized_size",
    "value",
]
