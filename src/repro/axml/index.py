"""Label index: label -> live node sets, maintained through splices.

Relevance analysis re-runs tree patterns over the document every NFQA
round; on large documents the dominant cost is *finding* the few nodes a
pattern step can touch.  In the dataguide tradition (and like the
F-guide of Section 6.2, which does the same for call extents), this
module trades one linear build pass for constant-time label lookup:

* ``labels``    — element/value label -> the live data nodes carrying it;
* ``functions`` — service name -> the live function nodes calling it.

The index subscribes to the :class:`~repro.axml.document.Document`
splice events, so after the build pass each mutation costs time
proportional to the *delta* (the removed call plus the spliced-in
forest), never to the document.  The matcher consults it to enumerate
descendant-step candidates (``repro.pattern.match``), and the
incremental relevance cache (``repro.lazy.incremental``) uses the same
deltas to decide which memoized query results a splice invalidated.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .document import Document, SpliceDelta
from .node import Node


class LabelIndex:
    """Live node sets per label, kept in sync via the observer hook.

    ``arena`` (a :class:`~repro.axml.arena.DocumentArena` mirroring the
    same document) lets :meth:`rebuild` fill the buckets from one loop
    over the int columns instead of an object traversal — same buckets,
    built without touching node objects except to store them.
    """

    def __init__(self, document: Document, arena: Optional[object] = None) -> None:
        self.document = document
        self.arena = arena
        self.labels: dict[str, dict[int, Node]] = {}
        self.functions: dict[str, dict[int, Node]] = {}
        self.splices_applied = 0
        """Deltas absorbed since the last full build (maintenance work
        figure for the experiments)."""
        self.rebuild()
        document.add_observer(self)

    def detach(self) -> None:
        """Stop observing the document (the index goes stale)."""
        self.document.remove_observer(self)

    # -- construction / maintenance ----------------------------------------

    def rebuild(self) -> None:
        """One document-order traversal (linear time).

        With an arena attached (and still mirroring this document) the
        traversal is replaced by a column sweep.
        """
        self.splices_applied = 0
        arena = self.arena
        if (
            arena is not None
            and getattr(arena, "document", None) is self.document
            and arena.slot_for(self.document.root) is not None
        ):
            self.labels, self.functions = arena.rebuild_index_buckets()
            return
        self.labels = {}
        self.functions = {}
        for node in self.document.iter_nodes():
            self._add(node)

    def _add(self, node: Node) -> None:
        assert node.node_id is not None
        bucket = self.functions if node.is_function else self.labels
        bucket.setdefault(node.label, {})[node.node_id] = node

    def _remove(self, node: Node) -> None:
        if node.node_id is None:
            return
        bucket = self.functions if node.is_function else self.labels
        members = bucket.get(node.label)
        if members is not None:
            members.pop(node.node_id, None)
            if not members:
                del bucket[node.label]

    # DocumentObserver protocol ---------------------------------------------

    def call_removed(self, document: Document, node: Node) -> None:
        """Covered by :meth:`splice`; kept for protocol completeness."""

    def calls_added(self, document: Document, nodes: list[Node]) -> None:
        """Covered by :meth:`splice`; kept for protocol completeness."""

    def splice(self, document: Document, delta: SpliceDelta) -> None:
        self.splices_applied += 1
        for node in delta.iter_removed():
            self._remove(node)
        for node in delta.iter_added():
            self._add(node)

    # -- lookups -------------------------------------------------------------

    def data_nodes(self, label: str) -> list[Node]:
        """Live data (element/value) nodes carrying ``label``."""
        return list(self.labels.get(label, {}).values())

    def function_nodes(self, name: Optional[str] = None) -> list[Node]:
        """Live function nodes for one service (or all of them)."""
        if name is not None:
            return list(self.functions.get(name, {}).values())
        out: list[Node] = []
        for members in self.functions.values():
            out.extend(members.values())
        return out

    def iter_label(self, label: str) -> Iterator[Node]:
        return iter(self.labels.get(label, {}).values())

    # -- measurements --------------------------------------------------------

    def node_count(self) -> int:
        """Live nodes currently indexed (should equal the document's)."""
        return sum(len(m) for m in self.labels.values()) + sum(
            len(m) for m in self.functions.values()
        )

    def distinct_labels(self) -> int:
        return len(self.labels) + len(self.functions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabelIndex(nodes={self.node_count()}, "
            f"labels={self.distinct_labels()}, "
            f"splices={self.splices_applied})"
        )
