"""Tree nodes for Active XML documents.

The paper (Section 2) models AXML documents as ordered labelled trees with
two families of nodes:

* *data nodes* — regular XML content, labelled with element names, or with
  data values for leaves;
* *function nodes* — embedded calls to Web services, labelled with the
  service (function) name; their children subtrees are the call parameters.

We split data nodes into ``ELEMENT`` and ``VALUE`` kinds because queries
treat inner labels and leaf values slightly differently (value constants in
a pattern only ever match value leaves).
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Iterator, Optional, Sequence


class NodeKind(enum.Enum):
    """The three kinds of AXML tree nodes."""

    ELEMENT = "element"
    VALUE = "value"
    FUNCTION = "function"


class Activation(enum.Enum):
    """Call-activation modes of the original AXML system (Section 1).

    The paper: "a particular service call may be invoked at regular
    time intervals or only upon explicit user intervention.  We are
    concerned here with a special kind of call activation: lazy service
    calls."

    * ``LAZY`` — invoked only when relevant to a pending query (the
      paper's subject and the default);
    * ``IMMEDIATE`` — invoked as soon as evaluation starts, regardless
      of relevance (the eager end of the spectrum);
    * ``FROZEN`` — never invoked automatically (explicit-intervention
      calls); evaluation leaves them intensional.
    """

    LAZY = "lazy"
    IMMEDIATE = "immediate"
    FROZEN = "frozen"


class Node:
    """One node of an AXML tree.

    Nodes are mutable (the whole point of AXML is that invoking a call
    mutates the document), but all mutation of attached nodes should go
    through :class:`repro.axml.document.Document` so that node ids,
    parent pointers and observers stay consistent.

    Attributes:
        kind: element, value or function.
        label: element name, data value, or function (service) name.
        children: ordered list of child nodes.
        parent: parent node, or ``None`` for a detached root.
        node_id: unique id within a document; ``None`` while detached.
        produced_by: id of the function node whose invocation produced
            this node, or ``None`` for original content.  Together with
            the transitive closure through nested results this realises
            the paper's "transitively produced" relation (Definition 2).
    """

    __slots__ = (
        "kind",
        "label",
        "children",
        "parent",
        "node_id",
        "produced_by",
        "activation",
    )

    def __init__(
        self,
        kind: NodeKind,
        label: str,
        children: Optional[Sequence["Node"]] = None,
        activation: Activation = Activation.LAZY,
    ) -> None:
        self.kind = kind
        self.label = label
        self.children: list[Node] = []
        self.parent: Optional[Node] = None
        self.node_id: Optional[int] = None
        self.produced_by: Optional[int] = None
        self.activation = activation
        for child in children or ():
            self.append(child)

    # -- construction -----------------------------------------------------

    def append(self, child: "Node") -> "Node":
        """Attach ``child`` as the last child and return it."""
        if child.parent is not None:
            raise ValueError("node already has a parent; detach it first")
        child.parent = self
        self.children.append(child)
        return child

    def detach(self) -> "Node":
        """Remove this node from its parent and return it."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    # -- predicates --------------------------------------------------------

    @property
    def is_element(self) -> bool:
        return self.kind is NodeKind.ELEMENT

    @property
    def is_value(self) -> bool:
        return self.kind is NodeKind.VALUE

    @property
    def is_function(self) -> bool:
        return self.kind is NodeKind.FUNCTION

    @property
    def is_data(self) -> bool:
        """True for the paper's *data nodes* (element or value)."""
        return self.kind is not NodeKind.FUNCTION

    # -- traversal ---------------------------------------------------------

    def iter_subtree(self) -> Iterator["Node"]:
        """Pre-order (document-order) traversal including this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_descendants(self) -> Iterator["Node"]:
        """All nodes strictly below this one, in document order."""
        nodes = self.iter_subtree()
        next(nodes)
        return nodes

    def iter_ancestors(self) -> Iterator["Node"]:
        """Parent, grandparent, ... up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def data_children(self) -> list["Node"]:
        return [c for c in self.children if c.is_data]

    def function_children(self) -> list["Node"]:
        return [c for c in self.children if c.is_function]

    # -- measurements -------------------------------------------------------

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return sum(1 for _ in self.iter_subtree())

    def depth(self) -> int:
        """Number of ancestors (root has depth 0)."""
        return sum(1 for _ in self.iter_ancestors())

    # -- copying -----------------------------------------------------------

    def clone(self) -> "Node":
        """Deep copy; the copy is detached and carries no node ids.

        Iterative, so arbitrarily deep documents copy without hitting
        the interpreter's recursion limit.
        """
        copy = Node(self.kind, self.label, activation=self.activation)
        stack = [(self, copy)]
        while stack:
            source, target = stack.pop()
            for child in source.children:
                child_copy = Node(
                    child.kind, child.label, activation=child.activation
                )
                target.append(child_copy)
                stack.append((child, child_copy))
        return copy

    def structurally_equal(self, other: "Node") -> bool:
        """Deep equality on (kind, label, ordered children)."""
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a.kind is not b.kind or a.label != b.label:
                return False
            if len(a.children) != len(b.children):
                return False
            stack.extend(zip(a.children, b.children))
        return True

    # -- rendering -----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        marker = {NodeKind.ELEMENT: "", NodeKind.VALUE: "=", NodeKind.FUNCTION: "!"}
        return (
            f"Node({marker[self.kind]}{self.label!r}, id={self.node_id}, "
            f"children={len(self.children)})"
        )

    def pretty(self, indent: int = 0) -> str:
        """Human-readable indented rendering of the subtree.

        Iterative, so arbitrarily deep documents render without hitting
        the interpreter's recursion limit.
        """
        parts = []
        stack = [(self, indent)]
        while stack:
            node, level = stack.pop()
            pad = "  " * level
            if node.is_value:
                line = f'{pad}"{node.label}"'
            elif node.is_function:
                line = f"{pad}@{node.label}()"
            else:
                line = f"{pad}<{node.label}>"
            if node.node_id is not None:
                line += f"  #{node.node_id}"
            parts.append(line)
            stack.extend(
                (child, level + 1) for child in reversed(node.children)
            )
        return "\n".join(parts)


# -- detached-tree constructors (the building DSL lives in builder.py) -----


def element(label: str, *children: Node) -> Node:
    """A detached element node."""
    return Node(NodeKind.ELEMENT, label, children)


def value(text: object) -> Node:
    """A detached value (text leaf) node; the value is stored as ``str``."""
    return Node(NodeKind.VALUE, str(text))


def call(
    service_name: str,
    *parameters: Node,
    activation: Activation = Activation.LAZY,
) -> Node:
    """A detached function (service call) node."""
    return Node(
        NodeKind.FUNCTION, service_name, parameters, activation=activation
    )


def walk_matching(
    root: Node, predicate: Callable[[Node], bool]
) -> Iterator[Node]:
    """All nodes under (and including) ``root`` satisfying ``predicate``."""
    return (n for n in root.iter_subtree() if predicate(n))


_fresh_counter = itertools.count(1)


def fresh_name(prefix: str) -> str:
    """A process-unique name, handy for generated services in tests."""
    return f"{prefix}_{next(_fresh_counter)}"
