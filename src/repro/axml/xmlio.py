"""XML (de)serialisation of AXML trees.

Standards-compliant interchange (the paper's system is "compliant with XML
and Web services standards"): a function node is serialised as an
``axml:call`` element whose ``service`` attribute names the function and
whose children are the call parameters — the convention used by the
ActiveXML system.

Example::

    <hotel>
      <name>Best Western</name>
      <nearby>
        <axml:call service="getNearbyRestos"><param>2nd Av.</param></axml:call>
      </nearby>
    </hotel>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Iterable, Optional

from .arena import FootprintLike, project_tree
from .document import Document
from .node import Activation, Node, call, element, value

AXML_NAMESPACE = "http://activexml.net/2004/axml"
_CALL_TAG = f"{{{AXML_NAMESPACE}}}call"
_SERVICE_ATTR = "service"
_MODE_ATTR = "mode"

ET.register_namespace("axml", AXML_NAMESPACE)


def _element_shell(node: Node) -> ET.Element:
    """An empty ElementTree element for one (non-value) AXML node."""
    if node.is_function:
        attributes = {_SERVICE_ATTR: node.label}
        if node.activation is not Activation.LAZY:
            attributes[_MODE_ATTR] = node.activation.value
        return ET.Element(_CALL_TAG, attributes)
    return ET.Element(node.label)


def to_etree(node: Node) -> ET.Element:
    """Convert an AXML node to an ElementTree element.

    Iterative, so arbitrarily deep documents serialise without hitting
    the interpreter's recursion limit.
    """
    if node.is_value:
        raise ValueError("a bare value node has no element representation")
    out = _element_shell(node)
    _fill_children(out, node.children)
    return out


def _fill_children(out: ET.Element, children: Iterable[Node]) -> None:
    stack: list[tuple[ET.Element, Iterable[Node]]] = [(out, children)]
    while stack:
        dst, kids = stack.pop()
        previous: ET.Element | None = None
        for child in kids:
            if child.is_value:
                if previous is None:
                    dst.text = (dst.text or "") + child.label
                else:
                    previous.tail = (previous.tail or "") + child.label
            else:
                sub = _element_shell(child)
                dst.append(sub)
                previous = sub
                stack.append((sub, child.children))


def _node_shell(elem: ET.Element) -> Node:
    """A childless AXML node for one ElementTree element."""
    if elem.tag == _CALL_TAG:
        service_name = elem.get(_SERVICE_ATTR)
        if not service_name:
            raise ValueError("axml:call element is missing its service attribute")
        return call(
            service_name,
            activation=Activation(elem.get(_MODE_ATTR, Activation.LAZY.value)),
        )
    return element(elem.tag)


def from_etree(elem: ET.Element) -> Node:
    """Convert an ElementTree element back to an AXML node.

    Iterative for the same deep-document reason as :func:`to_etree`.
    """
    node = _node_shell(elem)
    stack = [(elem, node)]
    while stack:
        src, dst = stack.pop()
        text = (src.text or "").strip()
        if text:
            dst.append(value(text))
        for sub in src:
            child = _node_shell(sub)
            dst.append(child)
            stack.append((sub, child))
            tail = (sub.tail or "").strip()
            if tail:
                dst.append(value(tail))
    return node


def serialize(node: Node) -> str:
    """Serialise a node (element or function) to an XML string."""
    return ET.tostring(to_etree(node), encoding="unicode")


def serialize_forest(forest: Iterable[Node]) -> str:
    """Serialise a forest by wrapping it in an ``axml:forest`` element."""
    wrapper = ET.Element(f"{{{AXML_NAMESPACE}}}forest")
    _fill_children(wrapper, list(forest))
    return ET.tostring(wrapper, encoding="unicode")


def parse(text: str) -> Node:
    """Parse an XML string into a detached AXML tree."""
    return from_etree(ET.fromstring(text))


def parse_document(
    text: str,
    name: str = "document",
    project: Optional[FootprintLike] = None,
) -> Document:
    """Parse an XML string into a full :class:`Document`.

    ``project`` applies load-time projection between parsing and id
    assignment — cold subtrees of the parsed tree are dropped before
    the document materialises (see
    :func:`~repro.axml.arena.project_tree`); the document then carries
    ``projection_pruned_at_load``.
    """
    root = parse(text)
    pruned = 0
    if project is not None:
        root, pruned = project_tree(root, project)
    document = Document(root, name=name)
    if project is not None:
        document.projection_pruned_at_load = pruned
    return document


def serialize_document(document: Document) -> str:
    """Serialise a whole document to an XML string."""
    return serialize(document.root)


def serialized_size(node: Node) -> int:
    """Size in bytes of a node's XML serialisation (UTF-8).

    Used by the simulated network layer to account data-transfer volume
    for the query-pushing experiment (E3).
    """
    if node.is_value:
        return len(node.label.encode("utf-8"))
    return len(serialize(node).encode("utf-8"))


def forest_size_bytes(forest: Iterable[Node]) -> int:
    """Total serialised size of a result forest."""
    return sum(serialized_size(tree) for tree in forest)
