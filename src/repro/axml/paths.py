"""Label paths: the positions at which nodes (and calls) live.

The relevance analysis of Sections 3-4 reasons about the *position* of a
function node, i.e. the sequence of element labels from the document root
down to the node.  This module centralises that notion so the matcher, the
F-guide and the automata-based influence tests all agree on it.

Conventions:

* A path is a tuple of element labels, **including** the root label.
* The path *of* a function node is the path of its parent element —
  function nodes themselves carry no label that queries can match, and
  their result is spliced in at exactly the parent's position.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .node import Node

LabelPath = tuple[str, ...]


def path_to(node: Node) -> LabelPath:
    """Labels from the document root down to ``node`` (inclusive).

    Only element labels participate; it is an error to ask for the path
    of a value or function node directly — use :func:`call_position` for
    function nodes.
    """
    if not node.is_element:
        raise ValueError("label paths are defined on element nodes only")
    labels = [node.label]
    labels.extend(anc.label for anc in node.iter_ancestors())
    labels.reverse()
    return tuple(labels)


def call_position(function_node: Node) -> LabelPath:
    """The position of a function node: the label path of its parent."""
    if not function_node.is_function:
        raise ValueError("call_position expects a function node")
    parent = function_node.parent
    if parent is None:
        raise ValueError("detached function node has no position")
    return path_to(parent)


def format_path(path: Iterable[str]) -> str:
    """Render a label path in XPath style, e.g. ``/hotels/hotel/nearby``."""
    return "/" + "/".join(path)


def is_prefix(prefix: LabelPath, path: LabelPath) -> bool:
    """Is ``prefix`` an initial segment of ``path``?"""
    return len(prefix) <= len(path) and path[: len(prefix)] == prefix


def common_prefix(a: LabelPath, b: LabelPath) -> LabelPath:
    """Longest common initial segment of two paths."""
    out = []
    for x, y in zip(a, b):
        if x != y:
            break
        out.append(x)
    return tuple(out)


def parse_path(text: str) -> Optional[LabelPath]:
    """Parse ``/a/b/c`` into ``("a", "b", "c")``; ``None`` if not linear.

    Only plain child steps are accepted here — this is a convenience for
    tests and the F-guide, not the query parser (see
    :mod:`repro.pattern.parse` for the full surface syntax).
    """
    if not text.startswith("/") or "//" in text:
        return None
    parts = [p for p in text.split("/") if p]
    if any(not p or "[" in p or "(" in p for p in parts):
        return None
    return tuple(parts)
