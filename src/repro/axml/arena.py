"""Arena-backed document store: struct-of-arrays columns over a tree.

Every hot path of the reproduction — relevance analysis, shared group
passes, answer maintenance — ultimately walks a pointer-per-``Node``
Python object graph, paying an attribute lookup, a bound-method call and
a list iteration per visited node.  This module stores the same tree a
second time as parallel ``array`` columns (struct-of-arrays):

* ``kind``         — signed byte: element / value / function (``-1`` =
  free slot);
* ``label``        — interned label id (element name, leaf value, or
  service name);
* ``parent``       — parent slot (``-1`` for the root);
* ``first_child`` / ``next_sibling`` — the tree shape as an intrusive
  linked list, so child iteration is two int reads per step;
* ``service``      — the label id of the called service for function
  nodes, ``-1`` for data nodes (a one-column screen for "any call");
* ``node_id``      — the document's stable node id for the slot.

Traversals become tight loops over int arrays — no objects, no
attribute chasing — which is where the group pass spends its time on
large documents.  The existing :class:`~repro.axml.node.Node` /
:class:`~repro.axml.document.Document` API is preserved unchanged: the
arena is a :class:`~repro.axml.document.Document` *observer* (exactly
like the label index), the live ``Node`` objects remain the canonical
views of the slots (``node_at``), and :class:`ArenaView` offers the
same reading surface reconstructed purely from the columns, so callers
in ``pattern/``, ``lazy/`` and ``serve/`` port incrementally without a
behaviour change.  The object walk stays available everywhere as the
differential oracle.

Splices recycle slots through a free list: a
:class:`~repro.axml.document.SpliceDelta` frees the removed subtree's
slots, fills them (or fresh tail slots) with the added forest, and
relinks the splice parent's sibling chain from the live children list —
O(|delta| + fanout(parent)), never O(document).

Load-time projection (:func:`project_tree`) is the companion move, in
the spirit of type-based XML projection: given a merged label footprint
(duck-typed — anything with ``touches_node`` and ``matches_any_data``,
e.g. :class:`repro.lazy.incremental.LabelFootprint`), subtrees no test
of the footprint can touch are pruned *before* the document is built,
so cold regions never materialise at all.  It stands down (prunes
nothing) when the footprint carries a data wildcard — every data node
is then hot — and it never prunes below a function node: parameter
subtrees are call arguments that must ship intact.
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterator, Optional, Protocol, Sequence, runtime_checkable

from .document import Document, SpliceDelta
from .node import Node, NodeKind

KIND_ELEMENT = 0
KIND_VALUE = 1
KIND_FUNCTION = 2
KIND_FREE = -1

#: ``want_kind`` code for scans accepting any data node (star/variable
#: pattern tests): element or value, never function.
ANY_DATA = -2

_KIND_CODE = {
    NodeKind.ELEMENT: KIND_ELEMENT,
    NodeKind.VALUE: KIND_VALUE,
    NodeKind.FUNCTION: KIND_FUNCTION,
}


@runtime_checkable
class FootprintLike(Protocol):
    """Duck type of :class:`repro.lazy.incremental.LabelFootprint` (the
    axml layer must not import the lazy layer)."""

    def touches_node(self, node: Node, parent: Optional[Node]) -> bool:
        ...

    @property
    def matches_any_data(self) -> bool:
        ...


class DocumentArena:
    """Column mirror of a live :class:`Document`, splice-maintained.

    Build once (one linear pass), attach as an observer, and every
    subsequent mutation costs time proportional to the delta.  The
    arena never owns the tree: ``Node`` objects stay canonical, slots
    map back to them through :meth:`node_at`, and detaching the arena
    leaves the document untouched.
    """

    def __init__(self, document: Document) -> None:
        self.document = document
        self.labels: list[str] = []
        self._label_ids: dict[str, int] = {}
        self.kind = array("b")
        self.label = array("i")
        self.parent = array("i")
        self.first_child = array("i")
        self.next_sibling = array("i")
        self.service = array("i")
        self.node_id = array("q")
        self._free: list[int] = []
        self._slot_of: dict[int, int] = {}
        self._node_at: list[Optional[Node]] = []
        self.splices_applied = 0
        self._build()
        document.add_observer(self)

    def detach(self) -> None:
        """Stop observing the document (the arena goes stale)."""
        self.document.remove_observer(self)

    # -- label interning -----------------------------------------------------

    def intern(self, label: str) -> int:
        lid = self._label_ids.get(label)
        if lid is None:
            lid = len(self.labels)
            self.labels.append(label)
            self._label_ids[label] = lid
        return lid

    def label_id(self, label: str) -> Optional[int]:
        """The id of an already-interned label, or ``None``.

        A missing label means no node currently (or ever) carried it —
        callers use that as a constant-time empty-scan answer.  Ids are
        append-only: once interned, a label keeps its id even after the
        last node carrying it leaves the document.
        """
        return self._label_ids.get(label)

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        self._add_subtree(self.document.root, -1)

    def _new_slot(self, node: Node, parent_slot: int) -> int:
        lid = self.intern(node.label)
        kcode = _KIND_CODE[node.kind]
        scode = lid if kcode == KIND_FUNCTION else -1
        nid = node.node_id
        assert nid is not None, "arena mirrors attached nodes only"
        if self._free:
            slot = self._free.pop()
            self.kind[slot] = kcode
            self.label[slot] = lid
            self.parent[slot] = parent_slot
            self.first_child[slot] = -1
            self.next_sibling[slot] = -1
            self.service[slot] = scode
            self.node_id[slot] = nid
            self._node_at[slot] = node
        else:
            slot = len(self.kind)
            self.kind.append(kcode)
            self.label.append(lid)
            self.parent.append(parent_slot)
            self.first_child.append(-1)
            self.next_sibling.append(-1)
            self.service.append(scode)
            self.node_id.append(nid)
            self._node_at.append(node)
        self._slot_of[nid] = slot
        return slot

    def _add_subtree(self, subtree_root: Node, parent_slot: int) -> int:
        top = self._new_slot(subtree_root, parent_slot)
        stack = [(subtree_root, top)]
        while stack:
            node, slot = stack.pop()
            prev = -1
            for child in node.children:
                cslot = self._new_slot(child, slot)
                if prev == -1:
                    self.first_child[slot] = cslot
                else:
                    self.next_sibling[prev] = cslot
                prev = cslot
                stack.append((child, cslot))
        return top

    def _remove_subtree(self, subtree_root: Node) -> None:
        for node in subtree_root.iter_subtree():
            nid = node.node_id
            slot = None if nid is None else self._slot_of.pop(nid, None)
            if slot is None:
                continue
            self.kind[slot] = KIND_FREE
            self.first_child[slot] = -1
            self.next_sibling[slot] = -1
            self.parent[slot] = -1
            self.service[slot] = -1
            self._node_at[slot] = None
            self._free.append(slot)

    # -- DocumentObserver protocol -------------------------------------------

    def call_removed(self, document: Document, node: Node) -> None:
        """Covered by :meth:`splice`; kept for protocol completeness."""

    def calls_added(self, document: Document, nodes: list[Node]) -> None:
        """Covered by :meth:`splice`; kept for protocol completeness."""

    def splice(self, document: Document, delta: SpliceDelta) -> None:
        """Free-list splice protocol: free removed slots, fill slots for
        the added forest (recycling freed ones), relink the parent's
        sibling chain from its live (already final) children list."""
        self.splices_applied += 1
        for root in delta.removed:
            self._remove_subtree(root)
        parent = delta.parent
        if parent is None or parent.node_id is None:
            return
        pslot = self._slot_of.get(parent.node_id)
        if pslot is None:
            return
        for root in delta.added:
            self._add_subtree(root, pslot)
        prev = -1
        for child in parent.children:
            cslot = self._slot_of[child.node_id]
            self.next_sibling[cslot] = -1
            if prev == -1:
                self.first_child[pslot] = cslot
            else:
                self.next_sibling[prev] = cslot
            prev = cslot
        if prev == -1:
            self.first_child[pslot] = -1

    # -- slot <-> node -------------------------------------------------------

    def slot_for(self, node: Node) -> Optional[int]:
        """The slot mirroring exactly this node, or ``None``.

        Identity-checked: node ids are unique *per document*, so a node
        of some other document (or a detached stale node) never aliases
        a slot here.
        """
        nid = node.node_id
        if nid is None:
            return None
        slot = self._slot_of.get(nid)
        if slot is None or self._node_at[slot] is not node:
            return None
        return slot

    def node_at(self, slot: int) -> Node:
        node = self._node_at[slot]
        assert node is not None, "free slot has no node"
        return node

    def view(self, slot: int) -> "ArenaView":
        return ArenaView(self, slot)

    @property
    def root_slot(self) -> int:
        nid = self.document.root.node_id
        assert nid is not None
        slot = self._slot_of.get(nid)
        assert slot is not None
        return slot

    # -- tight-loop scans ----------------------------------------------------

    def child_slots(self, slot: int) -> list[int]:
        out = []
        ns = self.next_sibling
        c = self.first_child[slot]
        while c != -1:
            out.append(c)
            c = ns[c]
        return out

    def iter_subtree_slots(self, slot: int) -> Iterator[int]:
        """Slots of the subtree rooted at ``slot`` (pre-order-ish; the
        exact order is not part of the contract)."""
        fc = self.first_child
        ns = self.next_sibling
        stack = [slot]
        while stack:
            s = stack.pop()
            yield s
            c = fc[s]
            while c != -1:
                stack.append(c)
                c = ns[c]

    def scan_descendants(
        self,
        roots: Sequence[int],
        want_kind: int,
        want_labels: Optional[frozenset[int]],
        descend_into_params: bool,
    ) -> list[int]:
        """Slots in the subtrees of ``roots`` (roots included) passing
        the node filter — the column rewrite of descendant-step
        candidate enumeration.

        ``want_kind`` is a kind code or :data:`ANY_DATA`;
        ``want_labels`` is a set of label ids (``None`` = any label).
        Function-node subtrees are opaque unless ``descend_into_params``
        — the same parameter barrier the object walk applies.
        """
        kind = self.kind
        label = self.label
        fc = self.first_child
        ns = self.next_sibling
        out: list[int] = []
        stack = list(roots)
        while stack:
            s = stack.pop()
            k = kind[s]
            if (
                (k == want_kind or (want_kind == ANY_DATA and k != KIND_FUNCTION))
                and (want_labels is None or label[s] in want_labels)
            ):
                out.append(s)
            if k == KIND_FUNCTION and not descend_into_params:
                continue
            c = fc[s]
            while c != -1:
                stack.append(c)
                c = ns[c]
        return out

    def collect_projection(
        self,
        data_label_ids: frozenset[int],
        function_label_ids: frozenset[int],
        any_function: bool,
    ) -> set[int]:
        """Node ids of every slot some label test accepts, plus all
        their ancestors — the projected-walk set computed column-side
        (one pass over the arrays, one parent-column climb per source)
        instead of with an object traversal.
        """
        kind = self.kind
        label = self.label
        parent = self.parent
        node_id = self.node_id
        projected: set[int] = set()
        add = projected.add
        for s in range(len(kind)):
            k = kind[s]
            if k == KIND_FREE:
                continue
            if k == KIND_FUNCTION:
                hit = any_function or label[s] in function_label_ids
            else:
                hit = label[s] in data_label_ids
            if not hit:
                continue
            c = s
            while c != -1:
                nid = node_id[c]
                if nid in projected:
                    break
                add(nid)
                c = parent[c]
        return projected

    def rebuild_index_buckets(
        self,
    ) -> tuple[dict[str, dict[int, Node]], dict[str, dict[int, Node]]]:
        """``(labels, functions)`` buckets for a
        :class:`~repro.axml.index.LabelIndex` rebuild, produced by one
        loop over the columns instead of an object traversal."""
        labels: dict[str, dict[int, Node]] = {}
        functions: dict[str, dict[int, Node]] = {}
        kind = self.kind
        label_col = self.label
        node_id = self.node_id
        names = self.labels
        node_at = self._node_at
        for s in range(len(kind)):
            k = kind[s]
            if k == KIND_FREE:
                continue
            bucket = functions if k == KIND_FUNCTION else labels
            members = bucket.get(names[label_col[s]])
            if members is None:
                members = bucket[names[label_col[s]]] = {}
            members[node_id[s]] = node_at[s]  # type: ignore[assignment]
        return labels, functions

    # -- measurements --------------------------------------------------------

    @property
    def live_nodes(self) -> int:
        return len(self._slot_of)

    @property
    def capacity(self) -> int:
        """Allocated slots, live and free."""
        return len(self.kind)

    def column_bytes(self) -> int:
        """``sys.getsizeof`` bytes of the arena store proper — the seven
        columns plus the interned label table.  The ``Node`` mirror maps
        are the compatibility view, not the store, and are excluded (a
        pure-arena port drops them)."""
        total = sum(
            sys.getsizeof(col)
            for col in (
                self.kind,
                self.label,
                self.parent,
                self.first_child,
                self.next_sibling,
                self.service,
                self.node_id,
            )
        )
        total += sys.getsizeof(self.labels)
        total += sum(sys.getsizeof(s) for s in self.labels)
        return total

    def consistency_errors(self, limit: int = 10) -> list[str]:
        """Structural disagreements between columns and the live tree —
        the arena's self-check, used by tests and the twin property."""
        errors: list[str] = []
        seen = 0
        for node in self.document.iter_nodes():
            slot = self.slot_for(node)
            if slot is None:
                errors.append(f"node {node.node_id} has no slot")
            else:
                if self.kind[slot] != _KIND_CODE[node.kind]:
                    errors.append(f"slot {slot}: kind mismatch")
                if self.labels[self.label[slot]] != node.label:
                    errors.append(f"slot {slot}: label mismatch")
                pslot = self.parent[slot]
                if node.parent is None:
                    if pslot != -1:
                        errors.append(f"slot {slot}: root has a parent slot")
                elif pslot == -1 or self._node_at[pslot] is not node.parent:
                    errors.append(f"slot {slot}: parent mismatch")
                children = [
                    self._node_at[c] for c in self.child_slots(slot)
                ]
                if children != node.children:
                    errors.append(f"slot {slot}: child chain mismatch")
            seen += 1
            if len(errors) >= limit:
                break
        if seen != self.live_nodes and len(errors) < limit:
            errors.append(
                f"live slot count {self.live_nodes} != tree size {seen}"
            )
        return errors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DocumentArena(live={self.live_nodes}, "
            f"capacity={self.capacity}, free={len(self._free)}, "
            f"labels={len(self.labels)})"
        )


class ArenaView:
    """A ``Node``-shaped read-only view reconstructed from the columns.

    Lifetime rule: a view is valid only while its slot is live — a
    splice that removes the underlying node recycles the slot, after
    which the view silently describes whatever moved in.  Views are
    therefore ephemeral cursors for traversal code, never stored across
    mutations; long-lived references use the canonical ``Node``
    (:meth:`DocumentArena.node_at`), whose identity the document
    preserves.
    """

    __slots__ = ("arena", "slot")

    def __init__(self, arena: DocumentArena, slot: int) -> None:
        self.arena = arena
        self.slot = slot

    @property
    def kind(self) -> NodeKind:
        code = self.arena.kind[self.slot]
        for nkind, ncode in _KIND_CODE.items():
            if ncode == code:
                return nkind
        raise ValueError(f"slot {self.slot} is free")

    @property
    def label(self) -> str:
        return self.arena.labels[self.arena.label[self.slot]]

    @property
    def node_id(self) -> int:
        return self.arena.node_id[self.slot]

    @property
    def parent(self) -> Optional["ArenaView"]:
        pslot = self.arena.parent[self.slot]
        return None if pslot == -1 else ArenaView(self.arena, pslot)

    @property
    def children(self) -> list["ArenaView"]:
        return [
            ArenaView(self.arena, c)
            for c in self.arena.child_slots(self.slot)
        ]

    @property
    def is_element(self) -> bool:
        return self.arena.kind[self.slot] == KIND_ELEMENT

    @property
    def is_value(self) -> bool:
        return self.arena.kind[self.slot] == KIND_VALUE

    @property
    def is_function(self) -> bool:
        return self.arena.kind[self.slot] == KIND_FUNCTION

    @property
    def is_data(self) -> bool:
        return self.arena.kind[self.slot] in (KIND_ELEMENT, KIND_VALUE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArenaView(slot={self.slot}, label={self.label!r})"


# -- load-time projection ----------------------------------------------------


def project_tree(
    root: Node, footprint: Optional[FootprintLike]
) -> tuple[Node, int]:
    """Prune (in place) every subtree the footprint cannot touch.

    A node is kept when some test of the footprint accepts it, or when
    any descendant is kept (ancestor chains stay intact — the pruned
    tree is a *projection*, never a re-shaping).  The root is always
    kept.  Function-node subtrees are atomic: a kept call keeps its
    whole parameter forest, because parameters are shipped to the
    service, not matched against.

    Stands down — returns ``(root, 0)`` — when ``footprint`` is ``None``
    or carries a data wildcard (``matches_any_data``): a star or
    variable test accepts every data node, so nothing is provably cold.

    Returns ``(root, pruned_node_count)``.  Must run on a *detached*
    tree, before :class:`~repro.axml.document.Document` registration.
    """
    if footprint is None or footprint.matches_any_data:
        return root, 0
    order: list[Node] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(node.children)
    keep: dict[int, bool] = {}
    for node in reversed(order):
        kept = footprint.touches_node(node, node.parent) or any(
            keep[id(child)] for child in node.children
        )
        keep[id(node)] = kept
    pruned = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_function:
            continue  # parameters ride along with their call
        survivors = []
        for child in node.children:
            if keep[id(child)]:
                survivors.append(child)
                stack.append(child)
            else:
                pruned += child.subtree_size()
                child.parent = None
        if len(survivors) != len(node.children):
            node.children = survivors
    return root, pruned
