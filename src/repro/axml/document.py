"""AXML documents: identity, mutation, and observation.

A :class:`Document` owns a tree of :class:`~repro.axml.node.Node` objects,
assigns stable node ids, and funnels the one mutation that matters to the
paper — replacing a function node by the forest its invocation returned
(Definition 2's rewrite step ``d1 ->v d2``) — through a single method so
that access structures such as the F-guide (Section 6.2) can be maintained
incrementally via the observer hook.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, Optional, Protocol

from .node import Node, NodeKind


class DocumentObserver(Protocol):
    """Incremental-maintenance hook for document mutations."""

    def call_removed(self, document: "Document", node: Node) -> None:
        """A function node was removed (it has just been invoked)."""

    def calls_added(self, document: "Document", nodes: list[Node]) -> None:
        """New function nodes appeared (inside an invocation result)."""


@dataclasses.dataclass(frozen=True)
class SpliceDelta:
    """Exactly what one document mutation changed.

    The call-level events above are enough for call-extent structures
    (the F-guide); incremental structures over *all* nodes (the label
    index, the relevance cache) need the full delta: every subtree that
    left the document and every subtree that was spliced in, plus where.
    Observers that define a ``splice(document, delta)`` method receive
    one delta per mutation, after the tree has reached its final state.

    Attributes:
        removed: roots of the subtrees that left the document (for a
            call invocation: the function node, parameters still
            attached underneath).
        added: roots of the subtrees spliced in (an invocation's result
            forest), already attached.
        parent: the node under which the splice happened.
    """

    removed: tuple[Node, ...]
    added: tuple[Node, ...]
    parent: Optional[Node]

    def iter_removed(self) -> Iterator[Node]:
        """Every node (not just roots) that left the document."""
        for root in self.removed:
            yield from root.iter_subtree()

    def iter_added(self) -> Iterator[Node]:
        """Every node (not just roots) that entered the document."""
        for root in self.added:
            yield from root.iter_subtree()

    def scope_under(self, root: Node) -> Optional[Node]:
        """The depth-1 attachment point of this splice below ``root``.

        Returns the child of ``root`` whose subtree contains the
        splice's parent — the one depth-1 subtree in which every added
        and removed node lives — or ``None`` when the splice happened
        directly under ``root`` itself (the removed and added roots are
        then depth-1 subtrees in their own right) or when the parent is
        detached from ``root`` entirely.  Answer maintenance keys its
        per-subtree dirtiness on this node.
        """
        cursor = self.parent
        if cursor is None or cursor is root:
            return None
        while cursor.parent is not None and cursor.parent is not root:
            cursor = cursor.parent
        return cursor if cursor.parent is root else None

    def touched_services(self) -> frozenset[str]:
        """Names of the services whose call nodes entered or left the
        document in this splice (parameter subtrees included) — the
        screen for scoped call-cache invalidation."""
        names = {n.label for n in self.iter_removed() if n.is_function}
        names.update(n.label for n in self.iter_added() if n.is_function)
        return frozenset(names)


@dataclasses.dataclass(frozen=True)
class DocumentStats:
    """Size figures for a document, used by experiment reports."""

    total_nodes: int
    element_nodes: int
    value_nodes: int
    function_nodes: int
    max_depth: int

    @property
    def intensional_fraction(self) -> float:
        """Fraction of nodes that are (still) unevaluated service calls."""
        if self.total_nodes == 0:
            return 0.0
        return self.function_nodes / self.total_nodes


class Document:
    """An Active XML document.

    Args:
        root: the root node; it must be an element node (the paper's
            documents always have a data root — a function node cannot
            replace the document root).
        name: optional human-readable name used in reports.
    """

    def __init__(self, root: Node, name: str = "document") -> None:
        if not root.is_element:
            raise ValueError("document root must be an element node")
        if root.parent is not None:
            raise ValueError("document root must be detached")
        self.root = root
        self.name = name
        self.version = 0
        """Bumped on every mutation; cheap change detection for caches
        and continuous queries."""
        self._next_id = 0
        self._nodes_by_id: dict[int, Node] = {}
        self._observers: list[DocumentObserver] = []
        self._register_subtree(root)

    # -- identity ------------------------------------------------------------

    def _register_subtree(self, subtree_root: Node) -> list[Node]:
        """Assign ids to every node of a freshly attached subtree."""
        new_functions = []
        for node in subtree_root.iter_subtree():
            node.node_id = self._next_id
            self._nodes_by_id[self._next_id] = node
            self._next_id += 1
            if node.is_function:
                new_functions.append(node)
        return new_functions

    def node(self, node_id: int) -> Node:
        """The node with the given id (raises ``KeyError`` if gone)."""
        node = self._nodes_by_id[node_id]
        return node

    def contains(self, node: Node) -> bool:
        """Is this exact node currently part of the document?"""
        return (
            node.node_id is not None
            and self._nodes_by_id.get(node.node_id) is node
        )

    # -- observers -----------------------------------------------------------

    def add_observer(self, observer: DocumentObserver) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: DocumentObserver) -> None:
        self._observers.remove(observer)

    def _emit_splice(
        self,
        removed: tuple[Node, ...],
        added: tuple[Node, ...],
        parent: Optional[Node],
    ) -> None:
        """Deliver a splice delta to the observers that understand it.

        ``splice`` is an optional extension of the observer protocol:
        legacy observers (which only track call extents) keep receiving
        ``call_removed``/``calls_added`` and are skipped here.
        """
        delta: Optional[SpliceDelta] = None
        for observer in self._observers:
            handler = getattr(observer, "splice", None)
            if handler is None:
                continue
            if delta is None:
                delta = SpliceDelta(removed=removed, added=added, parent=parent)
            handler(self, delta)

    # -- queries over the tree -------------------------------------------------

    def iter_nodes(self) -> Iterator[Node]:
        return self.root.iter_subtree()

    def function_nodes(self) -> list[Node]:
        """All function nodes currently embedded, in document order."""
        return [n for n in self.iter_nodes() if n.is_function]

    def stats(self) -> DocumentStats:
        counts = {NodeKind.ELEMENT: 0, NodeKind.VALUE: 0, NodeKind.FUNCTION: 0}
        max_depth = 0
        stack = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            counts[node.kind] += 1
            max_depth = max(max_depth, depth)
            stack.extend((c, depth + 1) for c in node.children)
        return DocumentStats(
            total_nodes=sum(counts.values()),
            element_nodes=counts[NodeKind.ELEMENT],
            value_nodes=counts[NodeKind.VALUE],
            function_nodes=counts[NodeKind.FUNCTION],
            max_depth=max_depth,
        )

    # -- the rewrite step ------------------------------------------------------

    def replace_call(self, function_node: Node, result_forest: Iterable[Node]) -> list[Node]:
        """Definition 2's rewrite step: splice a call result into the tree.

        The function node (with its parameter subtrees) is deleted and the
        trees of ``result_forest`` are plugged in its place, preserving
        document order.  Every node of the result is tagged as produced by
        the invoked call, and observers are notified.

        Returns:
            The function nodes newly brought in by the result forest.
        """
        if not self.contains(function_node):
            raise ValueError(f"{function_node!r} is not part of this document")
        if not function_node.is_function:
            raise ValueError("replace_call expects a function node")
        parent = function_node.parent
        if parent is None:
            raise ValueError("cannot replace the document root")

        self.version += 1
        invoked_id = function_node.node_id
        self.record_call_provenance(function_node)
        position = parent.children.index(function_node)
        self._unregister_subtree(function_node)
        function_node.detach()
        for observer in self._observers:
            observer.call_removed(self, function_node)

        new_functions: list[Node] = []
        added: list[Node] = []
        for offset, tree in enumerate(result_forest):
            if tree.parent is not None:
                raise ValueError("result forest trees must be detached")
            new_functions.extend(self._register_subtree(tree))
            for node in tree.iter_subtree():
                node.produced_by = invoked_id
            tree.parent = parent
            parent.children.insert(position + offset, tree)
            added.append(tree)
        if new_functions:
            for observer in self._observers:
                observer.calls_added(self, new_functions)
        self._emit_splice((function_node,), tuple(added), parent)
        return new_functions

    def _unregister_subtree(self, subtree_root: Node) -> None:
        for node in subtree_root.iter_subtree():
            if node.node_id is not None:
                self._nodes_by_id.pop(node.node_id, None)

    # -- general updates -----------------------------------------------------

    def insert_subtree(
        self, parent: Node, subtree: Node, position: Optional[int] = None
    ) -> list[Node]:
        """Insert a detached subtree as a child of ``parent``.

        Section 6.2 notes that access structures "must be maintained as
        the document evolves ... if the document is updated" — not only
        through call invocations; this is the generic insertion, with
        observer notification for any calls the subtree brings.

        Returns the function nodes newly added to the document.
        """
        if not self.contains(parent):
            raise ValueError("insertion parent is not part of this document")
        if parent.is_value:
            raise ValueError("value leaves cannot have children")
        if subtree.parent is not None:
            raise ValueError("subtree must be detached")
        self.version += 1
        new_functions = self._register_subtree(subtree)
        subtree.parent = parent
        if position is None:
            parent.children.append(subtree)
        else:
            parent.children.insert(position, subtree)
        if new_functions:
            for observer in self._observers:
                observer.calls_added(self, new_functions)
        self._emit_splice((), (subtree,), parent)
        return new_functions

    def remove_subtree(self, node: Node) -> Node:
        """Remove (and return) a subtree, notifying observers of every
        call that disappears with it."""
        if not self.contains(node):
            raise ValueError("node is not part of this document")
        if node is self.root:
            raise ValueError("cannot remove the document root")
        self.version += 1
        parent = node.parent
        removed_calls = [n for n in node.iter_subtree() if n.is_function]
        for call in removed_calls:
            self.record_call_provenance(call)
        self._unregister_subtree(node)
        node.detach()
        for call in removed_calls:
            for observer in self._observers:
                observer.call_removed(self, call)
        self._emit_splice((node,), (), parent)
        return node

    # -- provenance --------------------------------------------------------------

    def transitively_produced_by(self, node: Node, call_id: int) -> bool:
        """Was ``node`` (transitively) produced by the call with ``call_id``?

        Realises the paper's relation from Definition 2: a node is
        transitively produced by call ``v`` if it was produced by ``v`` or
        by some call that was itself transitively produced by ``v``.
        """
        producer = node.produced_by
        seen = set()
        while producer is not None and producer not in seen:
            if producer == call_id:
                return True
            seen.add(producer)
            producer_node = self._produced_index().get(producer)
            producer = producer_node
        return False

    def _produced_index(self) -> dict[int, Optional[int]]:
        """Map call-id -> id of the call that produced *that* call node.

        Built lazily from provenance tags; removed call nodes are no
        longer in ``_nodes_by_id`` so we record provenance eagerly.
        """
        if not hasattr(self, "_producer_of_call"):
            self._producer_of_call: dict[int, Optional[int]] = {}
        return self._producer_of_call

    def record_call_provenance(self, call_node: Node) -> None:
        """Remember who produced a call before the call node is removed."""
        if call_node.node_id is not None:
            self._produced_index()[call_node.node_id] = call_node.produced_by

    # -- copying -------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Document":
        """An independent deep copy (fresh node ids, no observers)."""
        return Document(self.root.clone(), name=name or self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"Document({self.name!r}, nodes={stats.total_nodes}, "
            f"calls={stats.function_nodes})"
        )
