"""A small declarative DSL for building AXML trees.

Example — a fragment of the paper's Figure 1 document::

    from repro.axml.builder import E, V, C, build_document

    doc = build_document(
        E("hotels",
          E("hotel",
            E("name", V("Best Western")),
            E("address", V("75, 2nd Av.")),
            E("rating", V("5")),
            E("nearby",
              C("getNearbyRestos", V("2nd Av.")),
              C("getNearbyMuseums", V("2nd Av.")))),
          C("getHotels", V("NY"))),
        name="figure-1",
    )

``E``/``V``/``C`` build detached element/value/call nodes;
:func:`build_document` wraps a detached tree into a
:class:`~repro.axml.document.Document`.  For convenience, plain strings,
ints and floats given as children are coerced to value nodes.
"""

from __future__ import annotations

from typing import Optional, Union

from .arena import FootprintLike, project_tree
from .document import Document
from .node import Activation, Node, call, element, value

Child = Union[Node, str, int, float]


def _coerce(child: Child) -> Node:
    if isinstance(child, Node):
        return child
    return value(child)


def E(label: str, *children: Child) -> Node:
    """An element node; non-node children are coerced to value leaves."""
    return element(label, *(_coerce(c) for c in children))


def V(text: object) -> Node:
    """A value (text leaf) node."""
    return value(text)


def C(
    service_name: str,
    *parameters: Child,
    activation: Activation = Activation.LAZY,
) -> Node:
    """A function (service call) node; parameters are coerced like ``E``."""
    return call(
        service_name,
        *(_coerce(p) for p in parameters),
        activation=activation,
    )


def build_document(
    root: Node,
    name: str = "document",
    project: Optional[FootprintLike] = None,
) -> Document:
    """Wrap a detached tree into a Document (assigning node ids).

    ``project`` enables load-time projection: subtrees no test of the
    footprint can touch are pruned *before* node ids are assigned, so
    cold regions never materialise (see
    :func:`~repro.axml.arena.project_tree`, including when it stands
    down).  The pruned-node count is recorded on the document as
    ``projection_pruned_at_load`` for the metrics layer.
    """
    pruned = 0
    if project is not None:
        root, pruned = project_tree(root, project)
    document = Document(root, name=name)
    if project is not None:
        document.projection_pruned_at_load = pruned
    return document
