"""Chained-call workloads: deep dynamic nesting for the layering
experiment (E5).

A *chain* document materialises one level at a time: the root holds a
call whose result holds the next level's call, and so on ``depth``
times, ending in a leaf value.  Layered NFQA should walk the chain with
exactly one relevance sweep per level, while plain NFQA re-evaluates
every NFQ after every invocation.

A *comb* document has ``width`` independent branches, each with its own
chain — the parallelism experiment: branch positions are pairwise
disjoint, so condition (*) lets each round fire one call per branch.
"""

from __future__ import annotations

from typing import Sequence

from ..axml.builder import C, E, V
from ..axml.node import Node
from ..pattern.parse import parse_pattern
from ..schema.schema import Schema
from ..services.catalog import make_signature
from ..services.service import Service
from .primitives import Workload, cloning_document_factory, registry_of


class ChainService(Service):
    """``levelK(i)`` returns ``<lK><levelK+1(i)/></lK>`` until the last
    level, which returns the leaf value."""

    def __init__(self, level: int, depth: int, latency_s: float) -> None:
        super().__init__(
            f"level{level}",
            signature=make_signature(
                f"level{level}",
                "data",
                f"l{level}" if level < depth else "data",
            ),
            latency_s=latency_s,
        )
        self._level = level
        self._depth = depth

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        key = parameters[0].label if parameters else "0"
        if self._level >= self._depth:
            return [V(f"leaf-{key}")]
        return [
            E(
                f"l{self._level}",
                C(f"level{self._level + 1}", V(key)),
            )
        ]


def build_chain_workload(
    depth: int = 6,
    width: int = 1,
    latency_s: float = 0.05,
    distinct_keys: int | None = None,
) -> Workload:
    """A comb of ``width`` branches, each a chain of ``depth`` calls.

    The query asks for the leaf of every branch:
    ``/chain/branch/l1/l2/.../l<depth-1>/$LEAF``.

    ``distinct_keys`` caps how many different argument keys the branches
    use (default: every branch has its own).  With fewer keys than
    branches the comb contains duplicate calls — the call-cache
    experiment's knob: duplicates memoize, so only ``distinct_keys``
    chains pay for the network.
    """
    if depth < 2:
        raise ValueError("chains need depth >= 2")
    if distinct_keys is not None and distinct_keys < 1:
        raise ValueError("distinct_keys must be >= 1")
    registry = registry_of(
        ChainService(level, depth, latency_s) for level in range(1, depth + 1)
    )

    # Content models cover both the intensional and the materialised
    # state of every level (like the paper's rating = (data|getRating)).
    schema = Schema()
    schema.declare_element("chain", "branch+")
    schema.declare_element("branch", "(l1 | level1)")
    for level in range(1, depth):
        if level < depth - 1:
            content = f"(l{level + 1} | level{level + 1})"
        else:
            content = f"(data | level{depth})"
        schema.declare_element(f"l{level}", content)
    for level in range(1, depth + 1):
        out = f"l{level}" if level < depth else "data"
        schema.declare_function(f"level{level}", "data", out)

    steps = "/".join(f"l{level}" for level in range(1, depth))
    query_text = f"/chain/branch/{steps}/$LEAF"

    def branch_key(b: int) -> str:
        return str(b if distinct_keys is None else b % distinct_keys)

    branches = [
        E("branch", C("level1", V(branch_key(b)))) for b in range(width)
    ]

    return Workload(
        name=f"chain(depth={depth},width={width})",
        schema=schema,
        registry=registry,
        query=parse_pattern(query_text, name="chain-query"),
        _document_factory=cloning_document_factory(
            f"chain(d={depth},w={width})", "chain", branches
        ),
    )
