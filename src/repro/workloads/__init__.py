"""Workload generators: the paper's scenarios at parametric scale."""

from .hotels import (
    HOTELS_SCHEMA_TEXT,
    PAPER_QUERY_TEXT,
    HotelsWorkloadParams,
    Workload,
    build_hotels_workload,
    figure_1_document,
    figure_1_registry,
    figure_1_schema,
    paper_query,
)
from .nightlife import (
    NIGHTLIFE_QUERY_TEXT,
    NIGHTLIFE_SCHEMA_TEXT,
    NightlifeParams,
    build_nightlife_workload,
)
from .queries import (
    ALL_HOTELS_QUERIES,
    hotels_broad_query,
    hotels_point_query,
    hotels_rating_only_query,
    hotels_selective_query,
)
from .factory import (
    FAULT_PLANS,
    REGIMES,
    FactoryService,
    GeneratedWorkload,
    WorkloadSpec,
    fuzz_spec,
    generate,
    regime,
)
from .primitives import (
    cloning_document_factory,
    keyed_service,
    registry_of,
    static_service,
)
from .synthetic import SyntheticService, SyntheticWorld, make_world

__all__ = [
    "FAULT_PLANS",
    "REGIMES",
    "FactoryService",
    "GeneratedWorkload",
    "WorkloadSpec",
    "cloning_document_factory",
    "fuzz_spec",
    "generate",
    "keyed_service",
    "regime",
    "registry_of",
    "static_service",
    "ALL_HOTELS_QUERIES",
    "HOTELS_SCHEMA_TEXT",
    "HotelsWorkloadParams",
    "NIGHTLIFE_QUERY_TEXT",
    "NIGHTLIFE_SCHEMA_TEXT",
    "NightlifeParams",
    "PAPER_QUERY_TEXT",
    "SyntheticService",
    "SyntheticWorld",
    "Workload",
    "build_hotels_workload",
    "build_nightlife_workload",
    "figure_1_document",
    "figure_1_registry",
    "figure_1_schema",
    "hotels_broad_query",
    "hotels_point_query",
    "hotels_rating_only_query",
    "hotels_selective_query",
    "make_world",
    "paper_query",
]

from .chains import ChainService, build_chain_workload  # noqa: E402

__all__ += ["ChainService", "build_chain_workload"]
