"""Shared building blocks for workload generators.

Every workload module used to carry its own copy of the same three
ingredients: a ``Workload`` bundle, registry assembly over keyed mock
tables, and a clone-based document factory.  They live here once now —
``hotels``/``chains``/``nightlife`` are thin presets over these
primitives, and ``factory`` builds arbitrary declarative scenarios from
them.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Optional, Sequence

from ..axml.builder import E, build_document
from ..axml.document import Document
from ..axml.node import Node
from ..pattern.pattern import TreePattern
from ..schema.schema import Schema
from ..services.catalog import StaticService, TableService, make_signature
from ..services.registry import ServiceBus, ServiceRegistry
from ..services.simulation import NetworkModel


@dataclasses.dataclass
class Workload:
    """A ready-to-evaluate scenario: document, services, schema, query."""

    name: str
    schema: Optional[Schema]
    registry: ServiceRegistry
    query: TreePattern
    _document_factory: object

    def make_document(self) -> Document:
        return self._document_factory()  # type: ignore[operator]

    def make_bus(self, network: Optional[NetworkModel] = None) -> ServiceBus:
        return ServiceBus(self.registry, network=network)


def keyed_service(
    name: str,
    table: dict[str, list[Node]],
    out: str,
    *,
    default: Optional[list[Node]] = None,
    latency_s: float = 0.05,
    in_type: str = "data",
) -> TableService:
    """A keyed mock service (a function of its parameter) with a typed
    signature — the standard offline stand-in for a SOAP endpoint."""
    return TableService(
        name,
        table,
        default=default,
        signature=make_signature(name, in_type, out),
        latency_s=latency_s,
    )


def static_service(
    name: str,
    forest: list[Node],
    out: str,
    *,
    latency_s: float = 0.05,
    in_type: str = "data",
) -> StaticService:
    """A constant-result mock service with a typed signature."""
    return StaticService(
        name,
        forest,
        signature=make_signature(name, in_type, out),
        latency_s=latency_s,
    )


def cloning_document_factory(
    name: str, root_label: str, trees: Sequence[Node]
) -> Callable[[], Document]:
    """A document factory that clones prebuilt subtrees under a fresh
    root — each call yields a structurally identical, independent
    document (the twin-document idiom the differential harnesses rely
    on)."""
    template = tuple(trees)

    def factory() -> Document:
        return build_document(
            E(root_label, *[tree.clone() for tree in template]), name=name
        )

    return factory


def registry_of(services: Iterable) -> ServiceRegistry:
    """Assemble a registry (a trivial alias that keeps call sites
    declarative)."""
    return ServiceRegistry(services)
