"""The introduction's night-life portal scenario.

"Consider a Web site about your city's night-life ... containing
information about, say, movies and restaurants.  Now, suppose someone
asks the query /goingout/movies//show[title="The Hours"]/schedule.
Then, there is no point in invoking any calls found below the path
/goingout/restaurants."

The generated document has a ``movies`` section (theaters whose shows
come from ``getShows`` calls) and a ``restaurants`` section fed by
``getRestaurantList`` whose results embed further ``getMenu`` calls —
an arbitrarily expensive subtree a lazy evaluator must never touch.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from ..axml.builder import C, E, V
from ..axml.node import Node
from ..pattern.parse import parse_pattern
from ..schema.schema import parse_schema
from .primitives import (
    Workload,
    cloning_document_factory,
    keyed_service,
    registry_of,
    static_service,
)

NIGHTLIFE_SCHEMA_TEXT = """
functions:
  getShows          = [in: data, out: show*]
  getReviews        = [in: data, out: review*]
  getRestaurantList = [in: data, out: restaurant*]
  getMenu           = [in: data, out: dish*]
elements:
  goingout    = movies.restaurants
  movies      = theater*
  theater     = name.(show | getShows)*.(review | getReviews)*
  show        = title.schedule
  title       = data
  schedule    = data
  review      = data
  restaurants = (restaurant | getRestaurantList)*
  restaurant  = name.cuisine.(dish | getMenu)*
  name        = data
  cuisine     = data
  dish        = data
"""

TARGET_TITLE = "The Hours"

NIGHTLIFE_QUERY_TEXT = (
    f'/goingout/movies//show[title="{TARGET_TITLE}"]/schedule'
)


@dataclasses.dataclass
class NightlifeParams:
    n_theaters: int = 10
    shows_per_theater: int = 4
    target_title_fraction: float = 0.25
    n_restaurants: int = 20
    dishes_per_restaurant: int = 5
    with_reviews: bool = True
    service_latency_s: float = 0.05
    seed: int = 42


def build_nightlife_workload(
    params: Optional[NightlifeParams] = None,
) -> Workload:
    params = params or NightlifeParams()
    rng = random.Random(params.seed)
    schema = parse_schema(NIGHTLIFE_SCHEMA_TEXT)

    shows_table: dict[str, list[Node]] = {}
    reviews_table: dict[str, list[Node]] = {}
    menu_table: dict[str, list[Node]] = {}

    def make_show(theater: str, index: int) -> Node:
        plays_target = rng.random() < params.target_title_fraction
        title = TARGET_TITLE if plays_target else f"Film {theater}-{index}"
        return E(
            "show",
            E("title", V(title)),
            E("schedule", V(f"{18 + index % 4}:30 at {theater}")),
        )

    theaters = []
    for t in range(params.n_theaters):
        name = f"Cinema {t}"
        shows_table[name] = [
            make_show(name, s) for s in range(params.shows_per_theater)
        ]
        reviews_table[name] = [E("review", V(f"Review of {name}"))]
        children: list[Node] = [E("name", V(name)), C("getShows", V(name))]
        if params.with_reviews:
            children.append(C("getReviews", V(name)))
        theaters.append(E("theater", *children))

    restaurants = []
    for r in range(params.n_restaurants):
        name = f"Bistro {r}"
        menu_table[name] = [
            E("dish", V(f"Dish {d} at {name}"))
            for d in range(params.dishes_per_restaurant)
        ]
        restaurants.append(
            E(
                "restaurant",
                E("name", V(name)),
                E("cuisine", V(rng.choice(["french", "thai", "fusion"]))),
                C("getMenu", V(name)),
            )
        )

    latency = params.service_latency_s
    registry = registry_of(
        [
            keyed_service("getShows", shows_table, "show*", latency_s=latency),
            keyed_service(
                "getReviews", reviews_table, "review*", latency_s=latency
            ),
            static_service(
                "getRestaurantList", restaurants, "restaurant*",
                latency_s=latency,
            ),
            keyed_service("getMenu", menu_table, "dish*", latency_s=latency),
        ]
    )

    return Workload(
        name=f"nightlife(t={params.n_theaters},r={params.n_restaurants})",
        schema=schema,
        registry=registry,
        query=parse_pattern(NIGHTLIFE_QUERY_TEXT, name="nightlife-query"),
        _document_factory=cloning_document_factory(
            "goingout",
            "goingout",
            [
                E("movies", *theaters),
                E("restaurants", C("getRestaurantList", V("NY"))),
            ],
        ),
    )
