"""Query variants over the standard workloads, used by the benchmarks."""

from __future__ import annotations

from ..pattern.parse import parse_pattern
from ..pattern.pattern import TreePattern
from .hotels import FIVE_STARS, TARGET_HOTEL_NAME


def hotels_selective_query() -> TreePattern:
    """The paper's Figure 4 query: name + rating filters, restaurant join."""
    return parse_pattern(
        f'/hotels/hotel[name="{TARGET_HOTEL_NAME}"][rating="{FIVE_STARS}"]'
        f'/nearby//restaurant[name=$X][address=$Y][rating="{FIVE_STARS}"]',
        name="hotels-selective",
    )


def hotels_broad_query() -> TreePattern:
    """No hotel-level filters: most calls stay relevant."""
    return parse_pattern(
        "/hotels/hotel/nearby//restaurant[name=$X][address=$Y]",
        name="hotels-broad",
    )


def hotels_rating_only_query() -> TreePattern:
    """Touches only the rating branch (museum/resto calls irrelevant
    once types are known)."""
    return parse_pattern(
        f'/hotels/hotel[rating="{FIVE_STARS}"]/name',
        name="hotels-rating-only",
    )


def hotels_point_query() -> TreePattern:
    """Fully extensionally answerable on most documents."""
    return parse_pattern(
        f'/hotels/hotel[name="{TARGET_HOTEL_NAME}"]/address',
        name="hotels-point",
    )


ALL_HOTELS_QUERIES = {
    "selective": hotels_selective_query,
    "broad": hotels_broad_query,
    "rating-only": hotels_rating_only_query,
    "point": hotels_point_query,
}
