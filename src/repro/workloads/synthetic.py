"""Seeded random AXML worlds for property-based testing and stress
benchmarks.

A :class:`SyntheticWorld` fixes a service catalogue whose results are a
*pure function* of (service name, parameter): the same world gives every
evaluation strategy byte-identical service behaviour, which is what lets
the property tests assert that naive and lazy evaluation agree on the
full result of arbitrary queries.

Termination is guaranteed by a depth-budget convention: every call
carries a numeric budget parameter, and services only embed further
calls while the budget is positive (AXML documents may otherwise be
infinite, Section 2 of the paper).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..axml.builder import C, E, V, build_document
from ..axml.document import Document
from ..axml.node import Node
from ..pattern.nodes import EdgeKind, PatternKind, PatternNode
from ..pattern.pattern import TreePattern
from ..services.catalog import first_value
from ..services.registry import ServiceBus, ServiceCall, ServiceRegistry
from ..services.resilience import InvocationPolicy
from ..services.service import Service

DEFAULT_ALPHABET = ("alpha", "beta", "gamma", "delta", "epsilon")


class SyntheticService(Service):
    """Deterministic pseudo-random service (function of its parameter)."""

    def __init__(
        self,
        name: str,
        world: "SyntheticWorld",
        latency_s: float = 0.02,
    ) -> None:
        super().__init__(name, latency_s=latency_s, supports_push=True)
        self._world = world

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        key = first_value(parameters) or "0"
        return self._world.result_forest(self.name, key)


class SyntheticWorld:
    """A reproducible universe of documents and services."""

    def __init__(
        self,
        seed: int,
        n_services: int = 4,
        alphabet: Sequence[str] = DEFAULT_ALPHABET,
        max_forest: int = 3,
        max_children: int = 3,
        call_probability: float = 0.35,
        value_probability: float = 0.4,
    ) -> None:
        self.seed = seed
        self.alphabet = tuple(alphabet)
        self.max_forest = max_forest
        self.max_children = max_children
        self.call_probability = call_probability
        self.value_probability = value_probability
        self.service_names = [f"svc{k}" for k in range(n_services)]

    # -- services -----------------------------------------------------------

    def registry(self) -> ServiceRegistry:
        return ServiceRegistry(
            SyntheticService(name, self) for name in self.service_names
        )

    def bus(self) -> ServiceBus:
        return ServiceBus(self.registry())

    def result_forest(self, service_name: str, key: str) -> list[Node]:
        """The (deterministic) result of one service invocation.

        ``key`` has the form ``"<budget>:<salt>"``; the budget controls
        how deep further nesting may go.
        """
        budget_text, _, salt = key.partition(":")
        try:
            budget = int(budget_text)
        except ValueError:
            budget = 0
        rng = random.Random(f"{self.seed}|svc|{service_name}|{key}")
        size = rng.randint(0, self.max_forest)
        return [
            self._random_tree(rng, depth=2, call_budget=budget, salt=salt)
            for _ in range(size)
        ]

    # -- documents ------------------------------------------------------------

    def make_document(
        self, doc_seed: int, depth: int = 3, call_budget: int = 2
    ) -> Document:
        rng = random.Random(f"{self.seed}|doc|{doc_seed}")
        root = E("root")
        for _ in range(rng.randint(1, self.max_children + 1)):
            root.append(
                self._random_tree(
                    rng, depth=depth, call_budget=call_budget, salt=str(doc_seed)
                )
            )
        return build_document(root, name=f"synthetic-{doc_seed}")

    def _random_tree(
        self, rng: random.Random, depth: int, call_budget: int, salt: str
    ) -> Node:
        if depth <= 0 or rng.random() < self.value_probability / max(depth, 1):
            return V(rng.choice(("1", "2", "3", rng.choice(self.alphabet))))
        if call_budget > 0 and rng.random() < self.call_probability:
            name = rng.choice(self.service_names)
            key = f"{call_budget - 1}:{salt}-{rng.randint(0, 9999)}"
            return C(name, V(key))
        node = E(rng.choice(self.alphabet))
        for _ in range(rng.randint(0, self.max_children)):
            node.append(
                self._random_tree(rng, depth - 1, call_budget, salt)
            )
        return node

    # -- queries ---------------------------------------------------------------

    def sample_query(
        self,
        document: Document,
        query_seed: int,
        descendant_probability: float = 0.3,
        predicate_probability: float = 0.5,
        variable_probability: float = 0.3,
    ) -> TreePattern:
        """A random query biased towards paths that exist in a fully
        materialised twin of the document (so results are often
        non-empty — empty-only testing proves little)."""
        rng = random.Random(f"{self.seed}|query|{query_seed}")
        twin = document.copy()
        self._materialize(twin)

        spine_nodes = self._random_path(twin, rng)
        root = PatternNode(PatternKind.ELEMENT, twin.root.label)
        cursor = root
        for doc_node in spine_nodes:
            edge = (
                EdgeKind.DESCENDANT
                if rng.random() < descendant_probability
                else EdgeKind.CHILD
            )
            if doc_node.is_value:
                nxt = PatternNode(PatternKind.VALUE, doc_node.label, edge=edge)
            else:
                nxt = PatternNode(PatternKind.ELEMENT, doc_node.label, edge=edge)
            cursor.add_child(nxt)
            if (
                rng.random() < predicate_probability
                and doc_node.parent is not None
            ):
                sibling = rng.choice(doc_node.parent.children)
                if sibling.is_element:
                    cursor.add_child(
                        PatternNode(PatternKind.ELEMENT, sibling.label)
                    )
            cursor = nxt
        if (
            cursor.kind is PatternKind.ELEMENT
            and rng.random() < variable_probability
        ):
            cursor.add_child(
                PatternNode(
                    PatternKind.VARIABLE, "X", edge=EdgeKind.CHILD, is_result=True
                )
            )
        else:
            cursor.is_result = True
        return TreePattern(root, name=f"synthetic-query-{query_seed}")

    def _random_path(
        self, twin: Document, rng: random.Random
    ) -> list[Node]:
        node = twin.root
        path: list[Node] = []
        while True:
            data_children = [c for c in node.children if c.is_data]
            if not data_children or (path and rng.random() < 0.3):
                return path
            node = rng.choice(data_children)
            path.append(node)
            if node.is_value:
                return path

    def _materialize(self, document: Document, max_calls: int = 500) -> None:
        bus = self.bus()
        invoked = 0
        while invoked < max_calls:
            calls = document.function_nodes()
            if not calls:
                return
            for call in calls:
                if not document.contains(call):
                    continue
                outcome = bus.invoke(
                    ServiceCall(service=call.label, parameters=call.children),
                    policy=InvocationPolicy.single_attempt(),
                )
                if outcome.fault is not None:
                    raise outcome.fault
                assert outcome.reply is not None
                document.replace_call(call, outcome.reply.forest)
                invoked += 1
                if invoked >= max_calls:
                    return


def make_world(seed: int, **kwargs) -> SyntheticWorld:
    """Convenience constructor mirroring the class signature."""
    return SyntheticWorld(seed, **kwargs)
