"""Declarative workload factory: seeded adversarial scenarios at scale.

The hand-built workloads (hotels, nightlife, chains) cover the paper's
narrative; this module covers everything else.  A :class:`WorkloadSpec`
describes a scenario declaratively — tree shape and fan-out, schema-free
recursion depth, service-call density and argument streams, query mix
(including BINDINGS pushing and multi-child-root standing queries),
fault plan, and seeded mutation/arrival traces — and
:class:`GeneratedWorkload` turns it into concrete documents, a service
registry, a query set, and naive-oracle expected answers, all as pure
functions of the seed.

Two generation modes share the machinery:

* ``sampled`` (default): random trees in the :mod:`synthetic` idiom,
  with queries biased towards paths that exist in a fully materialised
  twin;
* ``drill``: each root subtree is a *hub* holding a hot recursive call
  chain plus cold ``junk`` chains the fixed drill queries never touch —
  the regime where type-projection pruning must fire.

Termination under recursion keeps the budget-key convention: every call
parameter is ``"<budget>:<salt>"`` and services only embed further
calls while the budget is positive.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional, Sequence

from ..axml.arena import DocumentArena
from ..axml.builder import C, E, V, build_document
from ..axml.document import Document
from ..axml.node import Node
from ..lazy.config import EngineConfig, FaultPolicy, Strategy
from ..lazy.engine import LazyQueryEvaluator
from ..pattern.nodes import EdgeKind, PatternKind, PatternNode
from ..pattern.parse import parse_pattern
from ..pattern.pattern import TreePattern
from ..services.catalog import FailingService, FlakyService, first_value
from ..services.registry import ServiceBus, ServiceCall, ServiceRegistry
from ..services.resilience import InvocationPolicy, RetryPolicy
from ..services.service import PushMode, Service
from ..services.simulation import NetworkModel
from .synthetic import DEFAULT_ALPHABET

COLD_LABELS = ("junk", "noise")
FAULT_PLANS = ("none", "transient", "permanent")

# The fixed query set of ``drill`` mode: anchored below the root so the
# descendant steps are resolved by subtree walks (the label index only
# serves descendant steps from the document root), which is what routes
# the group pass through the projection screen.
DRILL_QUERY_TEXTS = (
    "/root/hub[//item/name=$N]",
    "/root/hub//item[name=$M]",
    "/root//item/name",
)


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A declarative, seeded scenario description.

    Every derived artefact — documents, service results, queries,
    mutation and arrival traces — is a pure function of this spec, so
    two processes holding equal specs agree byte-for-byte.
    """

    name: str
    seed: int = 0
    description: str = ""

    # -- tree shape ---------------------------------------------------------
    depth: int = 3
    fanout: tuple[int, int] = (0, 3)
    root_subtrees: tuple[int, int] = (2, 4)
    alphabet: tuple[str, ...] = DEFAULT_ALPHABET
    value_probability: float = 0.4
    min_nodes: int = 0
    """Keep appending root subtrees until the document holds at least
    this many nodes (0 = no floor)."""
    arena_build: bool = False
    """Attach a :class:`~repro.axml.arena.DocumentArena` to every
    generated document (as ``document.arena``) — the million-node
    regimes build the column mirror once at generation time so
    arena-mode evaluations skip the per-evaluation build pass."""

    # -- recursion (drill mode) ---------------------------------------------
    recursion_depth: int = 0
    """> 0 switches generation to ``drill`` mode: each root subtree is a
    hub with a hot recursive chain this deep."""
    cold_subtrees: int = 0
    """Cold ``junk`` chains per hub — data the drill queries never test,
    so projection may skip it wholesale."""
    nested_result_probability: float = 0.0
    """Chance a service result embeds a further call while budget > 0
    (the paper's dynamic nesting)."""

    # -- services -----------------------------------------------------------
    n_services: int = 4
    call_probability: float = 0.35
    call_budget: int = 2
    result_fanout: tuple[int, int] = (0, 3)
    latency_s: float = 0.02
    latency_jitter_s: float = 0.0
    argument_pool: int = 0
    """Size of the shared argument-key pool.  0 = an unbounded stream of
    distinct keys (every call a cache miss — the cache-adversarial
    regime); k > 0 = keys recur, so the call cache can pay off."""
    fault_plan: str = "none"
    """One of ``none`` / ``transient`` (each service fails once, healed
    by RETRY) / ``permanent`` (total outage under FREEZE) — the
    equivalence-preserving plans of the differential harness."""

    # -- queries ------------------------------------------------------------
    n_queries: int = 3
    descendant_probability: float = 0.3
    predicate_probability: float = 0.5
    variable_probability: float = 0.3
    multi_child_root: bool = False
    """Force every sampled query root to carry >= 2 children — the shape
    that defeats ``AnswerCache`` scoping."""
    push_bindings: bool = False
    """Evaluate under ``push_mode=BINDINGS`` by default (overlay rows,
    engine fallbacks)."""

    # -- evolution / serving -------------------------------------------------
    n_documents: int = 1
    n_mutations: int = 0
    n_tenants: int = 1
    n_rounds: int = 0
    arrival_rate: float = 1.0
    """Per-round probability that each document's update arrives."""
    burst_probability: float = 0.0
    """Per-round probability of a burst: every document updates at
    once."""

    @property
    def query_shape(self) -> str:
        return "drill" if self.recursion_depth > 0 else "sampled"

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_json(data: dict) -> "WorkloadSpec":
        fields = {f.name: f.type for f in dataclasses.fields(WorkloadSpec)}
        kwargs = {}
        for key, value in data.items():
            if key not in fields:
                raise ValueError(f"unknown WorkloadSpec field: {key!r}")
            if isinstance(value, list):
                value = tuple(value)
            kwargs[key] = value
        return WorkloadSpec(**kwargs)


class FactoryService(Service):
    """Deterministic pseudo-random service (a pure function of its
    parameter), with per-service latency jitter drawn from the seed."""

    def __init__(self, name: str, workload: "GeneratedWorkload") -> None:
        spec = workload.spec
        jitter_rng = random.Random(f"{spec.seed}|lat|{name}")
        latency = spec.latency_s + jitter_rng.uniform(0, spec.latency_jitter_s)
        super().__init__(name, latency_s=latency, supports_push=True)
        self._workload = workload

    def produce(self, parameters: Sequence[Node]) -> list[Node]:
        key = first_value(parameters) or "0"
        return self._workload.result_forest(self.name, key)


class GeneratedWorkload:
    """A concrete scenario generated from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.service_names = [f"svc{k}" for k in range(spec.n_services)]

    # -- services -----------------------------------------------------------

    def registry(self) -> ServiceRegistry:
        """A *fresh* registry per call — fault wrappers carry state, so
        every evaluation in a differential pair needs its own copy."""
        spec = self.spec
        base = ServiceRegistry(
            FactoryService(name, self) for name in self.service_names
        )
        if spec.fault_plan == "none":
            return base
        if spec.fault_plan == "transient":
            return ServiceRegistry(
                FailingService(name, base.resolve(name), failures=1)
                for name in base.names()
            )
        if spec.fault_plan == "permanent":
            return ServiceRegistry(
                FlakyService(base.resolve(name), fault_rate=1.0, seed=spec.seed + i)
                for i, name in enumerate(base.names())
            )
        raise ValueError(f"unknown fault plan: {spec.fault_plan!r}")

    def make_bus(self, network: Optional[NetworkModel] = None) -> ServiceBus:
        return ServiceBus(self.registry(), network=network)

    def result_forest(self, service_name: str, key: str) -> list[Node]:
        """Deterministic service result under the budget-key
        convention (``key = "<budget>:<salt>"``)."""
        spec = self.spec
        budget_text, _, salt = key.partition(":")
        try:
            budget = int(budget_text)
        except ValueError:
            budget = 0
        rng = random.Random(f"{spec.seed}|svc|{service_name}|{key}")
        if spec.query_shape == "drill":
            forest: list[Node] = [
                E("item", E("name", V(f"n{rng.randint(0, 9)}")))
                for _ in range(rng.randint(1, max(1, spec.result_fanout[1])))
            ]
            if budget > 0 and rng.random() < spec.nested_result_probability:
                forest.append(
                    C(service_name, V(self._call_key(rng, budget - 1, salt)))
                )
            return forest
        size = rng.randint(*spec.result_fanout)
        return [
            self._random_tree(rng, depth=2, call_budget=budget, salt=salt)
            for _ in range(size)
        ]

    def _call_key(self, rng: random.Random, budget: int, salt: str) -> str:
        spec = self.spec
        if spec.argument_pool > 0:
            return f"{budget}:k{rng.randint(0, spec.argument_pool - 1)}"
        return f"{budget}:{salt}-{rng.randint(0, 999_999)}"

    # -- documents ----------------------------------------------------------

    def make_document(self, index: int = 0) -> Document:
        """Document ``index`` of the scenario (structurally identical on
        every call — the twin-document idiom)."""
        spec = self.spec
        rng = random.Random(f"{spec.seed}|doc|{index}")
        root = E("root")
        total = 1
        count = rng.randint(*spec.root_subtrees)
        built = 0
        while built < count or (spec.min_nodes and total < spec.min_nodes):
            tree = self._root_subtree(rng, salt=f"{index}.{built}")
            root.append(tree)
            total += tree.subtree_size()
            built += 1
        document = build_document(root, name=f"{spec.name}-{index}")
        if spec.arena_build:
            document.arena = DocumentArena(document)
        return document

    def _root_subtree(self, rng: random.Random, salt: str) -> Node:
        spec = self.spec
        if spec.query_shape == "drill":
            return self._hub(rng, salt)
        return self._random_tree(
            rng, depth=spec.depth, call_budget=spec.call_budget, salt=salt
        )

    def _hub(self, rng: random.Random, salt: str) -> Node:
        """A ``hub`` with one hot recursive chain and ``cold_subtrees``
        junk chains (never tested by the drill queries)."""
        spec = self.spec
        children = [self._hot_chain(rng, salt, spec.recursion_depth)]
        children.extend(
            self._cold_chain(rng, spec.recursion_depth)
            for _ in range(spec.cold_subtrees)
        )
        return E("hub", *children)

    def _hot_chain(self, rng: random.Random, salt: str, depth: int) -> Node:
        """Iterative (draw-order identical to the old recursion), so
        deep regimes generate without hitting the recursion limit."""
        spec = self.spec

        def payload() -> Node:
            if rng.random() < spec.call_probability:
                return C(
                    rng.choice(self.service_names),
                    V(self._call_key(rng, spec.call_budget, salt)),
                )
            return E("item", E("name", V(f"n{rng.randint(0, 9)}")))

        top = E("rec", payload())
        node = top
        for _ in range(depth - 1):
            child = E("rec", payload())
            node.append(child)
            node = child
        return top

    def _cold_chain(self, rng: random.Random, depth: int) -> Node:
        inner: Node = V(f"z{rng.randint(0, 9)}")
        for _ in range(depth):
            inner = E(rng.choice(COLD_LABELS), inner)
        return inner

    def _random_tree(
        self, rng: random.Random, depth: int, call_budget: int, salt: str
    ) -> Node:
        spec = self.spec
        if depth <= 0 or rng.random() < spec.value_probability / max(depth, 1):
            return V(rng.choice(("1", "2", "3", rng.choice(spec.alphabet))))
        if call_budget > 0 and rng.random() < spec.call_probability:
            name = rng.choice(self.service_names)
            return C(name, V(self._call_key(rng, call_budget - 1, salt)))
        node = E(rng.choice(spec.alphabet))
        for _ in range(rng.randint(*spec.fanout)):
            node.append(self._random_tree(rng, depth - 1, call_budget, salt))
        return node

    # -- queries ------------------------------------------------------------

    def queries(self) -> list[TreePattern]:
        return [self.query_for(i) for i in range(self.spec.n_queries)]

    @property
    def query(self) -> TreePattern:
        return self.query_for(0)

    def document_for_query(self, index: int) -> int:
        """Which document query ``index`` is sampled against (and should
        be evaluated on, in multi-document regimes)."""
        return index % self.spec.n_documents

    def query_for(self, index: int) -> TreePattern:
        spec = self.spec
        if spec.query_shape == "drill":
            text = DRILL_QUERY_TEXTS[index % len(DRILL_QUERY_TEXTS)]
            return parse_pattern(text, name=f"{spec.name}-drill-{index}")
        return self._sample_query(index)

    def _sample_query(self, index: int) -> TreePattern:
        """A random query biased towards paths of a fully materialised
        twin (the :mod:`synthetic` idiom), with the spec's extra shapes:
        forced multi-child roots and variable results for pushing."""
        spec = self.spec
        rng = random.Random(f"{spec.seed}|query|{index}")
        twin = self.make_document(self.document_for_query(index)).copy()
        self._materialize(twin)

        root = PatternNode(PatternKind.ELEMENT, twin.root.label)
        cursor = root
        for doc_node in self._random_path(twin, rng):
            edge = (
                EdgeKind.DESCENDANT
                if rng.random() < spec.descendant_probability
                else EdgeKind.CHILD
            )
            kind = PatternKind.VALUE if doc_node.is_value else PatternKind.ELEMENT
            nxt = PatternNode(kind, doc_node.label, edge=edge)
            cursor.add_child(nxt)
            if (
                rng.random() < spec.predicate_probability
                and doc_node.parent is not None
            ):
                sibling = rng.choice(doc_node.parent.children)
                if sibling.is_element:
                    cursor.add_child(
                        PatternNode(PatternKind.ELEMENT, sibling.label)
                    )
            cursor = nxt
        if (
            cursor.kind is PatternKind.ELEMENT
            and rng.random() < spec.variable_probability
        ):
            cursor.add_child(
                PatternNode(
                    PatternKind.VARIABLE, "X", edge=EdgeKind.CHILD,
                    is_result=True,
                )
            )
        else:
            cursor.is_result = True
        if spec.multi_child_root:
            labels = [c.label for c in twin.root.children if c.is_element]
            while len(root.children) < 2:
                label = rng.choice(labels) if labels else spec.alphabet[0]
                root.add_child(
                    PatternNode(
                        PatternKind.ELEMENT, label, edge=EdgeKind.DESCENDANT
                    )
                )
        return TreePattern(root, name=f"{spec.name}-query-{index}")

    def _random_path(self, twin: Document, rng: random.Random) -> list[Node]:
        node = twin.root
        path: list[Node] = []
        while True:
            data_children = [c for c in node.children if c.is_data]
            if not data_children or (path and rng.random() < 0.3):
                return path
            node = rng.choice(data_children)
            path.append(node)
            if node.is_value:
                return path

    def _materialize(self, document: Document, max_calls: int = 2000) -> None:
        bus = ServiceBus(
            ServiceRegistry(
                FactoryService(name, self) for name in self.service_names
            )
        )
        invoked = 0
        while invoked < max_calls:
            calls = document.function_nodes()
            if not calls:
                return
            for call in calls:
                if not document.contains(call):
                    continue
                outcome = bus.invoke(
                    ServiceCall(service=call.label, parameters=call.children),
                    policy=InvocationPolicy.single_attempt(),
                )
                if outcome.fault is not None:
                    raise outcome.fault
                assert outcome.reply is not None
                document.replace_call(call, outcome.reply.forest)
                invoked += 1
                if invoked >= max_calls:
                    return

    # -- engine wiring -------------------------------------------------------

    def engine_config(self, **overrides) -> EngineConfig:
        """An :class:`EngineConfig` with the spec's fault policy and
        push mode applied, then ``overrides`` on top."""
        spec = self.spec
        base: dict = {}
        if spec.push_bindings:
            base["push_mode"] = PushMode.BINDINGS
        if spec.fault_plan == "transient":
            base["fault_policy"] = FaultPolicy.RETRY
            base["retry"] = RetryPolicy(max_attempts=3, base_backoff_s=0.01)
        elif spec.fault_plan == "permanent":
            base["fault_policy"] = FaultPolicy.FREEZE
        base.update(overrides)
        return EngineConfig(**base)

    def evaluate(
        self,
        query: Optional[TreePattern] = None,
        document_index: int = 0,
        network: Optional[NetworkModel] = None,
        **overrides,
    ):
        """One full evaluation on a fresh bus/registry/document.

        Returns ``(outcome, log)`` where ``log`` is the invocation
        sequence ``[(service, call node id, fault), ...]`` — comparable
        call site by call site because twin documents rebuild with
        identical node ids.
        """
        bus = self.make_bus(network)
        engine = LazyQueryEvaluator(bus, config=self.engine_config(**overrides))
        outcome = engine.evaluate(
            query if query is not None else self.query,
            self.make_document(document_index),
        )
        log = [
            (r.service_name, r.call_node_id, r.fault)
            for r in bus.log.records
        ]
        return outcome, log

    def oracle(self, query: Optional[TreePattern] = None, document_index: int = 0):
        """The naive-engine oracle outcome for ``query``."""
        outcome, _ = self.evaluate(
            query,
            document_index,
            strategy=Strategy.NAIVE,
            push_mode=PushMode.NONE,
        )
        return outcome

    def oracle_rows(
        self, query: Optional[TreePattern] = None, document_index: int = 0
    ) -> set:
        """Expected answers: the naive engine's value rows."""
        return set(self.oracle(query, document_index).value_rows())

    # -- evolution / serving -------------------------------------------------

    def apply_mutation(self, step: str, documents: Sequence[Document]) -> None:
        """One seeded random splice, replayed identically on every twin.

        ``step`` keys the draw (e.g. ``"3"`` or ``"round2|doc1"``), and
        the structural child-index path is resolved per twin, so the
        twins need not share node objects — only structure.
        """
        spec = self.spec
        rng = random.Random(f"{spec.seed}|mut|{step}")
        kind = rng.choice(("insert", "insert", "insert-call", "remove"))
        path = self._spot_path(rng, documents[0])
        if kind == "remove" and path:
            for document in documents:
                document.remove_subtree(self._node_at(document, path))
            return
        if kind == "insert-call":
            name = rng.choice(self.service_names)
            subtree: Node = C(
                name, V(self._call_key(rng, 1, f"mut-{step}"))
            )
        elif spec.query_shape == "drill":
            subtree = self._hot_chain(
                rng, f"mut-{step}", max(1, spec.recursion_depth // 2)
            )
        else:
            subtree = self._random_tree(
                rng, depth=2, call_budget=1, salt=f"mut-{step}"
            )
        for document in documents:
            document.insert_subtree(self._node_at(document, path), subtree.clone())

    def mutation_trace(self) -> list[str]:
        """The spec's default mutation step keys."""
        return [str(step) for step in range(self.spec.n_mutations)]

    @staticmethod
    def _spot_path(rng: random.Random, document: Document) -> list[int]:
        node, path = document.root, []
        while True:
            elements = [
                (i, c) for i, c in enumerate(node.children) if c.is_element
            ]
            if not elements or rng.random() < 0.5:
                return path
            index, node = rng.choice(elements)
            path.append(index)

    @staticmethod
    def _node_at(document: Document, path: list[int]) -> Node:
        node = document.root
        for index in path:
            node = node.children[index]
        return node

    def tenant_for(self, index: int) -> str:
        return f"tenant{index % max(1, self.spec.n_tenants)}"

    def arrival_trace(self) -> list[tuple[int, ...]]:
        """Per-round document arrivals: round ``r`` updates exactly the
        documents listed in entry ``r`` (possibly none — jitter — or all
        of them — a burst)."""
        spec = self.spec
        rng = random.Random(f"{spec.seed}|arrivals")
        trace: list[tuple[int, ...]] = []
        for _ in range(spec.n_rounds):
            if rng.random() < spec.burst_probability:
                trace.append(tuple(range(spec.n_documents)))
                continue
            trace.append(
                tuple(
                    i
                    for i in range(spec.n_documents)
                    if rng.random() < spec.arrival_rate
                )
            )
        return trace

    # -- interop -------------------------------------------------------------

    def as_workload(self, query_index: int = 0):
        """A :class:`~repro.workloads.primitives.Workload` view (for the
        bench harness's ``evaluate_workload``).  Fault-plan wrappers are
        stateful, so views of faulty regimes should not share buses
        across evaluations."""
        from .primitives import Workload

        return Workload(
            name=f"{self.spec.name}(seed={self.spec.seed})",
            schema=None,
            registry=self.registry(),
            query=self.query_for(query_index),
            _document_factory=lambda: self.make_document(
                self.document_for_query(query_index)
            ),
        )

    def describe(self) -> dict:
        """Cheap structural stats for the CLI and bench tables."""
        document = self.make_document(0)
        calls = document.function_nodes()
        per_service: dict[str, int] = {}
        for call in calls:
            per_service[call.label] = per_service.get(call.label, 0) + 1
        return {
            "name": self.spec.name,
            "seed": self.spec.seed,
            "query_shape": self.spec.query_shape,
            "nodes": document.root.subtree_size(),
            "calls": len(calls),
            "calls_per_service": per_service,
            "documents": self.spec.n_documents,
            "queries": self.spec.n_queries,
            "fault_plan": self.spec.fault_plan,
        }


def generate(spec: WorkloadSpec) -> GeneratedWorkload:
    """Convenience constructor mirroring the class."""
    return GeneratedWorkload(spec)


# ---------------------------------------------------------------------------
# Named hostile regimes.  Each one targets a code path the hand-built
# workloads never stress; the E15 bench runs the naive-vs-configured
# differential over every one of them.
# ---------------------------------------------------------------------------

REGIMES: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            name="baseline",
            seed=1501,
            min_nodes=400,
            description=(
                "mixed extensional/intensional trees over a small shared "
                "argument pool (the cache-friendly control)"
            ),
            argument_pool=6,
            n_queries=3,
            n_mutations=4,
        ),
        WorkloadSpec(
            name="deep-recursion",
            seed=1502,
            description=(
                "hot recursive call chains next to cold junk chains; "
                "the projection screen must prune the cold subtrees"
            ),
            n_services=1,
            call_probability=1.0,
            recursion_depth=8,
            cold_subtrees=3,
            root_subtrees=(10, 10),
            nested_result_probability=0.5,
            call_budget=2,
            n_queries=3,
        ),
        WorkloadSpec(
            name="wide-flat",
            seed=1503,
            min_nodes=500,
            description=(
                "huge fan-out at depth 2: candidate floods for the "
                "matcher and the label index"
            ),
            depth=2,
            fanout=(6, 10),
            root_subtrees=(8, 12),
            value_probability=0.25,
            n_queries=3,
        ),
        WorkloadSpec(
            name="bindings-push",
            seed=1504,
            min_nodes=300,
            description=(
                "variable-result queries shipped as BINDINGS subqueries; "
                "overlay rows and the engine's fallback paths engage"
            ),
            push_bindings=True,
            variable_probability=1.0,
            call_probability=0.5,
            n_queries=4,
        ),
        WorkloadSpec(
            name="cache-flood",
            seed=1505,
            min_nodes=600,
            description=(
                "an unbounded distinct-key argument stream: every call a "
                "cache miss, the CallCache pays rent for nothing"
            ),
            argument_pool=0,
            call_probability=0.6,
            root_subtrees=(4, 6),
            n_queries=2,
        ),
        WorkloadSpec(
            name="multi-root-standing",
            seed=1506,
            min_nodes=300,
            description=(
                "standing queries whose roots carry several children — "
                "the shape that defeats AnswerCache scoping"
            ),
            multi_child_root=True,
            n_mutations=6,
            n_queries=3,
        ),
        WorkloadSpec(
            name="bursty-tenants",
            seed=1507,
            min_nodes=150,
            description=(
                "multi-tenant serving under a jittered, bursty arrival "
                "trace: most rounds only some documents move"
            ),
            n_documents=4,
            n_tenants=3,
            n_rounds=8,
            arrival_rate=0.4,
            burst_probability=0.2,
            n_queries=6,
            n_mutations=8,
        ),
        WorkloadSpec(
            name="large-document",
            seed=1508,
            description=">=1M-node documents on the arena builder path: "
            "the scale regime (child-edge queries — descendant steps "
            "at this size are the E16 bench's own, served by the "
            "column scans)",
            min_nodes=1_000_000,
            depth=5,
            fanout=(2, 5),
            call_probability=0.15,
            argument_pool=32,
            n_queries=2,
            descendant_probability=0.0,
            arena_build=True,
        ),
        WorkloadSpec(
            name="large-document-100k",
            seed=1508,
            description=">=100k-node documents on the plain object-graph "
            "path: the compatibility scale regime (the pre-arena "
            "large-document spec, kept as the object-walk twin)",
            min_nodes=100_000,
            depth=5,
            fanout=(2, 5),
            call_probability=0.15,
            argument_pool=32,
            n_queries=2,
            descendant_probability=0.0,
        ),
        WorkloadSpec(
            name="flaky-retry",
            seed=1509,
            min_nodes=250,
            description=(
                "every service fails exactly once; RETRY heals all "
                "strategies to the fault-free answer"
            ),
            fault_plan="transient",
            n_queries=3,
        ),
        WorkloadSpec(
            name="outage-freeze",
            seed=1510,
            min_nodes=250,
            description=(
                "a total service outage under FREEZE: every strategy "
                "freezes the same calls and answers from the "
                "extensional part"
            ),
            fault_plan="permanent",
            n_queries=3,
        ),
    )
}


def regime(name: str, **overrides) -> GeneratedWorkload:
    """Instantiate a named regime, optionally overriding spec fields
    (e.g. ``seed=...`` for fresh randomness, ``min_nodes=...`` for
    smoke-sized runs)."""
    spec = REGIMES[name]
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    return GeneratedWorkload(spec)


def fuzz_spec(name: str, seed: int) -> WorkloadSpec:
    """A property-test-sized variant of a named regime: same hostile
    shape, bounded document size, fresh seed."""
    spec = REGIMES[name]
    return dataclasses.replace(
        spec,
        seed=seed,
        min_nodes=0,
        depth=min(spec.depth, 3),
        fanout=(min(spec.fanout[0], 2), min(spec.fanout[1], 4)),
        root_subtrees=(1, 3),
        recursion_depth=min(spec.recursion_depth, 4),
        cold_subtrees=min(spec.cold_subtrees, 1),
        n_documents=min(spec.n_documents, 3),
        n_rounds=min(spec.n_rounds, 4),
        n_queries=min(spec.n_queries, 3),
        n_mutations=min(spec.n_mutations, 3),
    )
