"""The paper's running example (Figures 1-4) at parametric scale.

A ``hotels`` document lists hotels; each hotel carries a name, an
address, a rating that is either extensional or a ``getRating`` call,
and a ``nearby`` section mixing extensional restaurants/museums with
``getNearbyRestos`` / ``getNearbyMuseums`` calls.  The document tail has
a ``getHotels`` call whose result brings *more* hotels — themselves
containing further calls, reproducing the paper's dynamic-nesting
behaviour (Figure 3's nested ``getRating``).

All randomness is seeded, and the mock services are *functions of their
parameters* (address-keyed tables), so every evaluation strategy sees
exactly the same world — which is what makes the cross-strategy
equivalence tests meaningful.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from ..axml.builder import C, E, V, build_document
from ..axml.document import Document
from ..axml.node import Node
from ..pattern.parse import parse_pattern
from ..pattern.pattern import TreePattern
from ..schema.schema import Schema, parse_schema
from ..services.catalog import StaticService, TableService, make_signature
from ..services.registry import ServiceRegistry
from .primitives import (
    Workload,
    cloning_document_factory,
    keyed_service,
    registry_of,
    static_service,
)

__all__ = [
    "HOTELS_SCHEMA_TEXT",
    "HotelsWorkloadParams",
    "PAPER_QUERY_TEXT",
    "Workload",
    "build_hotels_workload",
    "figure_1_document",
    "figure_1_registry",
    "figure_1_schema",
    "paper_query",
]

HOTELS_SCHEMA_TEXT = """
functions:
  getHotels        = [in: data, out: hotel*]
  getRating        = [in: data, out: data]
  getNearbyRestos  = [in: data, out: restaurant*]
  getNearbyMuseums = [in: data, out: museum*]
elements:
  hotels     = hotel*.getHotels*
  hotel      = name.address.rating.nearby
  nearby     = restaurant*.getNearbyRestos*.museum*.getNearbyMuseums*
  restaurant = name.address.rating
  museum     = name.address
  name       = data
  address    = data
  rating     = (data | getRating)
"""

TARGET_HOTEL_NAME = "Best Western"
FIVE_STARS = "5"

PAPER_QUERY_TEXT = (
    f'/hotels/hotel[name="{TARGET_HOTEL_NAME}"][rating="{FIVE_STARS}"]'
    '/nearby//restaurant[name=$X][address=$Y]'
    f'[rating="{FIVE_STARS}"]'
)


@dataclasses.dataclass
class HotelsWorkloadParams:
    """Knobs of the generator (defaults shaped like the paper's story)."""

    n_hotels: int = 20
    extra_hotels_via_service: int = 5
    target_name_fraction: float = 0.3
    target_hotel_count: Optional[int] = None
    """When set, exactly this many (evenly spread) extensional hotels
    carry the target name, regardless of ``n_hotels`` — the
    constant-selectivity regime where lazy evaluation's advantage grows
    with document size (experiment E1)."""
    five_star_fraction: float = 0.5
    hotel_five_star_fraction: Optional[float] = None
    """Five-star probability for *hotel* ratings; defaults to
    ``five_star_fraction`` (which then also governs restaurants)."""
    intensional_rating_fraction: float = 0.5
    intensional_restos_fraction: float = 0.6
    restaurants_per_hotel: int = 3
    nested_rating_fraction: float = 0.3
    """Fraction of service-returned restaurants whose rating is itself a
    ``getRating`` call (the Figure 3 nesting)."""
    museums_per_hotel: int = 2
    service_latency_s: float = 0.05
    seed: int = 2004


def build_hotels_workload(
    params: Optional[HotelsWorkloadParams] = None,
) -> Workload:
    """Build the hotels scenario: seeded documents + keyed mock services."""
    params = params or HotelsWorkloadParams()
    rng = random.Random(params.seed)
    schema = parse_schema(HOTELS_SCHEMA_TEXT)

    rating_table: dict[str, list[Node]] = {}
    restos_table: dict[str, list[Node]] = {}
    museums_table: dict[str, list[Node]] = {}

    def address_of(index: int) -> str:
        return f"{index} Madison Av."

    def make_rating(index: int, address: str) -> Node:
        hotel_fraction = (
            params.hotel_five_star_fraction
            if params.hotel_five_star_fraction is not None
            else params.five_star_fraction
        )
        five = rng.random() < hotel_fraction
        value = FIVE_STARS if five else str(rng.randint(1, 4))
        if rng.random() < params.intensional_rating_fraction:
            rating_table[address] = [V(value)]
            return E("rating", C("getRating", V(address)))
        return E("rating", V(value))

    def make_restaurant(index: int, address: str, allow_nested: bool) -> Node:
        five = rng.random() < params.five_star_fraction
        value = FIVE_STARS if five else str(rng.randint(1, 4))
        resto_address = f"{address} #{index}"
        if allow_nested and rng.random() < params.nested_rating_fraction:
            rating_table[resto_address] = [V(value)]
            rating: Node = E("rating", C("getRating", V(resto_address)))
        else:
            rating = E("rating", V(value))
        return E(
            "restaurant",
            E("name", V(f"Resto {index} of {address}")),
            E("address", V(resto_address)),
            rating,
        )

    def make_nearby(index: int, address: str) -> Node:
        children: list[Node] = []
        intensional = rng.random() < params.intensional_restos_fraction
        if intensional:
            restos_table[address] = [
                make_restaurant(j, address, allow_nested=True)
                for j in range(params.restaurants_per_hotel)
            ]
            children.append(C("getNearbyRestos", V(address)))
        else:
            children.extend(
                make_restaurant(j, address, allow_nested=False)
                for j in range(params.restaurants_per_hotel)
            )
        museums_table[address] = [
            E(
                "museum",
                E("name", V(f"Museum {j} of {address}")),
                E("address", V(address)),
            )
            for j in range(params.museums_per_hotel)
        ]
        children.append(C("getNearbyMuseums", V(address)))
        return E("nearby", *children)

    def is_target_hotel(index: int) -> bool:
        if params.target_hotel_count is None:
            return rng.random() < params.target_name_fraction
        if index >= params.n_hotels:
            return False  # service-delivered hotels stay non-targets
        count = min(params.target_hotel_count, params.n_hotels)
        if count == 0:
            return False
        stride = max(1, params.n_hotels // count)
        return index % stride == 0 and index // stride < count

    def make_hotel(index: int) -> Node:
        address = address_of(index)
        is_target = is_target_hotel(index)
        name = TARGET_HOTEL_NAME if is_target else f"Hotel {index}"
        return E(
            "hotel",
            E("name", V(name)),
            E("address", V(address)),
            make_rating(index, address),
            make_nearby(index, address),
        )

    extensional_hotels = [make_hotel(i) for i in range(params.n_hotels)]
    service_hotels = [
        make_hotel(params.n_hotels + i)
        for i in range(params.extra_hotels_via_service)
    ]

    latency = params.service_latency_s
    registry = registry_of(
        [
            keyed_service(
                "getRating", rating_table, "data",
                default=[V("0")], latency_s=latency,
            ),
            keyed_service(
                "getNearbyRestos", restos_table, "restaurant*",
                latency_s=latency,
            ),
            keyed_service(
                "getNearbyMuseums", museums_table, "museum*",
                latency_s=latency,
            ),
            static_service(
                "getHotels", service_hotels, "hotel*", latency_s=latency,
            ),
        ]
    )

    return Workload(
        name=f"hotels(n={params.n_hotels})",
        schema=schema,
        registry=registry,
        query=parse_pattern(PAPER_QUERY_TEXT, name="paper-query"),
        _document_factory=cloning_document_factory(
            "hotels", "hotels", [*extensional_hotels, C("getHotels", V("NY"))]
        ),
    )


def figure_1_document() -> Document:
    """The exact document of the paper's Figure 1 (call numbering in
    document order differs from the figure's but covers the same cases)."""
    return build_document(
        E(
            "hotels",
            E(
                "hotel",
                E("name", V("Best Western")),
                E("address", V("75, 2nd Av.")),
                E("rating", V("5")),
                E(
                    "nearby",
                    C("getNearbyRestos", V("75, 2nd Av.")),
                    C("getNearbyMuseums", V("75, 2nd Av.")),
                ),
            ),
            E(
                "hotel",
                E("name", V("Best Western Madison")),
                E("address", V("22 Madison Av.")),
                E("rating", C("getRating", V("22 Madison Av."))),
                E(
                    "nearby",
                    C("getNearbyRestos", V("22 Madison Av.")),
                    C("getNearbyMuseums", V("22 Madison Av.")),
                ),
            ),
            E(
                "hotel",
                E("name", V("Pennsylvania")),
                E("address", V("13 Penn St.")),
                E("rating", C("getRating", V("13 Penn St."))),
                E(
                    "nearby",
                    C("getNearbyRestos", V("13 Penn St.")),
                ),
            ),
            E(
                "hotel",
                E("name", V("Best Western 34th St.")),
                E("address", V("12 34th St. W")),
                E("rating", C("getRating", V("12 34th St. W"))),
                E(
                    "nearby",
                    C("getNearbyMuseums", V("12 34th St. W")),
                ),
            ),
            C("getHotels", V("NY")),
        ),
        name="figure-1",
    )


def figure_1_registry() -> ServiceRegistry:
    """Services matching the Figure 1/3 narrative.

    * ``getNearbyRestos("75, 2nd Av.")`` returns the Figure 3 result:
      two restaurants, one five-star, one with a nested ``getRating``;
    * the Madison hotel's ``getRating`` returns a low rating (the
      Section 4 example of relevance being lost);
    * other services return plausible small results.
    """
    restos_2nd_av = [
        E(
            "restaurant",
            E("name", V("Jo Mama")),
            E("address", V("75, 2nd Av.")),
            E("rating", V("5")),
        ),
        E(
            "restaurant",
            E("name", V("In Delis")),
            E("address", V("2nd Ave.")),
            E("rating", C("getRating", V("In Delis"))),
        ),
    ]
    return ServiceRegistry(
        [
            TableService(
                "getNearbyRestos",
                {
                    "75, 2nd Av.": restos_2nd_av,
                    "22 Madison Av.": [
                        E(
                            "restaurant",
                            E("name", V("Madison Grill")),
                            E("address", V("23 Madison Av.")),
                            E("rating", V("4")),
                        )
                    ],
                    "13 Penn St.": [],
                },
                signature=make_signature("getNearbyRestos", "data", "restaurant*"),
            ),
            TableService(
                "getNearbyMuseums",
                {},
                default=[
                    E(
                        "museum",
                        E("name", V("City Museum")),
                        E("address", V("Downtown")),
                    )
                ],
                signature=make_signature("getNearbyMuseums", "data", "museum*"),
            ),
            TableService(
                "getRating",
                {
                    "22 Madison Av.": [V("2")],
                    "13 Penn St.": [V("5")],
                    "12 34th St. W": [V("5")],
                    "In Delis": [V("5")],
                },
                default=[V("3")],
                signature=make_signature("getRating", "data", "data"),
            ),
            StaticService(
                "getHotels",
                [
                    E(
                        "hotel",
                        E("name", V("Best Western")),
                        E("address", V("1 Liberty Pl.")),
                        E("rating", V("5")),
                        E(
                            "nearby",
                            E(
                                "restaurant",
                                E("name", V("Liberty Diner")),
                                E("address", V("2 Liberty Pl.")),
                                E("rating", V("5")),
                            ),
                        ),
                    )
                ],
                signature=make_signature("getHotels", "data", "hotel*"),
            ),
        ]
    )


def paper_query() -> TreePattern:
    """The Figure 4 query."""
    return parse_pattern(PAPER_QUERY_TEXT, name="paper-query")


def figure_1_schema() -> Schema:
    return parse_schema(HOTELS_SCHEMA_TEXT)
