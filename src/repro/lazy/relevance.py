"""Relevance queries: LPQs and NFQs (Sections 3 and 5).

Given a query ``q`` and the current state of a document, which embedded
calls are *relevant* (Definition 3)?  The paper derives families of
extended queries that retrieve them:

* **Linear path queries** (LPQ, Section 3.1): for every non-root node
  ``v`` of ``q``, the linear path from the root to ``v`` with ``v``
  replaced by a star function node.  Sound but loose — they ignore the
  filtering conditions of ``q``.

* **Node-focused queries** (NFQ, Section 3.2, Figure 5): the whole of
  ``q`` with every node OR-ed with a function node, the subtree of ``v``
  erased and its function sibling marked as output.  On the "functions
  may return anything" assumption these retrieve *exactly* the relevant
  calls (Proposition 1).

* **Refined NFQs** (Section 5): with schema information, each function
  alternative lists only the services whose derived output type
  *satisfies* the query subtree they stand in for; functions that cannot
  satisfy ``sub_q_v`` are pruned outright.

The same builder also produces the **relaxed NFQs** of Section 6.1 (the
"XPath approximation" that drops value joins).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Optional, Sequence

from ..pattern.containment import subsumes
from ..pattern.nodes import (
    EdgeKind,
    PatternKind,
    PatternNode,
    pfunc,
    por,
    pstar,
)
from ..pattern.pattern import LinearStep, TreePattern
from ..schema.satisfiability import AlwaysSatisfiable, SatisfiabilityOracle


class RelevanceKind(enum.Enum):
    LPQ = "lpq"
    NFQ = "nfq"


@dataclasses.dataclass
class RelevanceQuery:
    """One relevance query with its provenance.

    Attributes:
        kind: LPQ or NFQ.
        target_uid: uid of the node ``v`` of the *original* query the
            query was derived for.
        target: that node.
        pattern: the extended query; its single result node is ``output``.
        output: the function pattern node retrieving the calls.
        linear_steps: ``q_v^lin`` — the linear path from the root to
            ``v`` not included (Section 4.2), used by the influence
            analysis and by F-guide lookups.
        descendant_tail: True when ``v`` hangs by a descendant edge, so
            the retrieved calls may sit at *any* depth below the linear
            path — the position language is ``L(q_v^lin)·Σ*`` rather
            than ``L(q_v^lin)``.
    """

    kind: RelevanceKind
    target_uid: int
    target: PatternNode
    pattern: TreePattern
    output: PatternNode
    linear_steps: tuple[LinearStep, ...]
    descendant_tail: bool = False
    extra_target_uids: tuple[int, ...] = ()
    """Targets of queries this one absorbed during de-duplication."""

    @property
    def name(self) -> str:
        return self.pattern.name

    @property
    def all_target_uids(self) -> frozenset[int]:
        return frozenset((self.target_uid, *self.extra_target_uids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelevanceQuery({self.kind.value}, {self.pattern.to_string()})"


# ---------------------------------------------------------------------------
# LPQs — Section 3.1
# ---------------------------------------------------------------------------


def linear_path_queries(
    query: TreePattern, dedupe: bool = True
) -> list[RelevanceQuery]:
    """All LPQs of a query (one per non-root node).

    Each LPQ keeps only the labels of the root-to-parent path and ends in
    a star function node at ``v``'s position, e.g.
    ``/hotels/hotel/nearby//()`` for the ``restaurant`` node of Figure 4.

    With ``dedupe`` (the default) LPQs subsumed by another one are
    absorbed — e.g. every query under ``nearby//()`` — which leaves the
    union of retrieved calls unchanged; ``dedupe=False`` yields the
    paper's full Section 3.1 family verbatim.
    """
    queries: list[RelevanceQuery] = []
    for target in query.nodes():
        if target.parent is None:
            continue  # the document root is a data node, never a call
        spine = query.spine_nodes(target)
        root_copy = _linear_copy(spine[0])
        node = root_copy
        for step_node in spine[1:-1]:
            child = _linear_copy(step_node)
            child.edge = step_node.edge
            node.add_child(child)
            node = child
        output = pfunc(None, edge=target.edge, result=True)
        node.add_child(output)
        pattern = TreePattern(
            root_copy, name=f"lpq@{target.uid}:{query.name}"
        )
        steps = tuple(query.linear_steps_to(target, include_node=False))
        queries.append(
            RelevanceQuery(
                kind=RelevanceKind.LPQ,
                target_uid=target.uid,
                target=target,
                pattern=pattern,
                output=output,
                linear_steps=steps,
                descendant_tail=target.edge is EdgeKind.DESCENDANT,
            )
        )
    return _dedupe(queries) if dedupe else queries


def _linear_copy(node: PatternNode) -> PatternNode:
    """A childless copy of a spine node (constants kept, rest starred)."""
    if node.kind in (PatternKind.ELEMENT, PatternKind.VALUE):
        copy = PatternNode(node.kind, node.label)
    else:
        copy = pstar()
    copy.origin = node.origin if node.origin is not None else node.uid
    return copy


# ---------------------------------------------------------------------------
# NFQs — Sections 3.2 and 5
# ---------------------------------------------------------------------------


class NFQBuilder:
    """Builds (refined) NFQs for a query.

    Args:
        query: the user query ``q``.
        oracle: the satisfiability backend used to refine the function
            alternatives (Section 5); the default
            :class:`AlwaysSatisfiable` yields the plain Section 3 NFQs
            with star-labelled ``()`` nodes.
        function_names: the universe of service names used for
            refinement.  ``None`` (with the default oracle) keeps star
            function nodes; with a real oracle the list is mandatory and
            can be extended later via :meth:`add_function_names` as
            invocation results bring new services into the document.
        drop_value_joins: build the relaxed (Section 6.1) variant where
            variables are replaced by stars.
    """

    def __init__(
        self,
        query: TreePattern,
        oracle: Optional[SatisfiabilityOracle] = None,
        function_names: Optional[Iterable[str]] = None,
        drop_value_joins: bool = False,
    ) -> None:
        self.query = query
        self.oracle = oracle or AlwaysSatisfiable()
        self._refine = oracle is not None
        if self._refine and function_names is None:
            raise ValueError("refined NFQs need the universe of service names")
        self.function_names: list[str] = sorted(set(function_names or ()))
        self.drop_value_joins = drop_value_joins
        self._satisfies_cache: dict[tuple[str, int], bool] = {}
        self._subtrees: dict[int, TreePattern] = {}

    # -- refinement bookkeeping ------------------------------------------------

    def add_function_names(self, names: Iterable[str]) -> bool:
        """Extend the service universe; True if anything new appeared."""
        fresh = sorted(set(names) - set(self.function_names))
        if not fresh:
            return False
        self.function_names.extend(fresh)
        self.function_names.sort()
        return True

    def subtree_of(self, node: PatternNode) -> TreePattern:
        """``sub_q_v`` for a node of the original query (cached)."""
        cached = self._subtrees.get(node.uid)
        if cached is None:
            cached = self.query.subtree_at(node)
            self._subtrees[node.uid] = cached
        return cached

    def satisfying_functions(self, node: PatternNode) -> Optional[frozenset[str]]:
        """Service names whose output can satisfy ``sub_q_v`` at ``node``.

        Returns ``None`` for "any function" (unrefined mode).
        """
        if not self._refine:
            return None
        subtree = self.subtree_of(node)
        names = []
        for fname in self.function_names:
            key = (fname, node.uid)
            verdict = self._satisfies_cache.get(key)
            if verdict is None:
                verdict = self.oracle.function_satisfies(
                    fname, subtree, anchor_edge=node.edge
                )
                self._satisfies_cache[key] = verdict
            if verdict:
                names.append(fname)
        return frozenset(names)

    # -- construction (the Figure 5 algorithm) -------------------------------------

    def build_all(
        self,
        excluded_targets: Optional[set[int]] = None,
        dedupe: bool = True,
    ) -> list[RelevanceQuery]:
        """NFQs for every non-root node of the query.

        ``excluded_targets`` removes the function alternatives of nodes
        whose layers are already fully processed (the layer
        simplification of Section 4.3) *and* skips building NFQs for
        those targets.
        """
        excluded = excluded_targets or set()
        queries = []
        for target in self.query.nodes():
            if target.parent is None or target.uid in excluded:
                continue
            nfq = self.build_for(target, excluded_targets=excluded)
            if nfq is not None:
                queries.append(nfq)
        if dedupe:
            queries = _dedupe(queries)
        return queries

    def build_for(
        self,
        target: PatternNode,
        excluded_targets: Optional[set[int]] = None,
    ) -> Optional[RelevanceQuery]:
        """The NFQ ``q_v`` for one node ``v`` (Figure 5), or ``None``
        when refinement proves no function can contribute at ``v``."""
        if target.parent is None:
            raise ValueError("the query root has no NFQ (it is never a call)")
        excluded = excluded_targets or set()
        output_names = self.satisfying_functions(target)
        if output_names is not None and not output_names:
            return None  # no service can produce sub_q_v: prune (Section 5)

        spine = self.query.spine_nodes(target)
        spine_uids = {node.uid for node in spine}
        root_copy = self._plain_copy(spine[0])
        cursor = root_copy
        output: Optional[PatternNode] = None
        for depth, spine_node in enumerate(spine[1:], start=1):
            parent_original = spine[depth - 1]
            # Conditions: every non-spine child of the current spine node.
            for child in parent_original.children:
                if child.uid in spine_uids:
                    continue
                wrapped = self._or_wrap(child, excluded)
                if wrapped is not None:
                    cursor.add_child(wrapped)
            if spine_node is target:
                output = pfunc(
                    sorted(output_names) if output_names is not None else None,
                    edge=target.edge,
                    result=True,
                )
                cursor.add_child(output)
            else:
                nxt = self._plain_copy(spine_node)
                nxt.edge = spine_node.edge
                cursor.add_child(nxt)
                cursor = nxt
        assert output is not None
        pattern = TreePattern(root_copy, name=f"nfq@{target.uid}:{self.query.name}")
        steps = tuple(self.query.linear_steps_to(target, include_node=False))
        return RelevanceQuery(
            kind=RelevanceKind.NFQ,
            target_uid=target.uid,
            target=target,
            pattern=pattern,
            output=output,
            linear_steps=steps,
            descendant_tail=target.edge is EdgeKind.DESCENDANT,
        )

    # -- helpers ----------------------------------------------------------------------

    def _plain_copy(self, node: PatternNode) -> PatternNode:
        """A childless copy of a node (spine nodes keep their test)."""
        kind, label = node.kind, node.label
        if self.drop_value_joins and kind is PatternKind.VARIABLE:
            kind, label = PatternKind.STAR, "*"
        copy = PatternNode(kind, label)
        copy.origin = node.origin if node.origin is not None else node.uid
        return copy

    def _or_wrap(
        self, node: PatternNode, excluded: set[int]
    ) -> Optional[PatternNode]:
        """``u OR f_u`` for a condition node and (recursively) its subtree.

        Returns the OR node, a plain copy when no function alternative
        remains, or ``None`` when the condition can *never* be satisfied
        (impossible here: the data branch always remains).
        """
        data_branch = self._plain_copy(node)
        data_branch.edge = node.edge
        for child in node.children:
            wrapped = self._or_wrap(child, excluded)
            if wrapped is not None:
                data_branch.add_child(wrapped)

        if node.uid in excluded:
            return data_branch  # the layer owning this position is done

        names = self.satisfying_functions(node)
        if names is not None and not names:
            return data_branch  # refinement: no service can produce this

        function_branch = pfunc(sorted(names) if names is not None else None)
        return por(data_branch, function_branch, edge=node.edge)


def build_nfqs(
    query: TreePattern,
    oracle: Optional[SatisfiabilityOracle] = None,
    function_names: Optional[Iterable[str]] = None,
    drop_value_joins: bool = False,
) -> list[RelevanceQuery]:
    """One-shot convenience around :class:`NFQBuilder`."""
    builder = NFQBuilder(
        query,
        oracle=oracle,
        function_names=function_names,
        drop_value_joins=drop_value_joins,
    )
    return builder.build_all()


# ---------------------------------------------------------------------------
# De-duplication (the containment-based multi-query optimisation, §4.1)
# ---------------------------------------------------------------------------


def _dedupe(queries: Sequence[RelevanceQuery]) -> list[RelevanceQuery]:
    """Drop relevance queries subsumed by another one in the family.

    Two NFQs for different targets can collapse (e.g. siblings with
    identical shapes); keeping one does not change the union of retrieved
    calls.  The absorbing query remembers the absorbed targets so that
    downstream consumers (query pushing) know a retrieved call may serve
    several query nodes.
    """
    kept: list[RelevanceQuery] = []
    for query in queries:
        absorbed = False
        for other in kept:
            if subsumes(other.pattern, query.pattern):
                other.extra_target_uids += (
                    query.target_uid,
                    *query.extra_target_uids,
                )
                absorbed = True
                break
        if absorbed:
            continue
        survivors: list[RelevanceQuery] = []
        for other in kept:
            if subsumes(query.pattern, other.pattern):
                query.extra_target_uids += (
                    other.target_uid,
                    *other.extra_target_uids,
                )
            else:
                survivors.append(other)
        survivors.append(query)
        kept = survivors
    return kept
