"""Incremental relevance analysis: label footprints + memoized queries.

Every NFQA round re-evaluates the layer's relevance queries over the
whole document, yet a round changes the document by exactly one splice
(or one batch of splices): the invoked call leaves, its result forest
enters.  Most relevance queries cannot possibly be affected — none of
the nodes that moved carry a label the query ever tests.  This module
makes that observation operational:

* :class:`LabelFootprint` — the set of node tests a pattern can apply,
  precomputed per relevance query: concrete element/value labels,
  service names, and wildcard tests, each optionally narrowed by the
  label of the parent the test hangs under (child edges only — a
  descendant edge can land anywhere).

* :class:`RelevanceCache` — a :class:`~repro.axml.document.Document`
  observer memoizing each query's retrieved-call set.  A splice whose
  delta is disjoint from a query's footprint provably leaves its result
  unchanged (see below), so ``_collect_relevant`` re-runs only the
  queries the splice dirtied.

Soundness of the invalidation rule — patterns are *positive* (no
negation; OR is disjunction), so an embedding is a monotone property of
node presence:

* a splice can only *create* an embedding that uses at least one newly
  added node ``n``; ``n`` is then the image of some pattern node ``p``,
  so ``n`` matches ``p``'s label test — and when ``p`` hangs by a child
  edge, ``n.parent`` matches ``p.parent``'s test too.  Both are exactly
  what :meth:`LabelFootprint.touches` checks against the added nodes.
* a splice can only *destroy* an embedding that used a removed node,
  checked symmetrically (removed subtree roots are already detached
  when the delta is delivered, so their pre-splice parent is taken from
  the delta).

Freezing a call (fault handling) mutates activation in place and emits
no event, and calls can be invoked between rounds — which is why the
engine filters cached results through ``document.contains`` and the
FROZEN check at read time instead of trusting the cache for liveness.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..axml.document import Document, SpliceDelta
from ..axml.node import Node
from ..pattern.nodes import EdgeKind, PatternKind, PatternNode
from ..pattern.pattern import TreePattern
from .relevance import RelevanceQuery


class LabelFootprint:
    """The node tests a pattern can apply, keyed for delta screening.

    Two tables map a *test label* to the set of parent labels the test
    may fire under: ``None`` as a test label is a wildcard (star or
    variable nodes; the star function node), ``None`` as a parent set
    means "any parent" (descendant edges, or a child edge under a
    non-constant parent).
    """

    __slots__ = ("_data", "_functions")

    def __init__(self) -> None:
        self._data: dict[Optional[str], Optional[set[str]]] = {}
        self._functions: dict[Optional[str], Optional[set[str]]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_pattern(cls, pattern: TreePattern) -> "LabelFootprint":
        footprint = cls()
        root = pattern.root
        # The pattern root maps only to the document root, which no
        # splice ever adds or removes — its own test needs no entry.
        root_label = (
            root.label if root.kind is PatternKind.ELEMENT else None
        )
        for child in root.children:
            footprint._add(child, child.edge, root_label)
        return footprint

    def _add(
        self,
        node: PatternNode,
        edge: EdgeKind,
        parent_label: Optional[str],
    ) -> None:
        if node.is_or:
            # Alternatives occupy the OR's position: same edge, same
            # effective parent.
            for alt in node.children:
                self._add(alt, edge, parent_label)
            return
        constraint = parent_label if edge is EdgeKind.CHILD else None
        if node.kind is PatternKind.FUNCTION:
            if node.function_names is None:
                self._note(self._functions, None, constraint)
            else:
                for name in node.function_names:
                    self._note(self._functions, name, constraint)
        elif node.kind in (PatternKind.ELEMENT, PatternKind.VALUE):
            self._note(self._data, node.label, constraint)
        else:  # STAR / VARIABLE match any data node
            self._note(self._data, None, constraint)
        own_label = node.label if node.kind is PatternKind.ELEMENT else None
        for child in node.children:
            self._add(child, child.edge, own_label)

    def update(self, other: "LabelFootprint") -> None:
        """Widen this footprint to also cover ``other`` (set union of
        tests, parent constraints merged per test — ``None`` absorbs).

        Used to maintain the cache's *group-level* footprint: a splice
        disjoint from the union provably leaves every entry valid, so
        one check dismisses it instead of one per entry.
        """
        for mine, theirs in (
            (self._data, other._data),
            (self._functions, other._functions),
        ):
            for key, parents in theirs.items():
                if parents is None:
                    mine[key] = None
                else:
                    for constraint in parents:
                        self._note(mine, key, constraint)

    def note_any_function(self) -> None:
        """Widen: any function node, under any parent, now touches the
        footprint.  The answer-maintenance guard uses this for the
        strategies whose relevance criterion is "every call counts"
        (NAIVE materialises everything), where a screened splice must
        still never hide an added call."""
        self._functions[None] = None

    @staticmethod
    def _note(
        table: dict[Optional[str], Optional[set[str]]],
        key: Optional[str],
        constraint: Optional[str],
    ) -> None:
        if key in table:
            parents = table[key]
            if parents is not None:
                if constraint is None:
                    table[key] = None
                else:
                    parents.add(constraint)
        else:
            table[key] = None if constraint is None else {constraint}

    # -- screening ------------------------------------------------------------

    def touches(self, delta: SpliceDelta) -> bool:
        """Could this splice change the pattern's result? (May say yes
        spuriously; never says no wrongly — see the module docstring.)"""
        for root in delta.added:
            for node in root.iter_subtree():
                if self.touches_node(node, node.parent):
                    return True
        for root in delta.removed:
            # Detached roots lost their parent pointer; the delta
            # remembers where they hung.
            if self.touches_node(root, delta.parent):
                return True
            for node in root.iter_subtree():
                if node is not root and self.touches_node(
                    node, node.parent
                ):
                    return True
        return False

    def touches_node(self, node: Node, parent: Optional[Node]) -> bool:
        """Does any test of the footprint accept this document node?"""
        table = self._functions if node.is_function else self._data
        if not table:
            return False
        parent_label = parent.label if parent is not None else None
        for key in (node.label, None):
            if key not in table:
                continue
            parents = table[key]
            if parents is None:
                return True
            if parent_label is not None and parent_label in parents:
                return True
        return False

    # -- introspection (tests / reports) ---------------------------------------

    @property
    def data_labels(self) -> frozenset[str]:
        """Concrete element/value labels the pattern tests."""
        return frozenset(k for k in self._data if k is not None)

    @property
    def function_names(self) -> frozenset[str]:
        """Concrete service names the pattern tests."""
        return frozenset(k for k in self._functions if k is not None)

    @property
    def matches_any_data(self) -> bool:
        """Does a wildcard (star/variable) test appear?"""
        return None in self._data

    @property
    def matches_any_function(self) -> bool:
        """Does a star function test ``()`` appear?"""
        return None in self._functions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabelFootprint(data={sorted(self.data_labels)}"
            f"{'+*' if self.matches_any_data else ''}, "
            f"functions={sorted(self.function_names)}"
            f"{'+*' if self.matches_any_function else ''})"
        )


class _CacheEntry:
    __slots__ = ("pattern", "footprint", "calls")

    def __init__(
        self,
        pattern: TreePattern,
        footprint: LabelFootprint,
        calls: tuple[Node, ...],
    ) -> None:
        self.pattern = pattern
        self.footprint = footprint
        self.calls = calls


class RelevanceCache:
    """Memoized retrieved-call sets, invalidated by footprint screening.

    Attach one per evaluation; it observes the document and drops an
    entry the moment a splice's delta intersects the entry's footprint.
    Entries are keyed by the relevance query's ``target_uid`` and pinned
    to the exact pattern object — layer simplification and refinement
    rebuild the ``RelevanceQuery`` family with fresh patterns, which
    makes stale entries miss automatically.
    """

    def __init__(self, document: Document) -> None:
        self.document = document
        self._entries: dict[int, _CacheEntry] = {}
        self._merged: Optional[LabelFootprint] = None
        self.hits = 0
        """Retrievals answered from a still-valid cached set."""
        self.reevaluations = 0
        """Retrievals that had to run the query."""
        self.invalidations = 0
        """Entries dropped because a splice touched their footprint."""
        self.splices_seen = 0
        self.group_screens = 0
        """Splices dismissed by the merged (group-level) footprint in
        one check, without consulting any per-entry footprint."""
        document.add_observer(self)

    def detach(self) -> None:
        self.document.remove_observer(self)

    # DocumentObserver protocol ---------------------------------------------

    def call_removed(self, document: Document, node: Node) -> None:
        """Covered by :meth:`splice`; kept for protocol completeness."""

    def calls_added(self, document: Document, nodes: list[Node]) -> None:
        """Covered by :meth:`splice`; kept for protocol completeness."""

    def splice(self, document: Document, delta: SpliceDelta) -> None:
        self.splices_seen += 1
        if not self._entries:
            return
        if not self._merged_footprint().touches(delta):
            # The union is untouched, so every member footprint is too.
            self.group_screens += 1
            return
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.footprint.touches(delta)
        ]
        for key in stale:
            del self._entries[key]
        if stale:
            self._merged = None
        self.invalidations += len(stale)

    def _merged_footprint(self) -> LabelFootprint:
        """The union of all live entries' footprints, rebuilt lazily
        whenever the entry set changes."""
        merged = self._merged
        if merged is None:
            merged = LabelFootprint()
            for entry in self._entries.values():
                merged.update(entry.footprint)
            self._merged = merged
        return merged

    # -- the memoized retrieval ------------------------------------------------

    def lookup(self, rquery: RelevanceQuery) -> Optional[list[Node]]:
        """The cached call set, or ``None`` on a miss (stale pattern or
        invalidated entry).  Counts a hit; pair with :meth:`store`."""
        entry = self._entries.get(rquery.target_uid)
        if entry is None:
            return None
        if entry.pattern is not rquery.pattern:
            # The query family was rebuilt (layer simplification or
            # refinement): this entry can never hit again, yet left in
            # place its dead footprint would keep widening the merged
            # screen and keep eating per-entry checks on every splice.
            # Evict it and let the merged footprint rebuild.
            del self._entries[rquery.target_uid]
            self._merged = None
            return None
        self.hits += 1
        return list(entry.calls)

    def store(self, rquery: RelevanceQuery, calls: Iterable[Node]) -> None:
        """Record a freshly evaluated call set (counts a re-evaluation).

        Split out of :meth:`retrieve` so a *shared* evaluation pass can
        resolve all misses of a round in one group traversal and store
        each member's result afterwards."""
        self.reevaluations += 1
        self._entries[rquery.target_uid] = _CacheEntry(
            pattern=rquery.pattern,
            footprint=LabelFootprint.from_pattern(rquery.pattern),
            calls=tuple(calls),
        )
        self._merged = None

    def retrieve(
        self,
        rquery: RelevanceQuery,
        evaluate: Callable[[RelevanceQuery], Iterable[Node]],
    ) -> list[Node]:
        """The query's retrieved calls, from cache when provably valid.

        The returned list may contain calls that were frozen or removed
        since it was cached (those events do not change *embeddings*,
        only eligibility) — callers filter for liveness at read time.
        """
        cached = self.lookup(rquery)
        if cached is not None:
            return cached
        calls = list(evaluate(rquery))
        self.store(rquery, calls)
        return calls

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RelevanceCache(entries={len(self._entries)}, "
            f"hits={self.hits}, reevaluations={self.reevaluations}, "
            f"invalidations={self.invalidations})"
        )
