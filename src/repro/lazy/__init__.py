"""Lazy query evaluation: relevance, sequencing, typing, guides, pushing."""

from .answers import AnswerCache, ServiceTouchTracker
from .config import EngineConfig, FaultPolicy, Strategy, TypingMode
from .continuous import ContinuousQuery
from .engine import EvaluationOutcome, LazyQueryEvaluator
from .fguide import FGuide
from .incremental import LabelFootprint, RelevanceCache
from .influence import InfluenceAnalyzer
from .layers import Layer, compute_layers
from .metrics import Metrics, RoundRecord
from .pushing import BindingsOverlay, PushedSubquery, pushed_subquery_for
from .report import (
    ComparisonRow,
    compare_strategies,
    format_comparison,
    format_trace_profile,
)
from .relevance import (
    NFQBuilder,
    RelevanceKind,
    RelevanceQuery,
    build_nfqs,
    linear_path_queries,
)

__all__ = [
    "AnswerCache",
    "BindingsOverlay",
    "ComparisonRow",
    "ContinuousQuery",
    "EngineConfig",
    "EvaluationOutcome",
    "FGuide",
    "FaultPolicy",
    "InfluenceAnalyzer",
    "LabelFootprint",
    "Layer",
    "LazyQueryEvaluator",
    "Metrics",
    "NFQBuilder",
    "PushedSubquery",
    "RelevanceCache",
    "RelevanceKind",
    "RelevanceQuery",
    "RoundRecord",
    "ServiceTouchTracker",
    "Strategy",
    "TypingMode",
    "build_nfqs",
    "compare_strategies",
    "compute_layers",
    "format_comparison",
    "format_trace_profile",
    "linear_path_queries",
    "pushed_subquery_for",
]
