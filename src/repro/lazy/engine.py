"""The lazy query evaluator — the NFQA algorithm and its refinements.

Ties everything together (Sections 3-7):

1. build the relevance queries for the user query — LPQs (Section 3.1)
   or (refined) NFQs (Sections 3.2 / 5);
2. analyse their mutual influence (Proposition 3), split them into
   totally ordered layers (Section 4.3) and precompute per-query
   independence (condition (*), Section 4.4);
3. run the NFQA loop per layer: evaluate the layer's relevance queries
   — on the document, or on the F-guide with residual filtering
   (Section 6.2) — and invoke the retrieved calls, one at a time or as a
   parallel round when independence allows; repeat until the layer goes
   quiet, then simplify the remaining NFQs (drop the finished layer's
   function alternatives);
4. optionally push subqueries over the invoked calls (Section 7),
   splicing filtered forests or recording bindings in the overlay;
5. finally evaluate the (now complete) document conventionally and
   return the full result with a metrics record.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Optional

from ..axml.arena import DocumentArena
from ..axml.document import Document
from ..axml.index import LabelIndex
from ..axml.node import Activation, Node
from ..axml.paths import call_position
from ..obs.trace import (
    ANSWER_MAINT,
    COLUMN_PASS,
    EVALUATE,
    FINAL_MATCH,
    GROUP_PASS,
    INVOCATION,
    LAYER,
    PUSH,
    RELEVANCE_CHECK,
    ROUND,
    SATISFIABILITY,
    AnyTracer,
    tracer_for,
)
from ..schema import automata
from ..pattern.match import Matcher, MatchCounter, MatchOptions, MatchSet
from ..pattern.multimatch import PatternGroup
from ..pattern.shards import ShardedPatternGroup
from ..pattern.nodes import EdgeKind, PatternNode
from ..pattern.pattern import TreePattern
from ..schema.graphschema import LenientSatisfiability
from ..schema.satisfiability import ExactSatisfiability, SatisfiabilityOracle
from ..schema.schema import Schema, SchemaError
from ..services.registry import ServiceBus, ServiceCall
from ..services.resilience import InvocationPolicy, ResilientOutcome
from ..services.scheduler import CallCache, SchedulerPolicy
from ..services.service import PushMode
from .answers import AnswerCache
from .config import EngineConfig, FaultPolicy, Strategy, TypingMode
from .fguide import FGuide
from .incremental import RelevanceCache
from .layers import Layer, compute_layers
from .metrics import Metrics, RoundRecord
from .naive import naive_fixpoint
from .pushing import BindingsOverlay, PushedSubquery, pushed_subquery_for
from .relevance import (
    NFQBuilder,
    RelevanceQuery,
    linear_path_queries,
)


class EvaluationOutcome:
    """Full result of a query plus the work it took."""

    def __init__(
        self,
        query: TreePattern,
        document: Document,
        rows: MatchSet,
        metrics: Metrics,
        rounds: list[RoundRecord],
        overlay: Optional[BindingsOverlay],
    ) -> None:
        self.query = query
        self.document = document
        self.rows = rows
        self.metrics = metrics
        self.rounds = rounds
        self.overlay = overlay

    def value_rows(self) -> set[tuple[str, ...]]:
        """Result rows as tuples of labels/values (order-insensitive)."""
        return self.rows.value_rows()

    def to_xml(self) -> str:
        """Serialise the full result as an XML tuple list.

        Each row becomes a ``<tuple>``; element result nodes are
        serialised with their subtree, value results are wrapped in
        ``<value>`` elements (matching the Section 7 reply shape).
        """
        from ..axml.node import element, value
        from ..axml.xmlio import serialize

        results = element("results")
        for row in self.rows:
            row_element = element("tuple")
            for node in row.nodes:
                if node.is_value:
                    row_element.append(element("value", value(node.label)))
                else:
                    row_element.append(node.clone())
            results.append(row_element)
        return serialize(results)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EvaluationOutcome({len(self.rows)} rows, {self.metrics.summary()})"


class LazyQueryEvaluator:
    """Evaluates tree-pattern queries over AXML documents, lazily.

    Args:
        bus: the service bus resolving and accounting invocations.
        schema: element content models (service signatures registered on
            the bus are merged in automatically for the typed modes).
        config: strategy and tunables; defaults to layered parallel NFQA.
        match_options: embedding semantics knobs.
    """

    def __init__(
        self,
        bus: ServiceBus,
        schema: Optional[Schema] = None,
        config: Optional[EngineConfig] = None,
        match_options: Optional[MatchOptions] = None,
    ) -> None:
        self.bus = bus
        self.schema = schema
        self.config = config or EngineConfig()
        if (
            match_options is not None
            and self.config.match_options is not None
            and match_options != self.config.match_options
        ):
            # Mirrors the facade's strategy-conflict check: two sources
            # of embedding semantics must agree, not silently race.
            raise ValueError(
                "conflicting match options: match_options="
                f"{match_options!r} but config.match_options="
                f"{self.config.match_options!r} — pass one or the other"
            )
        self.match_options = (
            match_options or self.config.match_options or MatchOptions()
        )

    # -- public API ------------------------------------------------------------

    def evaluate(
        self,
        query: TreePattern,
        document: Document,
        answer_cache: Optional[AnswerCache] = None,
    ) -> EvaluationOutcome:
        """Compute the *full result* of ``query`` over ``document``.

        The document is mutated in place (calls are invoked and replaced
        by their results); copy it first if you need the original.

        ``answer_cache`` (attached by
        :class:`~repro.lazy.continuous.ContinuousQuery` under
        ``maintain_answers``) replaces the final full match with
        dirty-subtree re-matching over the maintained rows; it must be
        pinned to exactly this query and document.
        """
        tracer = tracer_for(
            self.config.trace, sim_clock=lambda: self.bus.clock_s
        )
        if answer_cache is not None and (
            answer_cache.query is not query
            or answer_cache.document is not document
        ):
            raise ValueError(
                "answer_cache is pinned to a different query or document"
            )
        if self.config.call_cache and self.bus.cache is None:
            # Cache state lives on the bus (like breaker state), so it
            # persists across evaluations sharing a ServiceBus.
            self.bus.cache = CallCache(ttl_s=self.config.call_cache_ttl_s)
        state = _EvaluationState(
            self, query, document, tracer, answer_cache=answer_cache
        )
        started = time.perf_counter()
        try:
            with tracer.span(
                EVALUATE,
                strategy=self.config.label,
                query=query.to_string(),
            ):
                if self.config.strategy is Strategy.NAIVE:
                    state.run_naive()
                else:
                    state.run_lazy()
                with tracer.span(FINAL_MATCH):
                    rows = state.final_evaluation()
        finally:
            state.teardown()
        state.metrics.analysis_wall_s = time.perf_counter() - started
        state.finalize_metrics(rows)
        return EvaluationOutcome(
            query=query,
            document=document,
            rows=rows,
            metrics=state.metrics,
            rounds=state.rounds,
            overlay=state.overlay,
        )


@dataclasses.dataclass
class _PreparedCall:
    """A call's bus-facing request, computed before dispatch.

    Splitting preparation (push computation, input validation) from
    absorption (document splice, metrics) lets a whole round's requests
    be built first and dispatched as one concurrent batch."""

    service_call: ServiceCall
    pushed: Optional[PushedSubquery]
    push_mode: PushMode
    parent: Optional[Node]


class _EvaluationState:
    """Per-evaluation mutable state (one evaluate() call)."""

    def __init__(
        self,
        evaluator: LazyQueryEvaluator,
        query: TreePattern,
        document: Document,
        tracer: AnyTracer,
        answer_cache: Optional[AnswerCache] = None,
    ) -> None:
        self.evaluator = evaluator
        self.config = evaluator.config
        self.bus = evaluator.bus
        self.query = query
        self.document = document
        self.tracer = tracer

        self.metrics = Metrics(strategy=self.config.label)
        self.rounds: list[RoundRecord] = []
        self.match_counter = MatchCounter()
        self.invocations = 0
        self._log_start = len(self.bus.log.records)

        self.overlay: Optional[BindingsOverlay] = (
            BindingsOverlay()
            if self.config.push_mode is PushMode.BINDINGS
            else None
        )
        self.fguide: Optional[FGuide] = None
        self.arena: Optional[DocumentArena] = None
        self._arena_owned = False
        if self.config.arena and self.config.strategy is not Strategy.NAIVE:
            # Reuse an arena already mirroring this document (the
            # workload factory attaches one at build time); otherwise
            # build our own and detach it at teardown.
            attached = getattr(document, "arena", None)
            if (
                isinstance(attached, DocumentArena)
                and attached.document is document
                and attached.slot_for(document.root) is not None
            ):
                self.arena = attached
            else:
                self.arena = DocumentArena(document)
                self._arena_owned = True
        self.index: Optional[LabelIndex] = None
        self.rcache: Optional[RelevanceCache] = None
        if (
            self.config.incremental
            and self.config.strategy is not Strategy.NAIVE
            and self.overlay is None
        ):
            # Overlay rows change match results without any document
            # event, so memoized relevance sets would go stale silently
            # — incremental mode stays off under pushed bindings.
            self.index = LabelIndex(document, arena=self.arena)
            self.rcache = RelevanceCache(document)
        self.answer_cache: Optional[AnswerCache] = None
        self._answer_counters: dict[str, int] = {}
        self._maintained_rows = 0
        if (
            answer_cache is not None
            and self.config.maintain_answers
            and self.overlay is None
        ):
            # Overlay rows change match results without document events
            # (same argument as for the relevance cache), so maintained
            # answers stay off under pushed bindings.
            self.answer_cache = answer_cache
            self._answer_counters = answer_cache.counters()
        self._shared_index: Optional[LabelIndex] = None
        if (
            self.config.shared_matching
            and self.config.strategy is not Strategy.NAIVE
            and self.overlay is None
            and self.index is None
        ):
            # The group pass keeps a label index of its own (projection
            # sources + descendant steps) when incremental mode did not
            # already build one.
            self._shared_index = LabelIndex(document, arena=self.arena)
        self._group: "Optional[PatternGroup | ShardedPatternGroup]" = None
        self._group_key: Optional[tuple] = None
        self._matchers: dict[int, Matcher] = {}
        self._nodes_by_uid = {n.uid: n for n in query.nodes()}
        self._pushed_cache: dict[int, PushedSubquery] = {}
        self._schema = self.bus.registry.schema_with_signatures(
            base=evaluator.schema
        )
        self._builder: Optional[NFQBuilder] = None
        self._queries_by_target: dict[int, RelevanceQuery] = {}
        self._completed_targets: set[int] = set()
        self._position_nfas: dict[int, automata.NFA] = {}

    # -- lifecycle ---------------------------------------------------------------

    def teardown(self) -> None:
        if self.fguide is not None:
            self.fguide.detach()
            self.fguide = None
        if self.rcache is not None:
            self.rcache.detach()
        if self.index is not None:
            self.index.detach()
        if self._shared_index is not None:
            self._shared_index.detach()
        if self.arena is not None and self._arena_owned:
            self.arena.detach()

    def finalize_metrics(self, rows: MatchSet) -> None:
        metrics = self.metrics
        metrics.result_rows = len(rows)
        metrics.final_document_nodes = self.document.stats().total_nodes
        metrics.match_can_checks = self.match_counter.can_checks
        metrics.match_candidates_visited = self.match_counter.candidates_visited
        metrics.index_candidates = self.match_counter.index_candidates
        metrics.column_pass_nodes = self.match_counter.column_pass_nodes
        metrics.column_rows = self.match_counter.column_rows
        metrics.column_fallbacks = self.match_counter.column_fallbacks
        if self.arena is not None:
            metrics.arena_nodes = self.arena.live_nodes
            metrics.arena_bytes = self.arena.column_bytes()
        metrics.projection_pruned_at_load = getattr(
            self.document, "projection_pruned_at_load", 0
        )
        if self.rcache is not None:
            metrics.relevance_cache_hits = self.rcache.hits
            metrics.queries_reevaluated = self.rcache.reevaluations
        if self.answer_cache is not None:
            before = self._answer_counters
            after = self.answer_cache.counters()
            metrics.maintained_rows = self._maintained_rows
            metrics.answer_cache_hits = after["hits"] - before["hits"]
            metrics.answer_scope_rematches = (
                after["scope_rematches"] - before["scope_rematches"]
            )
            metrics.rows_respliced = (
                after["rows_added"]
                - before["rows_added"]
                + after["rows_retracted"]
                - before["rows_retracted"]
            )
        for record in self.bus.log.records[self._log_start :]:
            metrics.bytes_sent += record.request_bytes
            metrics.bytes_received += record.response_bytes

    # -- strategies ------------------------------------------------------------------

    def run_naive(self) -> None:
        def invoke(call: Node) -> Optional[float]:
            return self._invoke_call(call, target_uids=frozenset())

        def on_round(times: list[float]) -> None:
            self._account_round(times, layer_index=None, parallel=True)

        invoked, completed = naive_fixpoint(
            self.document,
            invoke,
            self.config.max_invocations,
            on_round,
            tracer=self.tracer,
        )
        self.metrics.completed = completed

    def run_lazy(self) -> None:
        self._fire_immediate_calls()
        with self.tracer.span(
            SATISFIABILITY, typing=self.config.typing.value, reason="build"
        ) as span:
            queries = self._build_relevance_queries()
            if span is not None:
                span.tags["queries"] = len(queries)
        self.metrics.relevance_queries_built = len(queries)
        self._queries_by_target = {q.target_uid: q for q in queries}

        if self.config.use_fguide:
            self.fguide = FGuide(self.document)

        if self.config.speculative and self.config.parallel:
            # "Just in case" mode (Section 4.4's remark): one pseudo-layer
            # so every currently-relevant call everywhere fires together.
            layers = [
                Layer(
                    index=0,
                    queries=list(queries),
                    independent={q.target_uid: True for q in queries},
                )
            ]
        elif self.config.use_layers:
            layers = compute_layers(queries)
        else:
            # Plain NFQA (Section 4.1): a single pseudo-layer, strictly
            # one invocation per iteration.
            layers = [
                Layer(
                    index=0,
                    queries=list(queries),
                    independent={q.target_uid: False for q in queries},
                )
            ]
        self.metrics.layers = len(layers)

        for layer in layers:
            if not self._budget_left():
                self.metrics.completed = False
                break
            with self.tracer.span(
                LAYER, index=layer.index, queries=len(layer.queries)
            ):
                self._process_layer(layer)
            self._completed_targets |= self._absorbed_targets(layer)
            self._rebuild_queries(reason="layer_done")

    def _fire_immediate_calls(self) -> None:
        """Invoke every IMMEDIATE-activation call (Section 1's eager
        mode) before the lazy analysis starts, to a fixpoint."""
        while self._budget_left():
            eager = [
                c
                for c in self.document.function_nodes()
                if c.activation is Activation.IMMEDIATE
            ]
            if not eager:
                return
            times = []
            with self.tracer.span(ROUND, phase="immediate"):
                for call in eager:
                    if not self._budget_left():
                        self.metrics.completed = False
                        break
                    if not self.document.contains(call):
                        continue
                    elapsed = self._invoke_call(call, frozenset())
                    if elapsed is not None:
                        times.append(elapsed)
            self._account_round(times, layer_index=None, parallel=True)

    # -- relevance-query management ---------------------------------------------------

    def _build_relevance_queries(self) -> list[RelevanceQuery]:
        config = self.config
        if config.strategy in (Strategy.TOP_DOWN, Strategy.LAZY_LPQ):
            return linear_path_queries(self.query)
        oracle = self._make_oracle()
        names = None
        if oracle is not None:
            names = set(self.bus.registry.names())
            names.update(call.label for call in self.document.function_nodes())
            names.update(self._schema.function_names())
        self._builder = NFQBuilder(
            self.query,
            oracle=oracle,
            function_names=names,
            drop_value_joins=config.drop_value_joins,
        )
        return self._builder.build_all(
            dedupe=config.dedupe_relevance_queries
        )

    def _make_oracle(self) -> Optional[SatisfiabilityOracle]:
        if self.config.typing is TypingMode.NONE:
            return None
        if self.config.typing is TypingMode.EXACT:
            return ExactSatisfiability(self._schema)
        return LenientSatisfiability(self._schema)

    def _rebuild_queries(self, reason: str = "rebuild") -> None:
        """Regenerate remaining NFQs after a layer completed (Section 4.3
        simplification) or after new service names appeared (Section 5)."""
        if self._builder is None:
            return  # LPQs depend only on the query: nothing to simplify
        with self.tracer.span(
            SATISFIABILITY, typing=self.config.typing.value, reason=reason
        ):
            rebuilt = self._builder.build_all(
                excluded_targets=self._completed_targets,
                dedupe=self.config.dedupe_relevance_queries,
            )
        self._queries_by_target = {q.target_uid: q for q in rebuilt}

    def _absorbed_targets(self, layer: Layer) -> set[int]:
        out: set[int] = set()
        for uid in layer.target_uids:
            out.add(uid)
            query = self._queries_by_target.get(uid)
            if query is not None:
                out |= set(query.extra_target_uids)
        return out

    def _layer_queries(self, layer: Layer) -> list[RelevanceQuery]:
        queries = []
        for uid in sorted(layer.target_uids):
            query = self._queries_by_target.get(uid)
            if query is not None:
                queries.append(query)
        return queries

    # -- the NFQA loop -------------------------------------------------------------------

    def _process_layer(self, layer: Layer) -> None:
        config = self.config
        while self._budget_left():
            with self.tracer.span(ROUND, layer=layer.index):
                done = self._process_round(layer)
            if done:
                return
        self.metrics.completed = False

    def _process_round(self, layer: Layer) -> bool:
        """One NFQA iteration; returns True when the layer went quiet."""
        config = self.config
        with self.tracer.span(RELEVANCE_CHECK, layer=layer.index) as span:
            hits_before = self.rcache.hits if self.rcache else 0
            reevals_before = self.rcache.reevaluations if self.rcache else 0
            relevant = self._collect_relevant(layer)
            if span is not None:
                span.tags["relevant_calls"] = len(relevant)
                if self.rcache is not None:
                    span.tags["cache_hits"] = self.rcache.hits - hits_before
                    span.tags["reevaluated"] = (
                        self.rcache.reevaluations - reevals_before
                    )
        if not relevant:
            return True
        batch: list[tuple[Node, frozenset[int]]] = []
        if config.parallel and config.speculative:
            # "Just in case" parallelism (Section 4.4's remark): fire
            # everything relevant right now, accepting that some may
            # turn out irrelevant once siblings respond.
            batch = [
                (call, targets)
                for _, (call, targets, _) in sorted(relevant.items())
            ]
        elif config.parallel:
            # Condition (*) is per-NFQ: all calls retrieved only by
            # independent queries of the layer can fire in parallel.
            batch = [
                (call, targets)
                for node_id, (call, targets, retrievers) in sorted(
                    relevant.items()
                )
                if all(layer.independent.get(uid, False) for uid in retrievers)
            ]
        if not batch:
            first_id = min(relevant)
            call, targets, _ = relevant[first_id]
            batch = [(call, targets)]
        times: list[float] = []
        new_names: set[str] = set()
        if len(batch) > 1 and config.max_concurrency > 1:
            times, new_names, makespan = self._invoke_round_batch(batch)
            self._account_round(
                times,
                layer_index=layer.index,
                parallel=True,
                makespan=makespan,
            )
        else:
            for call, target_uids in batch:
                if not self._budget_left():
                    self.metrics.completed = False
                    break
                if not self.document.contains(call):
                    continue
                names_before = set(self._builder.function_names) if self._builder else set()
                elapsed = self._invoke_call(call, target_uids)
                if elapsed is not None:
                    times.append(elapsed)
                if self._builder is not None:
                    new_names |= set(self._builder.function_names) - names_before
            self._account_round(
                times, layer_index=layer.index, parallel=len(batch) > 1
            )
        if new_names:
            self._rebuild_queries(reason="new_names")
        return False

    def _invoke_round_batch(
        self, batch: list[tuple[Node, frozenset[int]]]
    ) -> tuple[list[float], set[str], float]:
        """Dispatch one parallel round through the bus batch scheduler.

        Returns ``(times, new function names, makespan)``; ``times``
        carries one entry per accounted invocation, as in the serial
        loop, while the makespan is what the round costs on the
        simulated parallel clock."""
        prepared: list[tuple[Node, _PreparedCall]] = []
        for call, target_uids in batch:
            if self.invocations + len(prepared) >= self.config.max_invocations:
                self.metrics.completed = False
                break
            if not self.document.contains(call):
                continue
            prepared.append((call, self._prepare_call(call, target_uids)))
        if not prepared:
            return [], set(), 0.0
        names_before = set(self._builder.function_names) if self._builder else set()
        result = self.bus.invoke_batch(
            [prep.service_call for _, prep in prepared],
            policy=self._invocation_policy(),
            scheduler=SchedulerPolicy(
                max_concurrency=self.config.max_concurrency,
                use_threads=self.config.use_threads,
            ),
            trace=self.tracer,
        )
        times: list[float] = []
        for (call, prep), outcome in zip(prepared, result.outcomes):
            elapsed = self._absorb_outcome(call, prep, outcome)
            if elapsed is not None:
                times.append(elapsed)
        new_names: set[str] = set()
        if self._builder is not None:
            new_names = set(self._builder.function_names) - names_before
        self.metrics.batch_count += 1
        self.metrics.max_batch_width = max(
            self.metrics.max_batch_width, result.width
        )
        return times, new_names, result.parallel_s

    def _collect_relevant(
        self, layer: Layer
    ) -> dict[int, tuple[Node, frozenset[int], frozenset[int]]]:
        """Union of the calls retrieved by the layer's relevance queries.

        Maps call node id to ``(call, target uids, retriever uids)`` —
        targets drive query pushing, retrievers drive the per-query
        independence check for parallel rounds.
        """
        relevant: dict[int, tuple[Node, frozenset[int], frozenset[int]]] = {}
        queries = self._layer_queries(layer)
        shared: Optional[dict[int, list[Node]]] = None
        if queries and self._shared_matching_active():
            shared = self._retrieve_group(queries)
        for rquery in queries:
            if shared is not None:
                calls = shared[rquery.target_uid]
            else:
                calls = self._retrieve(rquery)
            self.metrics.relevance_evaluations += 1
            for call in calls:
                assert call.node_id is not None
                targets = rquery.all_target_uids
                retrievers = frozenset({rquery.target_uid})
                existing = relevant.get(call.node_id)
                if existing is not None:
                    targets = existing[1] | targets
                    retrievers = existing[2] | retrievers
                relevant[call.node_id] = (call, targets, retrievers)
        return relevant

    def _shared_matching_active(self) -> bool:
        """Group passes replace per-query matching only where they are
        provably equivalent: overlay rows (pushed bindings) are keyed by
        the actual pattern node, which canonical sharing conflates."""
        return self.config.shared_matching and self.overlay is None

    def _retrieve_group(
        self, queries: list[RelevanceQuery]
    ) -> dict[int, list[Node]]:
        """All queries' eligible calls out of one shared group pass.

        Cache hits (incremental mode) are answered first; the remaining
        misses run together in a single projected traversal, and their
        fresh sets are stored back.  The liveness filter mirrors
        :meth:`_retrieve`.
        """
        raw: dict[int, list[Node]] = {}
        fresh: list[RelevanceQuery] = []
        for rquery in queries:
            cached = (
                self.rcache.lookup(rquery) if self.rcache is not None else None
            )
            if cached is not None:
                raw[rquery.target_uid] = cached
            else:
                fresh.append(rquery)
        if fresh:
            group = self._group_for(queries)
            with self.tracer.span(
                GROUP_PASS, members=len(queries), evaluated=len(fresh)
            ) as span:
                with self._column_span():
                    result = group.evaluate(
                        self.document, keys=[q.target_uid for q in fresh]
                    )
                if span is not None:
                    span.tags["nodes_visited"] = result.nodes_visited
                    span.tags["skipped_subtrees"] = result.skipped_subtrees
                    span.tags["projected"] = result.projected
            self.metrics.group_passes += 1
            self.metrics.group_pass_nodes_visited += result.nodes_visited
            self.metrics.projection_skipped_subtrees += result.skipped_subtrees
            self.metrics.shard_passes += getattr(result, "shard_passes", 0)
            self.metrics.shard_merge_rows += getattr(result, "merge_rows", 0)
            for rquery in fresh:
                calls = result.match_sets[rquery.target_uid].distinct_nodes()
                if self.rcache is not None:
                    self.rcache.store(rquery, calls)
                raw[rquery.target_uid] = calls
        return {
            uid: [
                call
                for call in calls
                if call.activation is not Activation.FROZEN
                and self.document.contains(call)
            ]
            for uid, calls in raw.items()
        }

    @contextlib.contextmanager
    def _column_span(self):
        """A ``COLUMN_PASS`` span around a match pass, when active.

        Yields ``None`` (no span) unless ``config.column_match`` is on
        and an arena exists — the same gate the matchers apply — so the
        trace only claims a column pass when one could actually run.
        Tags are the pass's *deltas* of the three column counters, not
        the cumulative totals, so each span reads as its own pass.
        """
        if not (self.config.column_match and self.arena is not None):
            yield None
            return
        counter = self.match_counter
        before = (
            counter.column_pass_nodes,
            counter.column_rows,
            counter.column_fallbacks,
        )
        with self.tracer.span(COLUMN_PASS) as span:
            try:
                yield span
            finally:
                if span is not None:
                    span.tags["column_pass_nodes"] = (
                        counter.column_pass_nodes - before[0]
                    )
                    span.tags["column_rows"] = counter.column_rows - before[1]
                    span.tags["column_fallbacks"] = (
                        counter.column_fallbacks - before[2]
                    )

    def _group_for(
        self, queries: list[RelevanceQuery]
    ) -> "PatternGroup | ShardedPatternGroup":
        """One compiled group per query family, reused across rounds.

        Keyed by the family's (target, pattern-identity) tuples, so a
        query rebuild (layer simplification, refinement, new names)
        compiles a fresh group — same pinning rule as per-query
        matchers.  ``shards > 1`` compiles the sharded wrapper instead:
        one scoped scan per depth-1 partition, merged deterministically
        (it stands down by itself when the family is not shardable)."""
        key = tuple((q.target_uid, id(q.pattern)) for q in queries)
        if self._group is None or self._group_key != key:
            members = {q.target_uid: q.pattern for q in queries}
            index = self.index if self.index is not None else self._shared_index
            if self.config.shards > 1:
                self._group = ShardedPatternGroup(
                    members,
                    shards=self.config.shards,
                    options=self.evaluator.match_options,
                    counter=self.match_counter,
                    index=index,
                    call_source=self.fguide,
                    arena=self.arena,
                    column_match=self.config.column_match,
                    scheduler=SchedulerPolicy(
                        max_concurrency=self.config.shards,
                        use_threads=self.config.use_threads,
                    ),
                )
            else:
                self._group = PatternGroup(
                    members,
                    options=self.evaluator.match_options,
                    counter=self.match_counter,
                    index=index,
                    call_source=self.fguide,
                    arena=self.arena,
                    column_match=self.config.column_match,
                )
            self._group_key = key
        return self._group

    def _retrieve(self, rquery: RelevanceQuery) -> list[Node]:
        """The query's currently-eligible retrieved calls.

        Liveness and activation are read-time properties: a memoized
        set may still name calls that were invoked or frozen since it
        was cached (neither changes embeddings over surviving nodes),
        so both filters run here, after the cache."""
        if self.rcache is not None:
            calls = self.rcache.retrieve(rquery, self._retrieve_raw)
        else:
            calls = self._retrieve_raw(rquery)
        return [
            call
            for call in calls
            if call.activation is not Activation.FROZEN
            and self.document.contains(call)
        ]

    def _retrieve_raw(self, rquery: RelevanceQuery) -> list[Node]:
        """Run the relevance query (no caching, no liveness filter)."""
        if self.fguide is not None:
            names = rquery.output.function_names
            candidates = self.fguide.candidates(
                rquery.linear_steps,
                names,
                descendant_tail=rquery.descendant_tail,
            )
            self.metrics.guide_lookups += 1
            self.metrics.guide_candidates += len(candidates)
            if not candidates:
                return []
            matcher = self._matcher_for(rquery)
            return [
                call
                for call in candidates
                if _verify_candidate(rquery, call, matcher)
            ]
        matcher = self._matcher_for(rquery)
        return matcher.evaluate(self.document).distinct_nodes()

    def _make_matcher(self, pattern: TreePattern) -> Matcher:
        """The one construction site for per-query matchers (relevance
        and final evaluation alike), so the options/counter/overlay/
        index wiring cannot drift between call sites."""
        return Matcher(
            pattern,
            options=self.evaluator.match_options,
            counter=self.match_counter,
            overlay=self.overlay,
            index=self.index,
            arena=self.arena,
            column_match=self.config.column_match,
        )

    def _matcher_for(self, rquery: RelevanceQuery) -> Matcher:
        """One compiled matcher per relevance query, reused across
        rounds.  Keyed by target and pinned to the pattern object, so a
        query rebuild (layer simplification, refinement) compiles a
        fresh matcher; reuse only resets the per-evaluation memos."""
        matcher = self._matchers.get(rquery.target_uid)
        if matcher is not None and matcher.pattern is rquery.pattern:
            matcher.reset()
            return matcher
        matcher = self._make_matcher(rquery.pattern)
        self._matchers[rquery.target_uid] = matcher
        return matcher

    # -- invocation --------------------------------------------------------------------------

    def _budget_left(self) -> bool:
        return (
            self.invocations < self.config.max_invocations
            and self.metrics.invocation_rounds < self.config.max_rounds
        )

    def _invoke_call(
        self, call: Node, target_uids: frozenset[int]
    ) -> Optional[float]:
        with self.tracer.span(
            INVOCATION, service=call.label, call_uid=call.node_id
        ) as span:
            result = self._invoke_call_inner(call, target_uids, span)
        return result

    def _invoke_call_inner(
        self, call: Node, target_uids: frozenset[int], span
    ) -> Optional[float]:
        prep = self._prepare_call(call, target_uids)
        outcome = self.bus.invoke(
            prep.service_call,
            policy=self._invocation_policy(),
            trace=self.tracer,
        )
        if span is not None and outcome.fault is not None:
            span.tags["fault_kind"] = type(outcome.fault).__name__
        return self._absorb_outcome(call, prep, outcome)

    def _prepare_call(
        self, call: Node, target_uids: frozenset[int]
    ) -> _PreparedCall:
        pushed: Optional[PushedSubquery] = None
        push_mode = PushMode.NONE
        if self.config.push_mode is not PushMode.NONE and len(target_uids) == 1:
            (uid,) = target_uids
            with self.tracer.span(PUSH, service=call.label):
                if self._push_is_safe(call, uid):
                    pushed = self._pushed_for(uid)
            if pushed is not None:
                push_mode = self.config.push_mode
                if push_mode is PushMode.BINDINGS and not pushed.bindable:
                    push_mode = PushMode.FILTERED

        if self.config.validate_io:
            self._check_io(self._schema.validate_node(call))

        return _PreparedCall(
            service_call=ServiceCall(
                service=call.label,
                parameters=call.children,
                call_node_id=call.node_id,
                pushed=pushed.pattern
                if pushed and push_mode is not PushMode.NONE
                else None,
                push_mode=push_mode,
                anchor_edge=pushed.anchor_edge if pushed else EdgeKind.CHILD,
            ),
            pushed=pushed,
            push_mode=push_mode,
            parent=call.parent,
        )

    def _invocation_policy(self) -> InvocationPolicy:
        policy = self.config.fault_policy
        retry = (
            self.config.retry
            if policy is FaultPolicy.RETRY
            else self.config.retry.single_attempt()
        )
        return InvocationPolicy(retry=retry, breaker=self.config.breaker)

    def _absorb_outcome(
        self, call: Node, prep: _PreparedCall, outcome: ResilientOutcome
    ) -> Optional[float]:
        metrics = self.metrics
        metrics.faults += outcome.faults
        metrics.retries += outcome.retries
        metrics.backoff_s += outcome.backoff_s
        metrics.failed_attempt_time_s += outcome.fault_time_s
        metrics.breaker_trips += outcome.breaker_trips
        if outcome.short_circuited:
            metrics.breaker_short_circuits += 1
        if outcome.cache_hit:
            metrics.cache_hits += 1

        policy = self.config.fault_policy
        if not outcome.succeeded:
            if policy is FaultPolicy.RAISE:
                assert outcome.fault is not None
                raise outcome.fault
            self._resolve_faulted_call(call, policy)
            if outcome.attempts == 0:
                # Pure breaker short-circuit (or a coalesced duplicate of
                # a faulted call): nothing was shipped, so no invocation
                # (or round) is accounted.
                return None
            self.invocations += 1
            metrics.calls_invoked += 1
            # Failed attempts still burned simulated time — returning it
            # (instead of None) makes fault-only rounds count toward the
            # round budget and the simulated clocks.
            return outcome.fault_time_s + outcome.backoff_s

        reply = outcome.reply
        assert reply is not None
        if self.config.validate_io and reply.push_mode is PushMode.NONE:
            # Pushed replies are legitimately pruned below the output
            # type, so only plain replies are checked against it.
            self._check_io(self._schema.validate_output(call.label, reply.forest))

        new_calls = self.document.replace_call(call, reply.forest)
        self.invocations += 1
        metrics.calls_invoked += 1
        metrics.nodes_materialized += sum(
            tree.subtree_size() for tree in reply.forest
        )
        if reply.is_bindings and self.overlay is not None and prep.pushed is not None:
            assert prep.parent is not None
            self.overlay.add(prep.parent, prep.pushed, reply.bindings or [])
        if self._builder is not None and new_calls:
            self._builder.add_function_names(c.label for c in new_calls)
        elapsed = outcome.fault_time_s + outcome.backoff_s
        if outcome.record is not None:
            elapsed += outcome.record.simulated_time_s
        return elapsed

    def _resolve_faulted_call(self, call: Node, policy: FaultPolicy) -> None:
        """Leave the document in a sound state after a definitive fault.

        ``SKIP`` preserves its legacy (lossy) semantics: the call's
        subtree is deleted.  Every other tolerant policy freezes the
        call instead — the document keeps the intensional node, the
        relevance loop stops retrieving it, and nothing is lost.
        """
        if policy is FaultPolicy.SKIP:
            self.document.replace_call(call, [])
            self.metrics.calls_skipped += 1
        else:
            call.activation = Activation.FROZEN
            self.metrics.calls_frozen += 1

    def _check_io(self, errors: list[str]) -> None:
        """Handle parameter/output type violations per the fault policy."""
        if not errors:
            return
        if self.config.fault_policy is FaultPolicy.RAISE:
            raise SchemaError("; ".join(errors))
        self.metrics.io_violations += len(errors)

    def _push_is_safe(self, call: Node, target_uid: int) -> bool:
        """May the call's full result matter to any *other* query node?

        Pushing ``sub_q_v`` prunes the reply down to what node ``v``
        needs; that is only safe when no other relevance query could
        retrieve a call at this position (otherwise the pruned data
        might have served that other query node).  The check is a word
        membership test against the other queries' position languages.
        """
        position = call_position(call)
        for uid, rquery in self._queries_by_target.items():
            if uid == target_uid:
                continue
            nfa = self._position_nfas.get(uid)
            if nfa is None:
                nfa = automata.from_linear_steps(
                    list(rquery.linear_steps),
                    descendant_tail=rquery.descendant_tail,
                )
                self._position_nfas[uid] = nfa
            if nfa.accepts(position):
                return False
        return True

    def _pushed_for(self, target_uid: int) -> Optional[PushedSubquery]:
        pushed = self._pushed_cache.get(target_uid)
        if pushed is None:
            target = self._nodes_by_uid.get(target_uid)
            if target is None:
                return None
            pushed = pushed_subquery_for(self.query, target)
            self._pushed_cache[target_uid] = pushed
        return pushed

    def _account_round(
        self,
        times: list[float],
        layer_index: Optional[int],
        parallel: bool,
        makespan: Optional[float] = None,
    ) -> None:
        # ``times`` has one entry per *attempted* invocation, including
        # fully-faulted ones (their failed-attempt + backoff time) — so
        # fault-only rounds still count toward the ``max_rounds`` budget.
        # ``makespan`` (batch-scheduled rounds) overrides the parallel
        # charge: under bounded concurrency a round costs its schedule's
        # makespan, not max(times).
        if not times:
            return
        if makespan is None:
            makespan = max(times) if parallel else sum(times)
        self.metrics.invocation_rounds += 1
        self.metrics.simulated_sequential_s += sum(times)
        self.metrics.simulated_parallel_s += makespan
        self.rounds.append(
            RoundRecord(
                layer_index=layer_index,
                calls=tuple(f"{t:.4f}" for t in times),
                parallel=parallel,
                simulated_time_s=makespan,
            )
        )

    # -- final evaluation -----------------------------------------------------------------------

    def final_evaluation(self) -> MatchSet:
        cache = self.answer_cache
        if cache is None:
            with self._column_span():
                return self._make_matcher(self.query).evaluate(self.document)
        with self.tracer.span(ANSWER_MAINT, seeded=cache.seeded) as span:
            before_full = cache.full_matches
            before_scopes = cache.scope_rematches
            rows = cache.rows()
            if before_full == cache.full_matches:
                # Served by maintenance (hit or dirty-scope resplice),
                # not by a from-scratch match of the whole document.
                self._maintained_rows = len(rows)
            if span is not None:
                span.tags["rows"] = len(rows)
                span.tags["scope_rematches"] = (
                    cache.scope_rematches - before_scopes
                )
        return rows


# -- F-guide residual verification (Section 6.2, "NFQ filtering") ------------------


def _verify_candidate(
    rquery: RelevanceQuery, candidate: Node, matcher: Matcher
) -> bool:
    """Check the non-linear conditions of an NFQ for one guide candidate.

    The guide guaranteed the candidate's *position* matches
    ``q_v^lin``; what remains is to align the NFQ's spine with the
    candidate's ancestor chain and check every condition branch at the
    aligned nodes (boolean semantics — value joins are ignored, the safe
    approximation of Section 6).
    """
    if rquery.output.function_names is not None:
        if candidate.label not in rquery.output.function_names:
            return False
    spine = rquery.pattern.spine_nodes(rquery.output)
    chain = spine[:-1]  # the data nodes above the output
    ancestors = [candidate]
    ancestors.extend(candidate.iter_ancestors())
    ancestors.reverse()
    ancestors = ancestors[:-1]  # drop the candidate itself
    if not chain or not ancestors:
        return not chain

    spine_uids = {node.uid for node in spine}

    def conditions_hold(pnode: PatternNode, dnode: Node) -> bool:
        if not matcher.node_test(pnode, dnode):
            return False
        for child in pnode.children:
            if child.uid in spine_uids:
                continue
            if not matcher.condition_holds(child, dnode):
                return False
        return True

    def align(pi: int, di: int) -> bool:
        if not conditions_hold(chain[pi], ancestors[di]):
            return False
        if pi == len(chain) - 1:
            # The output hangs off chain[-1]: for a child edge the
            # aligned ancestor must be the candidate's parent; for a
            # descendant edge any proper ancestor works.
            if rquery.output.edge is EdgeKind.CHILD:
                return di == len(ancestors) - 1
            return True
        nxt = chain[pi + 1]
        if nxt.edge is EdgeKind.CHILD:
            return di + 1 < len(ancestors) and align(pi + 1, di + 1)
        return any(align(pi + 1, dj) for dj in range(di + 1, len(ancestors)))

    return align(0, 0)
