"""Engine configuration: strategies and tunables."""

from __future__ import annotations

import dataclasses
import difflib
import enum
from typing import Optional, Union

from ..obs.trace import NullTracer, TraceSink, Tracer
from ..pattern.match import MatchOptions
from ..services.resilience import CircuitBreakerPolicy, RetryPolicy
from ..services.service import PushMode


class Strategy(enum.Enum):
    """The evaluation strategies compared throughout the paper.

    * ``NAIVE`` — Section 1's strawman: invoke every call recursively to
      a fixpoint, then run the query on the materialised document.
    * ``TOP_DOWN`` — Section 1's "less naive" baseline: traverse the
      document top-down along the query paths, invoking (sequentially,
      with restarts) every call encountered on a traversed path.  Its
      invocation set coincides with the LPQ criterion, but it neither
      batches nor parallelises.
    * ``LAZY_LPQ`` — relevant-call detection with linear path queries
      (Section 3.1; also the "relaxed NFQ" end of Section 6.1).
    * ``LAZY_NFQ`` — node-focused queries (Section 3.2): exact relevance
      under the any-output assumption (Proposition 1).
    * ``LAZY_NFQ_TYPED`` — NFQs refined with function signatures
      (Section 5): exact relevance.
    """

    NAIVE = "naive"
    TOP_DOWN = "top-down"
    LAZY_LPQ = "lazy-lpq"
    LAZY_NFQ = "lazy-nfq"
    LAZY_NFQ_TYPED = "lazy-nfq-typed"


class TypingMode(enum.Enum):
    """Which satisfiability oracle refines the NFQs (Sections 5, 6.1)."""

    NONE = "none"
    LENIENT = "lenient"
    EXACT = "exact"


class FaultPolicy(enum.Enum):
    """What to do when a service invocation fails.

    * ``RAISE`` — propagate the fault to the caller (the default);
    * ``SKIP`` — legacy tolerance: *delete* the faulted call's subtree
      and continue.  Lossy — a transient blip changes query answers —
      and kept only for backward compatibility behind this explicit
      policy;
    * ``FREEZE`` — mark the faulted call
      :attr:`~repro.axml.node.Activation.FROZEN` and continue: the
      document keeps the intensional call, answers degrade to "what the
      available data supports", and nothing is lost.  The recommended
      (and default) non-raising policy;
    * ``RETRY`` — re-attempt per :class:`EngineConfig.retry` with
      backoff; calls still failing after the last attempt (or
      short-circuited by an open breaker) are frozen, as in ``FREEZE``.
    """

    RAISE = "raise"
    SKIP = "skip"
    FREEZE = "freeze"
    RETRY = "retry"

    @classmethod
    def default_non_raising(cls) -> "FaultPolicy":
        """The policy tolerant configurations should reach for."""
        return cls.FREEZE


@dataclasses.dataclass(kw_only=True)
class EngineConfig:
    """Tunables of :class:`repro.lazy.engine.LazyQueryEvaluator`.

    Defaults reproduce the paper's full system: layered NFQA with
    parallel rounds, no F-guide (opt in), no pushing (opt in).

    All fields are keyword-only and validated on construction — a bad
    value fails immediately with the offending field named, instead of
    surfacing deep inside the engine.
    """

    strategy: Strategy = Strategy.LAZY_NFQ
    typing: TypingMode = TypingMode.NONE
    use_layers: bool = True
    parallel: bool = True
    speculative: bool = False
    """Fire *every* currently-relevant call of a round in parallel, even
    when condition (*) does not guarantee independence — Section 4.4's
    closing remark: "one may be able to reduce the time it takes to
    produce the answer by calling functions in parallel just in case".
    Trades possibly-wasted invocations for fewer rounds; never changes
    the result (results of calls that turn out irrelevant cannot
    contribute to any embedding)."""
    use_fguide: bool = False
    push_mode: PushMode = PushMode.NONE
    dedupe_relevance_queries: bool = True
    drop_value_joins: bool = False
    fault_policy: FaultPolicy = FaultPolicy.RAISE
    retry: RetryPolicy = RetryPolicy()
    """Retry/backoff/timeout tunables, active under
    ``FaultPolicy.RETRY`` (other policies make a single attempt, though
    ``retry.timeout_s`` still bounds it)."""
    breaker: Optional[CircuitBreakerPolicy] = CircuitBreakerPolicy()
    """Per-service circuit breaking; ``None`` disables it.  Breaker
    *state* lives on the bus, so it persists across evaluations that
    share a :class:`~repro.services.registry.ServiceBus`."""
    validate_io: bool = False
    """Validate call parameters against the service input type before
    invoking, and (un-pushed) results against the output type after —
    the [21] interplay the paper's introduction describes.  Violations
    follow ``fault_policy``: raise a SchemaError, or count-and-continue.
    """
    max_invocations: int = 100_000
    max_rounds: int = 100_000
    max_concurrency: int = 1
    """How many calls of one parallel round may be in flight at once on
    the simulated clock.  1 (the default) keeps the legacy serial clock;
    > 1 dispatches each round as a batch through the bus scheduler and
    charges the batch's *makespan* instead of the sum (Section 4.4's
    non-blocking independent calls)."""
    use_threads: bool = True
    """Under ``max_concurrency > 1``, also run the real service work on
    a thread pool (grouped per service) so wall-clock-heavy services
    overlap.  Never affects simulated accounting."""
    call_cache: bool = False
    """Memoize call replies on the bus (service + argument-forest
    digest): duplicate calls cost zero simulated time.  Opt-in because
    it assumes services are functions of their parameters."""
    incremental: bool = False
    """Incremental relevance analysis: maintain a
    :class:`~repro.axml.index.LabelIndex` through splice deltas (the
    matcher serves descendant steps from it) and memoize each relevance
    query's retrieved-call set, re-running only the queries whose label
    footprint a splice touched (``repro.lazy.incremental``).  Never
    changes answers or invocation sets; opt-in so the exhaustive
    re-evaluation stays available as the oracle.  Ignored by the
    non-lazy strategies and under ``push_mode=BINDINGS`` (overlay
    rows change match results without document events)."""
    shared_matching: bool = False
    """Shared relevance matching: compile the layer's relevance queries
    into one :class:`~repro.pattern.multimatch.PatternGroup` and answer
    them all in a single projected document pass per round, instead of
    one full traversal per query (``repro.pattern.multimatch``).
    Composes with ``incremental`` (the group pass only re-runs cache
    misses, and the cache screens splices against the family's merged
    footprint) and with ``use_fguide`` (the guide then seeds the
    projection set; retrieved sets follow full NFQ semantics rather
    than the guide's boolean residual filter, which can only shrink
    them).  Never changes answers or invocation order; opt-in so the
    per-query walker stays available as the oracle.  Ignored by the
    non-lazy strategies and under ``push_mode=BINDINGS`` (overlay
    lookups are keyed by the actual pattern node, which canonical
    sharing would conflate)."""
    arena: bool = False
    """Column-backed matching: mirror the document into a
    :class:`~repro.axml.arena.DocumentArena` (struct-of-arrays over
    interned label ids, maintained through splice deltas) and serve the
    hot traversals — descendant candidate enumeration, exists-below
    checks, group-pass projection, label-index rebuilds — as tight
    loops over the int columns instead of object walks.  Never changes
    answers; opt-in so the object walk stays available as the
    differential oracle.  An arena already attached to the document (as
    ``document.arena``, e.g. by the workload factory) is reused;
    otherwise the engine builds one per evaluation and detaches it at
    teardown."""
    column_match: bool = False
    """Column-native pattern matching: compile each pattern into a
    slot-level plan and evaluate it *entirely* over the arena's int
    columns (``repro.pattern.columnmatch``), materialising ``Node``
    objects only for the final result rows.  Requires ``arena`` (auto-
    off without one); stands down per evaluation — counted as
    ``column_fallbacks`` — on ``push_mode=BINDINGS`` overlays and on
    shapes the plan compiler refuses (OR nodes, interior data
    wildcards), where the object walk answers as before.  Never changes
    answers or invocation order; opt-in so the walk stays the
    differential oracle."""
    shards: int = 1
    """Shard-parallel group passes: partition the document root's
    depth-1 subtrees into this many contiguous ranges and dispatch one
    scoped group scan per range through the bus scheduler vocabulary,
    composing the per-shard answers deterministically in shard index
    order (``repro.pattern.shards``).  1 (the default) keeps the single
    full pass; > 1 requires ``shared_matching`` to have a group pass to
    shard, and stands down to one pass whenever the scoped-composition
    law does not cover the member family."""
    maintain_answers: bool = False
    """Delta-driven answer maintenance for continuous queries
    (``repro.lazy.answers``): materialise the standing query's snapshot
    result per depth-1 document subtree, screen every splice against the
    query's label footprint, and on refresh re-match only the dirty
    subtrees — splicing added/retracted rows into the cached
    :class:`~repro.pattern.match.MatchSet` instead of re-running the
    final match from scratch.  When every delta since the last refresh
    was screened clean against the family's guard footprint, the refresh
    skips the engine entirely.  Never changes answers or invocation
    order; opt-in so full re-evaluation stays available as the
    differential oracle.  Ignored under ``push_mode=BINDINGS`` (overlay
    rows change match results without document events) and outside
    :class:`~repro.lazy.continuous.ContinuousQuery` (one-shot
    evaluations have no cache to maintain)."""
    call_cache_ttl_s: Optional[float] = None
    """Expiry for memoized replies, in *simulated* seconds (None =
    no expiry).  Only meaningful with ``call_cache=True``."""
    match_options: Optional[MatchOptions] = None
    """Embedding-semantics knobs for every matcher the engine builds
    (:class:`~repro.pattern.match.MatchOptions`), so one config object
    can carry the complete evaluation behaviour.  ``None`` (the
    default) means the engine's defaults; passing *both* this and the
    separate ``match_options=`` argument of ``repro.evaluate`` /
    :class:`~repro.lazy.engine.LazyQueryEvaluator` with differing
    values raises instead of silently preferring one."""
    trace: Union[TraceSink, Tracer, NullTracer, None] = None
    """Where evaluation spans go: a :class:`repro.obs.TraceSink` (the
    engine wraps a tracer around it, binding the simulated clock to the
    bus), an existing :class:`repro.obs.Tracer`, or ``None`` (tracing
    off, the default — near-zero overhead)."""

    _BOOL_FIELDS = (
        "use_layers",
        "parallel",
        "speculative",
        "use_fguide",
        "dedupe_relevance_queries",
        "drop_value_joins",
        "validate_io",
        "use_threads",
        "call_cache",
        "incremental",
        "shared_matching",
        "arena",
        "column_match",
        "maintain_answers",
    )

    def __post_init__(self) -> None:
        # Enum-valued fields accept the enum's string value ("retry",
        # "lazy-nfq"...): a plain string would compare unequal to the
        # enum and silently change semantics; coerce or fail loudly,
        # naming the field.
        self.strategy = self._coerce_enum("strategy", Strategy, self.strategy)
        self.typing = self._coerce_enum("typing", TypingMode, self.typing)
        self.push_mode = self._coerce_enum("push_mode", PushMode, self.push_mode)
        self.fault_policy = self._coerce_enum(
            "fault_policy", FaultPolicy, self.fault_policy
        )
        for name in self._BOOL_FIELDS:
            if not isinstance(getattr(self, name), bool):
                raise TypeError(
                    f"EngineConfig.{name} must be a bool, "
                    f"got {getattr(self, name)!r}"
                )
        for name in ("max_invocations", "max_rounds", "max_concurrency", "shards"):
            bound = getattr(self, name)
            if not isinstance(bound, int) or isinstance(bound, bool) or bound < 1:
                raise ValueError(
                    f"EngineConfig.{name} must be a positive integer, "
                    f"got {bound!r}"
                )
        if self.call_cache_ttl_s is not None and (
            not isinstance(self.call_cache_ttl_s, (int, float))
            or isinstance(self.call_cache_ttl_s, bool)
            or self.call_cache_ttl_s <= 0
        ):
            raise ValueError(
                f"EngineConfig.call_cache_ttl_s must be a positive number "
                f"or None, got {self.call_cache_ttl_s!r}"
            )
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError(
                f"EngineConfig.retry must be a RetryPolicy, got {self.retry!r}"
            )
        if self.breaker is not None and not isinstance(
            self.breaker, CircuitBreakerPolicy
        ):
            raise TypeError(
                f"EngineConfig.breaker must be a CircuitBreakerPolicy "
                f"or None, got {self.breaker!r}"
            )
        if self.match_options is not None and not isinstance(
            self.match_options, MatchOptions
        ):
            raise TypeError(
                f"EngineConfig.match_options must be a MatchOptions or "
                f"None, got {self.match_options!r}"
            )
        if self.trace is not None and not (
            isinstance(self.trace, (Tracer, NullTracer))
            or hasattr(self.trace, "on_span_end")
        ):
            raise TypeError(
                f"EngineConfig.trace must be a TraceSink, a Tracer or "
                f"None, got {self.trace!r}"
            )
        if self.strategy is Strategy.LAZY_NFQ_TYPED and self.typing is TypingMode.NONE:
            self.typing = TypingMode.LENIENT
        if self.strategy in (Strategy.NAIVE, Strategy.TOP_DOWN):
            self.use_layers = False
        if self.strategy is Strategy.TOP_DOWN:
            self.parallel = False

    @staticmethod
    def _coerce_enum(name, enum_type, value):
        if isinstance(value, enum_type):
            return value
        try:
            return enum_type(value)
        except ValueError:
            choices = ", ".join(repr(member.value) for member in enum_type)
            raise ValueError(
                f"EngineConfig.{name} must be a {enum_type.__name__} "
                f"(or one of {choices}), got {value!r}"
            ) from None

    @classmethod
    def tolerant(cls, **kwargs) -> "EngineConfig":
        """A config that survives remote faults without losing data:
        ``FREEZE`` (the non-raising default) unless overridden."""
        kwargs.setdefault("fault_policy", FaultPolicy.default_non_raising())
        return cls(**kwargs)

    @classmethod
    def serving(cls, **kwargs) -> "EngineConfig":
        """The preset for long-lived standing queries behind a
        :class:`~repro.serve.QueryServer` (or ``repro.subscribe``).

        Everything the serving layer leans on is switched on at once:
        delta-driven answer maintenance (engine skips on quiet
        refreshes), incremental relevance analysis, the shared
        multi-query matching pass, the bus-level call cache, a
        concurrent invocation scheduler, and the non-raising ``FREEZE``
        fault policy — a server must degrade, not raise.  Every choice
        can be overridden by keyword, e.g.
        ``EngineConfig.serving(call_cache=False)``.
        """
        kwargs.setdefault("maintain_answers", True)
        kwargs.setdefault("incremental", True)
        kwargs.setdefault("shared_matching", True)
        kwargs.setdefault("call_cache", True)
        kwargs.setdefault("max_concurrency", 4)
        kwargs.setdefault("fault_policy", FaultPolicy.default_non_raising())
        return cls(**kwargs)

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """Every configurable field, in declaration order."""
        return tuple(f.name for f in dataclasses.fields(cls))

    @classmethod
    def nearest_field(cls, name: str) -> Optional[str]:
        """The configured field whose name is closest to ``name``.

        The serving entry points accept exactly one ``config=`` object
        and no loose engine kwargs; when a caller passes one anyway
        (``QueryServer(..., maintain_answer=True)``), the rejection
        names the nearest real :class:`EngineConfig` field — the same
        fail-loudly-naming-the-field contract ``__post_init__``
        applies to bad values.
        """
        matches = difflib.get_close_matches(
            name, cls.field_names(), n=1, cutoff=0.4
        )
        return matches[0] if matches else None

    @property
    def label(self) -> str:
        parts = [self.strategy.value]
        if self.typing is not TypingMode.NONE and self.strategy not in (
            Strategy.NAIVE,
            Strategy.TOP_DOWN,
        ):
            parts.append(self.typing.value)
        if self.speculative:
            parts.append("spec")
        if self.use_fguide:
            parts.append("fguide")
        if self.push_mode is not PushMode.NONE:
            parts.append(f"push-{self.push_mode.value}")
        if self.max_concurrency > 1:
            parts.append(f"conc{self.max_concurrency}")
        if self.call_cache:
            parts.append("cache")
        if self.incremental:
            parts.append("inc")
        if self.shared_matching:
            parts.append("shared")
        if self.arena:
            parts.append("arena")
        if self.column_match:
            parts.append("colmatch")
        if self.shards > 1:
            parts.append(f"shard{self.shards}")
        if self.maintain_answers:
            parts.append("ans")
        return "+".join(parts)
