"""Engine configuration: strategies and tunables."""

from __future__ import annotations

import dataclasses
import enum

from ..services.service import PushMode


class Strategy(enum.Enum):
    """The evaluation strategies compared throughout the paper.

    * ``NAIVE`` — Section 1's strawman: invoke every call recursively to
      a fixpoint, then run the query on the materialised document.
    * ``TOP_DOWN`` — Section 1's "less naive" baseline: traverse the
      document top-down along the query paths, invoking (sequentially,
      with restarts) every call encountered on a traversed path.  Its
      invocation set coincides with the LPQ criterion, but it neither
      batches nor parallelises.
    * ``LAZY_LPQ`` — relevant-call detection with linear path queries
      (Section 3.1; also the "relaxed NFQ" end of Section 6.1).
    * ``LAZY_NFQ`` — node-focused queries (Section 3.2): exact relevance
      under the any-output assumption (Proposition 1).
    * ``LAZY_NFQ_TYPED`` — NFQs refined with function signatures
      (Section 5): exact relevance.
    """

    NAIVE = "naive"
    TOP_DOWN = "top-down"
    LAZY_LPQ = "lazy-lpq"
    LAZY_NFQ = "lazy-nfq"
    LAZY_NFQ_TYPED = "lazy-nfq-typed"


class TypingMode(enum.Enum):
    """Which satisfiability oracle refines the NFQs (Sections 5, 6.1)."""

    NONE = "none"
    LENIENT = "lenient"
    EXACT = "exact"


class FaultPolicy(enum.Enum):
    """What to do when a service invocation fails."""

    RAISE = "raise"
    SKIP = "skip"


@dataclasses.dataclass
class EngineConfig:
    """Tunables of :class:`repro.lazy.engine.LazyQueryEvaluator`.

    Defaults reproduce the paper's full system: layered NFQA with
    parallel rounds, no F-guide (opt in), no pushing (opt in).
    """

    strategy: Strategy = Strategy.LAZY_NFQ
    typing: TypingMode = TypingMode.NONE
    use_layers: bool = True
    parallel: bool = True
    speculative: bool = False
    """Fire *every* currently-relevant call of a round in parallel, even
    when condition (*) does not guarantee independence — Section 4.4's
    closing remark: "one may be able to reduce the time it takes to
    produce the answer by calling functions in parallel just in case".
    Trades possibly-wasted invocations for fewer rounds; never changes
    the result (results of calls that turn out irrelevant cannot
    contribute to any embedding)."""
    use_fguide: bool = False
    push_mode: PushMode = PushMode.NONE
    dedupe_relevance_queries: bool = True
    drop_value_joins: bool = False
    fault_policy: FaultPolicy = FaultPolicy.RAISE
    validate_io: bool = False
    """Validate call parameters against the service input type before
    invoking, and (un-pushed) results against the output type after —
    the [21] interplay the paper's introduction describes.  Violations
    follow ``fault_policy``: raise a SchemaError, or count-and-continue.
    """
    max_invocations: int = 100_000
    max_rounds: int = 100_000

    def __post_init__(self) -> None:
        if self.strategy is Strategy.LAZY_NFQ_TYPED and self.typing is TypingMode.NONE:
            self.typing = TypingMode.LENIENT
        if self.strategy in (Strategy.NAIVE, Strategy.TOP_DOWN):
            self.use_layers = False
        if self.strategy is Strategy.TOP_DOWN:
            self.parallel = False

    @property
    def label(self) -> str:
        parts = [self.strategy.value]
        if self.typing is not TypingMode.NONE and self.strategy not in (
            Strategy.NAIVE,
            Strategy.TOP_DOWN,
        ):
            parts.append(self.typing.value)
        if self.speculative:
            parts.append("spec")
        if self.use_fguide:
            parts.append("fguide")
        if self.push_mode is not PushMode.NONE:
            parts.append(f"push-{self.push_mode.value}")
        return "+".join(parts)
