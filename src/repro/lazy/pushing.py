"""Query pushing (Section 7).

Even a relevant call may return far more data than the query needs, so
the engine can ship a subquery along with the invocation.  This module
answers the two questions the paper poses:

* **Which subquery to push over a call?**  The call was retrieved by the
  NFQ ``q_v`` of some node ``v``; the subquery is exactly ``sub_q_v``,
  the subtree of the user query rooted at ``v`` — with every variable
  marked as a result node so that value joins with the rest of the query
  survive the trip.

* **How to use the results?**  A *filtered-forest* reply is spliced into
  the document like any call result.  A *bindings* reply ("X,Y binding
  pairs … and not restaurant elements") is recorded in a
  :class:`BindingsOverlay`: a side table mapping
  ``(position, query node v)`` to binding tuples, which the matcher
  consults during both later relevance evaluation and the final query
  evaluation — a row counts as a ready-made embedding of ``sub_q_v`` at
  that position.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..axml.node import Node, value
from ..pattern.nodes import EdgeKind, PatternNode
from ..pattern.pattern import TreePattern
from ..services.service import BindingRow


@dataclasses.dataclass(frozen=True)
class PushedSubquery:
    """A subquery ready to ship with a call."""

    target_uid: int
    """uid of ``v`` in the original user query."""
    pattern: TreePattern
    """``sub_q_v`` with all variables marked as result nodes."""
    anchor_edge: EdgeKind
    """how ``v`` hangs in the query: child = result roots only,
    descendant = anywhere inside the result."""
    bindable: bool
    """True when every result node is a variable, so the bindings
    protocol can represent complete answers."""


def pushed_subquery_for(query: TreePattern, target: PatternNode) -> PushedSubquery:
    """Compute the subquery to push for calls retrieved by ``q_v``."""
    sub = query.subtree_at(target, name=f"push@{target.uid}:{query.name}")
    for node in sub.nodes():
        if node.is_variable:
            node.is_result = True
    bindable = all(node.is_variable for node in sub.result_nodes())
    return PushedSubquery(
        target_uid=target.uid,
        pattern=sub,
        anchor_edge=target.edge,
        bindable=bindable,
    )


class OverlayRow:
    """One remote binding tuple, with synthetic nodes for result slots."""

    __slots__ = ("bindings", "nodes_by_uid")

    def __init__(
        self, bindings: dict[str, str], nodes_by_uid: dict[int, Node]
    ) -> None:
        self.bindings = bindings
        self.nodes_by_uid = nodes_by_uid

    def merge_env(self, env: dict[str, str]) -> Optional[dict[str, str]]:
        """Join the row's bindings into an embedding environment."""
        merged = env
        fresh = False
        for name, val in self.bindings.items():
            bound = merged.get(name)
            if bound is None:
                if not fresh:
                    merged = dict(merged)
                    fresh = True
                merged[name] = val
            elif bound != val:
                return None
        return merged


class BindingsOverlay:
    """Side table of pushed-bindings replies, consulted by the matcher."""

    def __init__(self) -> None:
        self._entries: dict[tuple[int, int], list[OverlayRow]] = {}
        self._positions: dict[int, list[tuple[Node, list[OverlayRow]]]] = {}
        self.row_count = 0

    def add(
        self,
        position_node: Node,
        pushed: PushedSubquery,
        rows: list[BindingRow],
    ) -> None:
        """Record a bindings reply received at a call position.

        ``position_node`` is the (still live) parent element the call was
        removed from — the exact position the reply stands for.
        """
        result_nodes = pushed.pattern.result_nodes()
        overlay_rows = []
        for row in rows:
            values = row.as_dict()
            nodes_by_uid: dict[int, Node] = {}
            for rnode in result_nodes:
                origin = rnode.origin if rnode.origin is not None else rnode.uid
                bound = values.get(rnode.label)
                if bound is None:
                    continue
                nodes_by_uid[origin] = value(bound)
            overlay_rows.append(OverlayRow(values, nodes_by_uid))
        key = (id(position_node), pushed.target_uid)
        self._entries.setdefault(key, []).extend(overlay_rows)
        self._positions.setdefault(pushed.target_uid, []).append(
            (position_node, overlay_rows)
        )
        self.row_count += len(overlay_rows)

    def lookup(self, dnode: Node, pnode: PatternNode) -> list[OverlayRow]:
        """Rows standing for embeddings of the subtree at ``pnode`` when
        its parent pattern node is matched at ``dnode``."""
        origin = pnode.origin if pnode.origin is not None else pnode.uid
        direct = self._entries.get((id(dnode), origin))
        if direct:
            return direct
        if pnode.is_or:
            out: list[OverlayRow] = []
            for alt in pnode.children:
                out.extend(self.lookup(dnode, alt))
            return out
        return []

    def positions(
        self, pnode: PatternNode
    ) -> list[tuple[Node, list[OverlayRow]]]:
        """Every ``(position, rows)`` recorded for the subtree at
        ``pnode`` — the matcher filters by reachability for descendant
        steps, where a reply received at a call deep in the document
        stands for embeddings the walk from an ancestor would have found
        in the spliced forest."""
        origin = pnode.origin if pnode.origin is not None else pnode.uid
        out = list(self._positions.get(origin, ()))
        if pnode.is_or:
            for alt in pnode.children:
                out.extend(self.positions(alt))
        return out

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BindingsOverlay(entries={len(self._entries)}, rows={self.row_count})"
