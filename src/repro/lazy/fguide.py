"""Function-call guides (Section 6.2).

In the spirit of dataguides [11], an F-guide summarises — with a single
occurrence per path — exactly the label paths of a document that lead to
function calls, and stores for each path its *extent*: pointers to the
call nodes sitting there.  Because LPQs are linear, they yield the same
result on the document and on its (much more compact) F-guide, so
relevance detection can run on the guide instead of the data.

The guide is built in one document-order traversal (linear time) and
maintained incrementally through the document-observer hook as calls are
invoked and results (with new calls) are spliced in.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..axml.document import Document
from ..axml.node import Node
from ..axml.paths import LabelPath, call_position
from ..pattern.nodes import EdgeKind
from ..pattern.pattern import LinearStep


class _GuideNode:
    """One node of the path trie."""

    __slots__ = ("label", "children", "extents")

    def __init__(self, label: str) -> None:
        self.label = label
        self.children: dict[str, _GuideNode] = {}
        # service name -> {node_id: function node}
        self.extents: dict[str, dict[int, Node]] = {}

    def child(self, label: str) -> "_GuideNode":
        node = self.children.get(label)
        if node is None:
            node = _GuideNode(label)
            self.children[label] = node
        return node

    def add_call(self, call: Node) -> None:
        assert call.node_id is not None
        self.extents.setdefault(call.label, {})[call.node_id] = call

    def remove_call(self, call: Node) -> bool:
        assert call.node_id is not None
        bucket = self.extents.get(call.label)
        if bucket is None or call.node_id not in bucket:
            return False
        del bucket[call.node_id]
        if not bucket:
            del self.extents[call.label]
        return True

    def is_prunable(self) -> bool:
        return not self.children and not self.extents


class FGuide:
    """The F-guide of a document, kept in sync via the observer hook."""

    def __init__(self, document: Document) -> None:
        self.document = document
        self.root = _GuideNode(document.root.label)
        self._position_of: dict[int, LabelPath] = {}
        self.rebuild()
        document.add_observer(self)

    def detach(self) -> None:
        """Stop observing the document (the guide goes stale)."""
        self.document.remove_observer(self)

    # -- construction / maintenance ------------------------------------------------

    def rebuild(self) -> None:
        """Single document-order traversal (linear time, Section 6.2)."""
        self.root = _GuideNode(self.document.root.label)
        self._position_of.clear()
        for call in self.document.function_nodes():
            self._insert(call)

    def _insert(self, call: Node) -> None:
        position = call_position(call)
        if position[0] != self.root.label:
            raise ValueError("call position does not start at the root label")
        node = self.root
        for label in position[1:]:
            node = node.child(label)
        node.add_call(call)
        assert call.node_id is not None
        self._position_of[call.node_id] = position

    # DocumentObserver protocol -------------------------------------------------------

    def call_removed(self, document: Document, node: Node) -> None:
        assert node.node_id is not None
        position = self._position_of.pop(node.node_id, None)
        if position is None:
            return
        self._remove_at(position, node)

    def calls_added(self, document: Document, nodes: list[Node]) -> None:
        for call in nodes:
            self._insert(call)

    def _remove_at(self, position: LabelPath, call: Node) -> None:
        chain: list[_GuideNode] = [self.root]
        node = self.root
        for label in position[1:]:
            nxt = node.children.get(label)
            if nxt is None:
                return
            chain.append(nxt)
            node = nxt
        node.remove_call(call)
        # Prune now-empty trie branches so the guide stays compact.
        for depth in range(len(chain) - 1, 0, -1):
            if chain[depth].is_prunable():
                del chain[depth - 1].children[chain[depth].label]
            else:
                break

    # -- lookups -------------------------------------------------------------------------

    def candidates(
        self,
        steps: Iterable[LinearStep],
        function_names: Optional[frozenset[str]] = None,
        descendant_tail: bool = False,
    ) -> list[Node]:
        """Calls whose position matches a linear path (an LPQ lookup).

        ``steps`` is ``q_v^lin`` — the path to the *parent* of the calls
        (root included).  ``function_names`` optionally restricts the
        service names (the type-based filtering of Section 6.2); with
        ``descendant_tail`` calls at any depth below the path qualify
        (the target hangs by a descendant edge).
        """
        steps = list(steps)
        if not steps:
            return []
        first, rest = steps[0], steps[1:]
        starts: list[_GuideNode] = []
        if first.edge is EdgeKind.CHILD:
            if first.label is None or first.label == self.root.label:
                starts = [self.root]
        else:
            # Descendant first step: the root or anything below it.
            starts = [
                trie
                for trie in self._all_nodes()
                if first.label is None or trie.label == first.label
            ]
        hits: dict[int, Node] = {}
        for start in starts:
            self._collect(start, rest, function_names, hits, descendant_tail)
        return [hits[node_id] for node_id in sorted(hits)]

    def _collect(
        self,
        trie: _GuideNode,
        steps: list[LinearStep],
        function_names: Optional[frozenset[str]],
        hits: dict[int, Node],
        descendant_tail: bool,
    ) -> None:
        if not steps:
            frontier = [trie]
            while frontier:
                node = frontier.pop()
                for fname, bucket in node.extents.items():
                    if function_names is None or fname in function_names:
                        hits.update(bucket)
                if descendant_tail:
                    frontier.extend(node.children.values())
            return
        step, rest = steps[0], steps[1:]
        if step.edge is EdgeKind.CHILD:
            if step.label is None:
                for child in trie.children.values():
                    self._collect(child, rest, function_names, hits, descendant_tail)
            else:
                child = trie.children.get(step.label)
                if child is not None:
                    self._collect(child, rest, function_names, hits, descendant_tail)
            return
        # Descendant step: any depth >= 1, then the label.
        stack = list(trie.children.values())
        while stack:
            node = stack.pop()
            if step.label is None or node.label == step.label:
                self._collect(node, rest, function_names, hits, descendant_tail)
            stack.extend(node.children.values())

    def _all_nodes(self) -> list[_GuideNode]:
        out = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children.values())
        return out

    def function_extents(
        self, names: Optional[Iterable[str]] = None
    ) -> list[Node]:
        """Every call node currently summarised, optionally restricted
        to the given service names.

        This is the projection-source lookup of
        :class:`repro.pattern.multimatch.PatternGroup`: the guide
        already points at every call in the document, so the group can
        seed its projection set without a document walk.
        """
        wanted = None if names is None else set(names)
        out: list[Node] = []
        for trie in self._all_nodes():
            for fname, bucket in trie.extents.items():
                if wanted is None or fname in wanted:
                    out.extend(bucket.values())
        return out

    # -- measurements -------------------------------------------------------------------------

    def size(self) -> int:
        """Number of trie nodes (the compactness figure of Section 6.2)."""
        return len(self._all_nodes())

    def call_count(self) -> int:
        return len(self._position_of)

    def paths(self) -> list[tuple[str, ...]]:
        """All distinct call positions currently summarised."""
        return sorted(set(self._position_of.values()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FGuide(nodes={self.size()}, calls={self.call_count()})"
