"""Side-by-side strategy comparisons, as the experiments print them.

A convenience for users (and the example scripts): evaluate the same
query under several configurations over fresh copies of a document and
render an aligned table of the metrics the paper reports on.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Optional, Sequence, Union

from ..axml.document import Document
from ..obs.profile import format_phase_profile, phase_profile
from ..obs.trace import InMemorySink, Span
from ..pattern.pattern import TreePattern
from ..schema.schema import Schema
from ..services.registry import ServiceBus
from .config import EngineConfig
from .engine import EvaluationOutcome, LazyQueryEvaluator


@dataclasses.dataclass
class ComparisonRow:
    """One strategy's outcome in a comparison."""

    label: str
    outcome: EvaluationOutcome

    def cells(self) -> tuple:
        m = self.outcome.metrics
        return (
            self.label,
            m.calls_invoked,
            m.invocation_rounds,
            m.relevance_evaluations,
            m.total_bytes,
            round(m.total_time_s, 3),
            round(m.total_time_parallel_s, 3),
            m.faults,
            m.retries,
            m.cache_hits,
            m.result_rows,
        )


HEADERS = (
    "strategy",
    "calls",
    "rounds",
    "rel-evals",
    "bytes",
    "time_s",
    "time_par_s",
    "faults",
    "retries",
    "cache",
    "rows",
)


def compare_strategies(
    configs: Sequence[EngineConfig],
    query: TreePattern,
    document_factory: Callable[[], Document],
    bus_factory: Callable[[], ServiceBus],
    schema: Optional[Schema] = None,
    allow_disagreement: bool = False,
) -> list[ComparisonRow]:
    """Evaluate ``query`` under each config over fresh documents.

    Factories (rather than instances) keep the runs independent: each
    configuration gets its own document copy and its own invocation
    log.  Raises if the configurations disagree on the result — they
    never should (the system's core invariant) *unless* faults are in
    play: a frozen call legitimately hides data, and which calls end up
    frozen depends on the strategy's invocation order.  Fault-injection
    comparisons pass ``allow_disagreement=True``.
    """
    rows: list[ComparisonRow] = []
    reference: Optional[set] = None
    for config in configs:
        engine = LazyQueryEvaluator(bus_factory(), schema=schema, config=config)
        outcome = engine.evaluate(query, document_factory())
        if reference is None:
            reference = outcome.value_rows()
        elif outcome.value_rows() != reference and not allow_disagreement:
            raise AssertionError(
                f"strategy {config.label!r} disagrees on the result "
                f"({len(outcome.value_rows())} vs {len(reference)} rows)"
            )
        rows.append(ComparisonRow(label=config.label, outcome=outcome))
    return rows


def format_trace_profile(
    trace: Union[InMemorySink, Iterable[Span]],
    title: str = "phase profile",
) -> str:
    """Per-phase breakdown of a trace, as an aligned plain-text table.

    Accepts the :class:`~repro.obs.InMemorySink` an evaluation wrote to
    (or its root spans directly) and renders exclusive wall/simulated
    time per phase — where a round's time went: relevance analysis,
    satisfiability, invocation, final match.
    """
    roots = trace.roots if isinstance(trace, InMemorySink) else list(trace)
    return format_phase_profile(phase_profile(roots), title=title)


def format_comparison(rows: Sequence[ComparisonRow], title: str = "") -> str:
    """Render comparison rows as an aligned plain-text table."""
    table = [HEADERS] + [tuple(str(c) for c in row.cells()) for row in rows]
    widths = [max(len(line[i]) for line in table) for i in range(len(HEADERS))]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    header = "  ".join(h.ljust(w) for h, w in zip(HEADERS, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in table[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)
