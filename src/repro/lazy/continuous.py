"""Continuous queries: keeping a full result fresh as documents evolve.

Section 1 of the paper: because "service invocations possibly return
data containing calls to new services ... the detection of relevant
calls becomes a continuous process."  The lazy evaluator is naturally
incremental — re-evaluating over an already-complete document invokes
nothing — so a continuous query is a change-aware wrapper:

* :meth:`ContinuousQuery.refresh` returns the cached outcome instantly
  while the document version is unchanged.  After a mutation it
  consults the maintained answer first (``maintain_answers``): when
  every delta since the last refresh was screened clean against the
  query's guard footprint, the cached result is provably current and
  the engine is skipped outright; otherwise the evaluation re-runs,
  with the final match served by dirty-subtree re-matching from the
  :class:`~repro.lazy.answers.AnswerCache` instead of a full document
  match.  Without ``maintain_answers`` the refresh re-runs the (lazy,
  incremental) evaluation in full — the differential oracle;
* the bus-level call cache is invalidated *scoped*: only the services
  whose call nodes the mutations actually touched are dropped, at most
  once per document version, so standing queries sharing one bus no
  longer evict each other's memoized replies;
* the wrapper never copies the document: it evaluates in place, exactly
  like a standing subscription in the ActiveXML system would.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..axml.document import Document
from ..pattern.pattern import TreePattern
from ..services.service import PushMode
from .answers import AnswerCache, ServiceTouchTracker
from .config import Strategy
from .engine import EvaluationOutcome, LazyQueryEvaluator
from .metrics import Metrics


class ContinuousQuery:
    """A standing query over one (mutating) AXML document.

    This is the engine-facing core; the friendly front door is
    ``repro.subscribe`` (or :meth:`repro.serve.QueryServer.subscribe`),
    which returns a :class:`~repro.serve.Subscription` wrapping one of
    these — with input coercion, a delta stream and admission control
    on top.  Constructing a ``ContinuousQuery`` directly from an
    evaluator stays supported; the old keyword form taking
    ``services=``/``config=`` instead of an evaluator is deprecated in
    favour of ``repro.subscribe``.
    """

    def __init__(
        self,
        evaluator: Optional[LazyQueryEvaluator] = None,
        query: Optional[TreePattern] = None,
        document: Optional[Document] = None,
        eager: bool = True,
        *,
        services=None,
        config=None,
    ) -> None:
        if services is not None or (evaluator is None and config is not None):
            # The pre-serving keyword form built the engine inline.
            # ``repro.subscribe`` is the one front door for that now —
            # it coerces inputs, streams deltas and shares the bus.
            if evaluator is not None:
                raise ValueError(
                    "pass either an evaluator or services=/config=, "
                    "not both"
                )
            warnings.warn(
                "ContinuousQuery(query, document, services=..., "
                "config=...) is deprecated; use repro.subscribe(query, "
                "document, services=..., config=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            from ..services.registry import bus_of

            evaluator = LazyQueryEvaluator(bus_of(services), config=config)
        if evaluator is None or query is None or document is None:
            raise TypeError(
                "ContinuousQuery requires an evaluator, a query and a "
                "document (or the deprecated services=/config= form)"
            )
        self.evaluator = evaluator
        self.query = query
        self.document = document
        self._outcome: Optional[EvaluationOutcome] = None
        self._evaluated_version: Optional[int] = None
        self.refresh_count = 0
        """Refreshes that ran the engine (including maintained ones)."""
        self.engine_skips = 0
        """Refreshes answered from the maintained answer without
        running the engine at all."""
        self.maintained_serves = 0
        """Refreshes served by :meth:`serve_maintained`: the serving
        layer proved relevance quiet, so the answer came straight from
        the :class:`~repro.lazy.answers.AnswerCache` (dirty scopes
        re-matched in place) without running the engine."""
        self._tracker = ServiceTouchTracker(document)
        self._cache: Optional[AnswerCache] = None
        config = evaluator.config
        if (
            config.maintain_answers
            and config.push_mode is not PushMode.BINDINGS
        ):
            # Overlay rows change match results without document events,
            # so maintained answers stay off under pushed bindings.
            self._cache = AnswerCache(
                query,
                document,
                options=evaluator.match_options,
                any_call_relevant=config.strategy is Strategy.NAIVE,
            )
        if eager:
            self.refresh()

    @property
    def answer_cache(self) -> Optional[AnswerCache]:
        """The maintained answer, when ``maintain_answers`` is on."""
        return self._cache

    @property
    def is_stale(self) -> bool:
        """Has the document changed since the last refresh?"""
        return self._evaluated_version != self.document.version

    def close(self) -> None:
        """Detach the document observers (the standing query ends)."""
        self._tracker.detach()
        if self._cache is not None:
            self._cache.detach()
            self._cache = None

    def refresh(self) -> EvaluationOutcome:
        """Return the up-to-date full result, re-evaluating if needed.

        Note that the evaluation itself bumps the document version (it
        invokes calls); the version recorded is the *post-evaluation*
        one, so a quiescent document never re-evaluates.
        """
        if self._outcome is not None and not self.is_stale:
            return self._outcome
        if self._outcome is not None:
            # The document mutated under a standing query: memoized
            # replies of the *touched* services may describe a world
            # that no longer exists.  The drop is scoped — per service,
            # at most once per document version — so standing queries
            # sharing one bus no longer wipe each other's (provably
            # unaffected) memoized replies.
            self.evaluator.bus.invalidate_cache_scoped(
                self.document, self._tracker.drain()
            )
            if (
                self._cache is not None
                and self._cache.is_current
                and self._outcome.metrics.completed
            ):
                # Every delta since the last refresh was screened clean
                # by the guard footprint: no answer row and no relevance
                # result changed, so a full re-evaluation (starting from
                # the previous quiescent state) would invoke nothing and
                # return exactly the cached rows.  Skip the engine.
                self._cache.note_hit()
                self.engine_skips += 1
                self._evaluated_version = self.document.version
                return self._outcome
        else:
            # Nothing evaluated yet: mutations so far predate the first
            # outcome, and the bus cache holds nothing of ours.
            self._tracker.drain()
        self._outcome = self.evaluator.evaluate(
            self.query, self.document, answer_cache=self._cache
        )
        self._evaluated_version = self.document.version
        self.refresh_count += 1
        return self._outcome

    def serve_maintained(self) -> Optional[EvaluationOutcome]:
        """Refresh without the engine, given external proof of quiet.

        The serving layer's cross-tenant group pass
        (:class:`~repro.serve.QueryServer`) re-evaluates *every* due
        subscription's relevance family in one shared traversal.  When
        that pass shows this query retrieves no eligible call (and the
        document holds no ``IMMEDIATE``-activation call), a full engine
        run would invoke nothing — every layer goes quiet immediately —
        and its final match equals the maintained answer.  This method
        performs exactly the refresh bookkeeping minus the engine:
        scoped call-cache invalidation, dirty-scope re-matching through
        the :class:`~repro.lazy.answers.AnswerCache`, version stamping.

        Returns ``None`` when the shortcut is not available — nothing
        evaluated yet, no maintained answer, or the previous evaluation
        did not complete (budget exhaustion may have left genuinely
        relevant calls uninvoked, so only the engine can certify the
        result).  The caller must then fall back to :meth:`refresh`.

        The *proof obligation is the caller's*: calling this without a
        current relevance pass can serve stale rows.
        """
        if self._outcome is not None and not self.is_stale:
            return self._outcome
        if (
            self._outcome is None
            or self._cache is None
            or not self._outcome.metrics.completed
        ):
            return None
        self.evaluator.bus.invalidate_cache_scoped(
            self.document, self._tracker.drain()
        )
        if self._cache.is_current:
            # Guard-screened: same shortcut refresh() would take.
            self._cache.note_hit()
            self.engine_skips += 1
            self._evaluated_version = self.document.version
            return self._outcome
        rows = self._cache.rows()
        metrics = Metrics(
            strategy=self.evaluator.config.label, completed=True
        )
        metrics.result_rows = len(rows)
        metrics.maintained_rows = len(rows)
        self._outcome = EvaluationOutcome(
            query=self.query,
            document=self.document,
            rows=rows,
            metrics=metrics,
            rounds=[],
            overlay=None,
        )
        self._evaluated_version = self.document.version
        self.maintained_serves += 1
        return self._outcome

    def peek(self) -> Optional[EvaluationOutcome]:
        """The last computed outcome (possibly stale), or ``None``."""
        return self._outcome

    def value_rows(self) -> set[tuple[str, ...]]:
        """Convenience: refreshed result rows as value tuples."""
        return self.refresh().value_rows()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stale" if self.is_stale else "fresh"
        return (
            f"ContinuousQuery({self.query.name!r}, {state}, "
            f"refreshes={self.refresh_count}, skips={self.engine_skips})"
        )
