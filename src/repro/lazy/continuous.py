"""Continuous queries: keeping a full result fresh as documents evolve.

Section 1 of the paper: because "service invocations possibly return
data containing calls to new services ... the detection of relevant
calls becomes a continuous process."  The lazy evaluator is naturally
incremental — re-evaluating over an already-complete document invokes
nothing — so a continuous query is a thin, change-aware wrapper:

* :meth:`ContinuousQuery.refresh` returns the cached outcome instantly
  while the document version is unchanged, and re-runs the (lazy,
  incremental) evaluation after any mutation — whether a call
  invocation, a subtree insertion, or a removal;
* the wrapper never copies the document: it evaluates in place, exactly
  like a standing subscription in the ActiveXML system would.
"""

from __future__ import annotations

from typing import Optional

from ..axml.document import Document
from ..pattern.pattern import TreePattern
from .engine import EvaluationOutcome, LazyQueryEvaluator


class ContinuousQuery:
    """A standing query over one (mutating) AXML document."""

    def __init__(
        self,
        evaluator: LazyQueryEvaluator,
        query: TreePattern,
        document: Document,
        eager: bool = True,
    ) -> None:
        self.evaluator = evaluator
        self.query = query
        self.document = document
        self._outcome: Optional[EvaluationOutcome] = None
        self._evaluated_version: Optional[int] = None
        self.refresh_count = 0
        if eager:
            self.refresh()

    @property
    def is_stale(self) -> bool:
        """Has the document changed since the last refresh?"""
        return self._evaluated_version != self.document.version

    def refresh(self) -> EvaluationOutcome:
        """Return the up-to-date full result, re-evaluating if needed.

        Note that the evaluation itself bumps the document version (it
        invokes calls); the version recorded is the *post-evaluation*
        one, so a quiescent document never re-evaluates.
        """
        if self._outcome is not None and not self.is_stale:
            return self._outcome
        if self._outcome is not None:
            # The document mutated under a standing query: memoized call
            # replies may describe a world that no longer exists, so the
            # bus cache is conservatively dropped before re-evaluating.
            self.evaluator.bus.invalidate_cache()
        self._outcome = self.evaluator.evaluate(self.query, self.document)
        self._evaluated_version = self.document.version
        self.refresh_count += 1
        return self._outcome

    def peek(self) -> Optional[EvaluationOutcome]:
        """The last computed outcome (possibly stale), or ``None``."""
        return self._outcome

    def value_rows(self) -> set[tuple[str, ...]]:
        """Convenience: refreshed result rows as value tuples."""
        return self.refresh().value_rows()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stale" if self.is_stale else "fresh"
        return (
            f"ContinuousQuery({self.query.name!r}, {state}, "
            f"refreshes={self.refresh_count})"
        )
