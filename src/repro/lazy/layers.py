"""NFQ layers (Section 4.3).

Let ``⇒*`` be the transitive closure of *may influence* and ``≈`` the
equivalence ``q ≈ q'`` iff ``q ⇒* q'`` and ``q' ⇒* q``.  Layers are the
equivalence classes of ``≈`` — i.e. the strongly connected components of
the may-influence digraph — and ``⇒*`` induces a partial order between
them, completed here into a total order (a topological order of the
condensation, ties broken by smallest target uid for determinism).

Layers are processed in increasing order; inside a layer the NFQA loop
runs until no more calls are found, and once a layer is done the
function alternatives it owned can be removed from the remaining NFQs
(the paper's per-layer simplification): no earlier-or-equal layer can
put new calls at those positions anymore.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from .influence import InfluenceAnalyzer
from .relevance import RelevanceQuery


@dataclasses.dataclass
class Layer:
    """One equivalence class of NFQs, with per-query parallelism flags."""

    index: int
    queries: list[RelevanceQuery]
    independent: dict[int, bool]
    """target uid -> does condition (*) hold for that query?"""

    @property
    def target_uids(self) -> frozenset[int]:
        return frozenset(q.target_uid for q in self.queries)

    @property
    def fully_parallel(self) -> bool:
        """Can every query of the layer fire its calls in parallel?"""
        return all(self.independent.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Layer({self.index}, {[q.name for q in self.queries]})"


def compute_layers(
    queries: Sequence[RelevanceQuery],
    analyzer: InfluenceAnalyzer | None = None,
) -> list[Layer]:
    """Split relevance queries into totally ordered layers."""
    queries = list(queries)
    if not queries:
        return []
    analyzer = analyzer or InfluenceAnalyzer(queries)
    edges = analyzer.influence_edges()
    components = _strongly_connected_components(edges)
    order = _topological_component_order(edges, components)

    by_uid = {q.target_uid: q for q in queries}
    layers: list[Layer] = []
    for index, component in enumerate(order):
        members = [by_uid[uid] for uid in sorted(component)]
        independent = {
            q.target_uid: analyzer.is_independent(q, members) for q in members
        }
        layers.append(Layer(index=index, queries=members, independent=independent))
    return layers


# -- graph machinery ---------------------------------------------------------------


def _strongly_connected_components(
    edges: dict[int, set[int]]
) -> list[frozenset[int]]:
    """Tarjan's algorithm, iterative (no recursion-depth surprises)."""
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[frozenset[int]] = []
    counter = 0

    for root in edges:
        if root in index_of:
            continue
        work: list[tuple[int, list[int], int]] = [(root, sorted(edges[root]), 0)]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors, cursor = work.pop()
            advanced = False
            while cursor < len(successors):
                succ = successors[cursor]
                cursor += 1
                if succ not in index_of:
                    work.append((node, successors, cursor))
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(edges[succ]), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(frozenset(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def _topological_component_order(
    edges: dict[int, set[int]], components: list[frozenset[int]]
) -> list[frozenset[int]]:
    """Total order of components compatible with the influence order."""
    component_of: dict[int, int] = {}
    for ci, component in enumerate(components):
        for uid in component:
            component_of[uid] = ci

    successors: dict[int, set[int]] = {ci: set() for ci in range(len(components))}
    indegree = {ci: 0 for ci in range(len(components))}
    for src, sinks in edges.items():
        for sink in sinks:
            a, b = component_of[src], component_of[sink]
            if a != b and b not in successors[a]:
                successors[a].add(b)
                indegree[b] += 1

    # Kahn with deterministic tie-breaking on the smallest member uid.
    ready = sorted(
        (ci for ci, deg in indegree.items() if deg == 0),
        key=lambda ci: min(components[ci]),
    )
    order: list[frozenset[int]] = []
    while ready:
        current = ready.pop(0)
        order.append(components[current])
        freed = []
        for nxt in successors[current]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                freed.append(nxt)
        ready.extend(freed)
        ready.sort(key=lambda ci: min(components[ci]))
    if len(order) != len(components):
        raise AssertionError("influence condensation is not a DAG")
    return order
