"""Baseline strategies: naive materialisation and top-down traversal.

Section 1 rules out two simpler designs that our experiments must still
quantify:

* the **naive** approach "consists in invoking all the calls in the
  document recursively, until a fixpoint is reached, and finally running
  the query over the resulting document";
* the **top-down** approach interleaves query traversal and invocation:
  only calls on paths traversed by the query fire, but the processor
  "would either have to be blocked waiting for call responses, or would
  have to be restarted several times to account for the document
  growth".

The naive driver lives here; the top-down baseline is realised inside
the engine as the LPQ strategy restricted to one sequential call per
round with full re-evaluation (restart) in between — the paper itself
notes the traversed-subtree criterion coincides with path relevance.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..axml.document import Document
from ..axml.node import Activation, Node
from ..obs.trace import NULL_TRACER, ROUND, AnyTracer

InvokeFn = Callable[[Node], Optional[float]]
"""Invoke one call; returns its simulated time (None when skipped)."""


def naive_fixpoint(
    document: Document,
    invoke: InvokeFn,
    max_invocations: int,
    on_round: Callable[[list[float]], None],
    tracer: AnyTracer = NULL_TRACER,
) -> tuple[int, bool]:
    """Invoke every embedded call, recursively, until none remain.

    Calls of one sweep are treated as one (parallelisable) round;
    ``on_round`` receives the simulated times of the round.  Each sweep
    becomes one ``round`` span on ``tracer``.  Returns
    ``(invocations, completed)`` — ``completed`` is False when the
    invocation budget ran out first (AXML documents may be infinite,
    Section 2).
    """
    invocations = 0
    while True:
        calls = [
            c
            for c in document.function_nodes()
            if c.activation is not Activation.FROZEN
        ]
        if not calls:
            return invocations, True
        times: list[float] = []
        with tracer.span(ROUND, phase="naive", calls=len(calls)):
            for call in calls:
                if invocations >= max_invocations:
                    if times:
                        on_round(times)
                    return invocations, False
                if not document.contains(call):
                    continue  # consumed as a parameter of an outer call
                elapsed = invoke(call)
                invocations += 1
                if elapsed is not None:
                    times.append(elapsed)
        on_round(times)
