"""The "may influence" relation and the independence condition.

Section 4.2: NFQ ``q_v`` *may influence* ``q_v'`` when invoking a call
retrieved by ``q_v`` can bring new calls into the result of ``q_v'``.
Proposition 3 reduces the test to formal languages — ``q_v`` may
influence ``q_v'`` iff some word in the regular language of
``q_v^lin`` is a prefix of some word in ``q_v'^lin`` — with an immediate
PTIME algorithm: build the automaton of one language and of the
*prefixes* of the other, intersect, test emptiness [16].

Section 4.4: inside one layer, the calls returned by ``q_v`` may all be
invoked in parallel when the **independence condition (*)** holds: for
every other NFQ ``q_v'`` of the layer,
``L(q_v^lin) ∩ L(q_v'^lin) = ∅`` — again a product-automaton emptiness
test.
"""

from __future__ import annotations

from typing import Sequence

from ..schema import automata
from .relevance import RelevanceQuery


class InfluenceAnalyzer:
    """Caches the per-query linear-path automata and answers both tests."""

    def __init__(self, queries: Sequence[RelevanceQuery]) -> None:
        self.queries = list(queries)
        self._automata: dict[int, automata.NFA] = {}
        self._prefix_automata: dict[int, automata.NFA] = {}

    def position_automaton(self, query: RelevanceQuery) -> automata.NFA:
        """The language of positions at which ``query`` retrieves calls."""
        return self._automaton(query)

    def _automaton(self, query: RelevanceQuery) -> automata.NFA:
        nfa = self._automata.get(query.target_uid)
        if nfa is None:
            nfa = automata.from_linear_steps(
                list(query.linear_steps),
                descendant_tail=query.descendant_tail,
            )
            self._automata[query.target_uid] = nfa
        return nfa

    def _prefix_automaton(self, query: RelevanceQuery) -> automata.NFA:
        nfa = self._prefix_automata.get(query.target_uid)
        if nfa is None:
            nfa = self._automaton(query).prefix_closed()
            self._prefix_automata[query.target_uid] = nfa
        return nfa

    # -- Proposition 3 --------------------------------------------------------

    def may_influence(
        self, source: RelevanceQuery, sink: RelevanceQuery
    ) -> bool:
        """Can invoking calls found by ``source`` enrich ``sink``'s result?

        True iff some word of ``L(source^lin)`` is a prefix of some word
        of ``L(sink^lin)`` (equal positions included: a call's result is
        spliced at the call's own position, so it can directly contain
        new calls at that very position).
        """
        return automata.languages_intersect(
            self._automaton(source), self._prefix_automaton(sink)
        )

    def influence_edges(self) -> dict[int, set[int]]:
        """The full may-influence digraph over target uids."""
        edges: dict[int, set[int]] = {q.target_uid: set() for q in self.queries}
        for source in self.queries:
            for sink in self.queries:
                if source.target_uid == sink.target_uid:
                    continue
                if self.may_influence(source, sink):
                    edges[source.target_uid].add(sink.target_uid)
        return edges

    # -- condition (*) ------------------------------------------------------------

    def positions_overlap(
        self, left: RelevanceQuery, right: RelevanceQuery
    ) -> bool:
        """Non-emptiness of ``L(left^lin) ∩ L(right^lin)``."""
        return automata.languages_intersect(
            self._automaton(left), self._automaton(right)
        )

    def is_independent(
        self, query: RelevanceQuery, layer: Sequence[RelevanceQuery]
    ) -> bool:
        """Condition (*): the query's positions are disjoint from every
        *other* NFQ of its layer, so all its retrieved calls can be fired
        in parallel without ever invoking an irrelevant call."""
        for other in layer:
            if other.target_uid == query.target_uid:
                continue
            if self.positions_overlap(query, other):
                return False
        return True
