"""Delta-driven answer maintenance for continuous queries.

PR-4 and PR-5 made *relevance* detection incremental; the *answer* side
still re-ran the final match from scratch on every refresh, which
ROADMAP names the single biggest lever for long-lived documents.  This
module maintains the materialized answer itself, in the spirit of
maintaining conjunctive-query answers under updates with per-update
cost proportional to the change, using projection-style footprints to
bound where a delta can matter:

* :class:`AnswerCache` — a :class:`~repro.axml.document.Document`
  observer (like :class:`~repro.lazy.incremental.RelevanceCache`) that
  materializes a standing query's :class:`~repro.pattern.match.MatchSet`
  *decomposed by depth-1 document subtree*.  Each splice is screened
  against two footprints, and on refresh only the dirty subtrees are
  re-matched (:meth:`~repro.pattern.match.Matcher.evaluate_scoped`),
  with added/retracted rows spliced into the cached result
  (:meth:`~repro.pattern.match.MatchSet.spliced`).

* :class:`ServiceTouchTracker` — records which services' call nodes a
  mutation added or removed (and at which document version), so
  :meth:`~repro.lazy.continuous.ContinuousQuery.refresh` can scope the
  bus-level call-cache drop instead of wiping every standing query's
  memoized replies.

Besides :meth:`~repro.lazy.continuous.ContinuousQuery.refresh`, the
cache has a second consumer: the serving layer
(:class:`~repro.serve.QueryServer`) proves a subscription
relevance-quiet via its shared cross-tenant group pass and then serves
the refresh straight from :meth:`AnswerCache.rows` —
:meth:`~repro.lazy.continuous.ContinuousQuery.serve_maintained` — so
one document traversal amortises over every quiet subscriber.

Soundness rests on three observations:

1. **Scope confinement.**  When the pattern root has exactly one child,
   every embedding maps all non-root pattern nodes into the depth-1
   subtree containing the root child's image (all non-root pattern
   nodes are descendants of that single child, and embeddings preserve
   ancestry).  The full snapshot result is therefore the disjoint-by
   -scope composition of the scoped results, and a splice can only
   create or destroy rows of the one depth-1 subtree it happened in —
   ``delta.scope_under(root)`` — or, for splices directly under the
   root, of the removed/added depth-1 subtrees themselves.  Patterns
   whose root has several children fall back to a full re-match
   whenever their footprint is touched (honest, still screened).

2. **Footprint screening** (the argument of ``repro.lazy.incremental``):
   patterns are positive, so a splice disjoint from the *answer
   footprint* changes no embedding and hence no row.

3. **Engine skipping.**  The *guard footprint* is the answer footprint
   widened by the untyped NFQ family's footprints (every relevance
   criterion the engine may apply is covered by it; NAIVE additionally
   forces the any-function test).  A splice disjoint from the guard
   leaves every relevance result unchanged; since the previous
   evaluation ended quiescent, a fresh engine run would invoke nothing
   and return the cached rows — so the refresh may skip the engine
   entirely, with value rows *and* invocation order identical to full
   re-evaluation.

Bindings overlays are unsupported (overlay rows change match results
without document events); :class:`~repro.lazy.continuous.ContinuousQuery`
only attaches a cache when ``push_mode`` is not ``BINDINGS``.  Frozen
calls mutate activation in place without emitting a delta — exactly as
for the relevance cache, that never changes embeddings, only call
eligibility, which the engine re-checks whenever it runs.
"""

from __future__ import annotations

from typing import Optional

from ..axml.document import Document, SpliceDelta
from ..axml.node import Node
from ..pattern.match import (
    Matcher,
    MatchCounter,
    MatchOptions,
    MatchSet,
    ResultRow,
)
from ..pattern.pattern import TreePattern
from .incremental import LabelFootprint
from .relevance import build_nfqs


class ServiceTouchTracker:
    """Which services external mutations re-asked, and when.

    A continuous query drains this on refresh to scope the bus-level
    call-cache drop: memoization assumes services are functions of
    their parameters (the :class:`~repro.services.scheduler.CallCache`'s
    documented opt-in contract), so the only in-band signal that the
    world *behind* a service may have changed is an author inserting a
    fresh call node of that service — screened by the delta's service
    names.  Invocation-produced splices (``produced_by`` set) are the
    engine's own bookkeeping, and call removals create no new question
    to answer; neither flushes, which is what keeps standing queries
    sharing one bus from evicting the replies each other's evaluations
    just memoized.
    """

    def __init__(self, document: Document) -> None:
        self.document = document
        self.touched: dict[str, int] = {}
        """Service name -> latest document version that touched it."""
        document.add_observer(self)

    def detach(self) -> None:
        self.document.remove_observer(self)

    def drain(self) -> dict[str, int]:
        """The touched-service map since the last drain (and reset)."""
        touched, self.touched = self.touched, {}
        return touched

    # DocumentObserver protocol ---------------------------------------------

    def call_removed(self, document: Document, node: Node) -> None:
        """Covered by :meth:`splice`; kept for protocol completeness."""

    def calls_added(self, document: Document, nodes: list[Node]) -> None:
        """Covered by :meth:`splice`; kept for protocol completeness."""

    def splice(self, document: Document, delta: SpliceDelta) -> None:
        version = document.version
        for node in delta.iter_added():
            if node.is_function and node.produced_by is None:
                self.touched[node.label] = version


class AnswerCache:
    """The maintained snapshot result of one standing query.

    Attach one per (query, document) pair; it observes the document and
    keeps the query's rows decomposed by depth-1 subtree.  The engine
    calls :meth:`rows` in place of the final full match; the continuous
    query consults :attr:`is_current` to skip the engine altogether.

    Args:
        query: the standing query (pinned; a different query needs a
            different cache).
        document: the observed document (pinned likewise).
        options: embedding semantics — must match the evaluator's, or
            the maintained rows would diverge from the oracle.
        any_call_relevant: widen the guard so any added/removed call
            node defeats engine skipping — required for strategies
            whose relevance criterion is "every call counts" (NAIVE).
    """

    def __init__(
        self,
        query: TreePattern,
        document: Document,
        options: Optional[MatchOptions] = None,
        counter: Optional[MatchCounter] = None,
        any_call_relevant: bool = False,
    ) -> None:
        self.query = query
        self.document = document
        self.options = options or MatchOptions()
        self.counter = counter or MatchCounter()
        # The cache's matcher deliberately carries no overlay and no
        # label index: the engine's per-evaluation index is detached at
        # teardown, and the maintained rows must stay computable
        # between evaluations.
        self.matcher = Matcher(query, options=self.options, counter=self.counter)
        self.answer_footprint = LabelFootprint.from_pattern(query)
        """Screens row dirtiness: a splice disjoint from it changes no
        embedding of the query."""
        self.guard_footprint = self._build_guard(query, any_call_relevant)
        """Screens engine relevance: a splice disjoint from it changes
        no relevance result either, enabling the skip-engine path."""
        self._scoped = len(query.root.children) == 1
        self._rows_by_scope: Optional[dict[Optional[int], list[ResultRow]]] = None
        self._refs: dict[tuple[int, ...], int] = {}
        self._matchset: Optional[MatchSet] = None
        self._dirty: set[int] = set()
        self._all_dirty = False
        self._engine_needed = False

        self.splices_seen = 0
        self.screens = 0
        """Splices dismissed by the guard footprint: provably no row
        and no relevance result changed."""
        self.hits = 0
        """Final matches (or whole refreshes) answered from the cached
        rows with no re-matching at all."""
        self.full_matches = 0
        """Seeds and unscoped-fallback re-matches of the whole document."""
        self.scope_rematches = 0
        """Depth-1 subtrees re-matched to absorb dirtiness."""
        self.rows_added = 0
        self.rows_retracted = 0
        document.add_observer(self)

    @staticmethod
    def _build_guard(
        query: TreePattern, any_call_relevant: bool
    ) -> LabelFootprint:
        guard = LabelFootprint.from_pattern(query)
        for rquery in build_nfqs(query):
            guard.update(LabelFootprint.from_pattern(rquery.pattern))
        if any_call_relevant:
            guard.note_any_function()
        return guard

    def detach(self) -> None:
        self.document.remove_observer(self)

    # -- state inspection ---------------------------------------------------

    @property
    def seeded(self) -> bool:
        """Has a first full match populated the cache?"""
        return self._rows_by_scope is not None

    @property
    def is_current(self) -> bool:
        """Provably equal to a fresh full evaluation *without running
        the engine first*: seeded, and every splice since the last
        refresh was screened clean by the guard footprint."""
        return (
            self._rows_by_scope is not None
            and not self._engine_needed
            and not self._all_dirty
            and not self._dirty
        )

    def note_hit(self) -> None:
        """Count a refresh served entirely from the cache (the
        skip-engine path — :meth:`rows` was never reached)."""
        self.hits += 1

    def counters(self) -> dict[str, int]:
        """A snapshot of the work counters (for metrics deltas)."""
        return {
            "hits": self.hits,
            "full_matches": self.full_matches,
            "scope_rematches": self.scope_rematches,
            "rows_added": self.rows_added,
            "rows_retracted": self.rows_retracted,
            "screens": self.screens,
        }

    # DocumentObserver protocol ---------------------------------------------

    def call_removed(self, document: Document, node: Node) -> None:
        """Covered by :meth:`splice`; kept for protocol completeness."""

    def calls_added(self, document: Document, nodes: list[Node]) -> None:
        """Covered by :meth:`splice`; kept for protocol completeness."""

    def splice(self, document: Document, delta: SpliceDelta) -> None:
        self.splices_seen += 1
        if self._rows_by_scope is None:
            # Nothing materialized yet: the first refresh runs the
            # engine and seeds from scratch regardless.
            self._engine_needed = True
            return
        if not self.guard_footprint.touches(delta):
            self.screens += 1
            return
        self._engine_needed = True
        if not self.answer_footprint.touches(delta):
            # Relevance may have moved; the answer rows provably did
            # not.  The engine will run, but the final match stays a
            # cache hit.
            return
        if not self._scoped:
            self._all_dirty = True
            return
        scope = delta.scope_under(self.document.root)
        if scope is not None:
            assert scope.node_id is not None
            self._dirty.add(scope.node_id)
            return
        # Splice directly under the root: the removed roots *were*
        # depth-1 scopes (their ids are retained on the detached
        # nodes), the added roots are new ones.
        for node in delta.removed:
            if node.node_id is not None:
                self._dirty.add(node.node_id)
        for node in delta.added:
            if node.node_id is not None:
                self._dirty.add(node.node_id)

    # -- serving the final match --------------------------------------------

    def rows(self) -> MatchSet:
        """The up-to-date snapshot result, re-matching only what the
        deltas since the last call could have changed."""
        if self._rows_by_scope is None or self._all_dirty:
            self._seed()
        elif self._dirty:
            self._rematch_dirty()
        else:
            self.hits += 1
        self._engine_needed = False
        assert self._matchset is not None
        return self._matchset

    def _seed(self) -> None:
        self.full_matches += 1
        self._all_dirty = False
        self._dirty.clear()
        rows_by_scope: dict[Optional[int], list[ResultRow]] = {}
        groups: list[list[ResultRow]] = []
        if self._scoped:
            for child in self.document.root.children:
                scoped = self.matcher.evaluate_scoped(self.document, child)
                if scoped.rows:
                    assert child.node_id is not None
                    rows_by_scope[child.node_id] = scoped.rows
                    groups.append(scoped.rows)
        else:
            full = self.matcher.evaluate(self.document)
            if full.rows:
                rows_by_scope[None] = full.rows
                groups.append(full.rows)
        self._rows_by_scope = rows_by_scope
        self._refs = {}
        for rows in rows_by_scope.values():
            for row in rows:
                key = MatchSet.row_key(row)
                self._refs[key] = self._refs.get(key, 0) + 1
        self._matchset = MatchSet.compose(self.query, groups)

    def _live_scope(self, scope_id: int) -> Optional[Node]:
        """The depth-1 node a dirty scope id denotes, if still attached."""
        try:
            node = self.document.node(scope_id)
        except KeyError:
            return None
        return node if node.parent is self.document.root else None

    def _rematch_dirty(self) -> None:
        assert self._rows_by_scope is not None and self._matchset is not None
        retracted: set[tuple[int, ...]] = set()
        added: list[ResultRow] = []
        # Row identities may straddle scopes (a root marked as a result
        # node appears in every scope's rows), so membership in the
        # assembled MatchSet is reference-counted across scopes.
        for scope_id in sorted(self._dirty):
            self.scope_rematches += 1
            old = self._rows_by_scope.pop(scope_id, [])
            node = self._live_scope(scope_id)
            new_rows = (
                self.matcher.evaluate_scoped(self.document, node).rows
                if node is not None
                else []
            )
            for row in old:
                key = MatchSet.row_key(row)
                remaining = self._refs.get(key, 1) - 1
                if remaining <= 0:
                    self._refs.pop(key, None)
                    retracted.add(key)
                else:
                    self._refs[key] = remaining
            for row in new_rows:
                key = MatchSet.row_key(row)
                count = self._refs.get(key, 0)
                self._refs[key] = count + 1
                if count == 0:
                    if key in retracted:
                        retracted.discard(key)  # survived the re-match
                    else:
                        added.append(row)
            if new_rows:
                self._rows_by_scope[scope_id] = new_rows
        self._dirty.clear()
        self.rows_retracted += len(retracted)
        self.rows_added += len(added)
        self._matchset = self._matchset.spliced(retracted, added)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows = 0 if self._matchset is None else len(self._matchset)
        return (
            f"AnswerCache({self.query.name!r}, rows={rows}, "
            f"hits={self.hits}, scope_rematches={self.scope_rematches}, "
            f"screens={self.screens})"
        )
