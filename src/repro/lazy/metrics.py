"""Evaluation metrics reported by the engine and the experiments."""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass
class Metrics:
    """Everything the Section 8 style experiments report on.

    Times:
        * ``analysis_wall_s`` — real time spent in relevance analysis and
          final query evaluation (the local CPU cost of being lazy);
        * ``simulated_sequential_s`` — total simulated service time if
          calls fire one after the other;
        * ``simulated_parallel_s`` — simulated service time when each
          invocation round fires in parallel (Section 4.4): the sum over
          rounds of the slowest call of the round;
        * ``total_time_s`` / ``total_time_parallel_s`` — analysis plus
          service time, the headline numbers of experiment E1.
    """

    strategy: str = ""
    completed: bool = True

    calls_invoked: int = 0
    invocation_rounds: int = 0
    relevance_evaluations: int = 0
    guide_lookups: int = 0
    guide_candidates: int = 0
    relevance_queries_built: int = 0
    layers: int = 0

    bytes_sent: int = 0
    bytes_received: int = 0

    nodes_materialized: int = 0
    final_document_nodes: int = 0
    result_rows: int = 0
    faults: int = 0
    """Failed invocation attempts (every attempt counts, not just the
    final failure of a retry sequence)."""
    retries: int = 0
    """Re-attempts after a fault (a call that fails twice then succeeds
    contributes two faults and two retries)."""
    backoff_s: float = 0.0
    """Simulated time spent waiting between retry attempts."""
    failed_attempt_time_s: float = 0.0
    """Simulated time burned inside failed attempts (latency + request
    transfer, or the missed timeout deadline)."""
    breaker_trips: int = 0
    """Times a circuit breaker transitioned to OPEN."""
    breaker_short_circuits: int = 0
    """Invocations answered by an open breaker without touching the
    service (nothing shipped, nothing logged)."""
    calls_frozen: int = 0
    """Calls left intensional (``Activation.FROZEN``) after a fault."""
    calls_skipped: int = 0
    """Calls whose subtree the legacy SKIP policy deleted."""
    io_violations: int = 0
    batch_count: int = 0
    """Rounds dispatched through the concurrent batch scheduler."""
    max_batch_width: int = 0
    """Widest batch (calls per concurrent dispatch) seen."""
    cache_hits: int = 0
    """Calls answered by the bus's memoization cache (zero simulated
    time, nothing shipped)."""

    analysis_wall_s: float = 0.0
    simulated_sequential_s: float = 0.0
    simulated_parallel_s: float = 0.0

    match_can_checks: int = 0
    match_candidates_visited: int = 0
    index_candidates: int = 0
    """Descendant-step candidates served by the label index instead of a
    subtree walk (incremental mode)."""
    relevance_cache_hits: int = 0
    """Relevance retrievals answered by a still-valid memoized set —
    the query did not run (incremental mode)."""
    queries_reevaluated: int = 0
    """Relevance retrievals that had to run the query (incremental
    mode; ``relevance_cache_hits + queries_reevaluated =
    relevance_evaluations``)."""
    group_passes: int = 0
    """Shared evaluation passes: rounds where all pending relevance
    queries ran in one projected group traversal (shared matching)."""
    group_pass_nodes_visited: int = 0
    """Document nodes the group passes' subtree walks entered (shared
    matching; compare with ``match_candidates_visited`` for the
    per-query paths)."""
    projection_skipped_subtrees: int = 0
    """Subtrees the projection set let group passes skip wholesale —
    no member query tests any label inside them (shared matching)."""
    arena_nodes: int = 0
    """Live nodes mirrored in the document arena at teardown (arena
    mode; 0 when the object walk served the evaluation)."""
    arena_bytes: int = 0
    """Bytes held by the arena's columns and label table (arena mode;
    the memory side of the struct-of-arrays trade)."""
    projection_pruned_at_load: int = 0
    """Nodes dropped by load-time projection before the document
    materialised (``build_document``/``parse_document`` with a
    footprint; 0 when projection stood down or was not requested)."""
    column_pass_nodes: int = 0
    """Arena slots the column matcher's slot-space scans touched
    (column matching; the column path's analogue of
    ``match_candidates_visited`` — the two are never mixed, so each
    path's cost stays separately attributable)."""
    column_rows: int = 0
    """Result rows produced entirely in slot space — ``Node`` objects
    were materialised only to render these final rows (column
    matching)."""
    column_fallbacks: int = 0
    """Evaluations where the column matcher stood down and the object
    walk answered instead (no compiled plan, bindings overlay, root or
    scope not mirrored in the arena)."""
    shard_passes: int = 0
    """Scoped shard scans dispatched by shard-parallel group passes
    (``shards > 1``; 0 when sharding stood down)."""
    shard_merge_rows: int = 0
    """Rows in the deterministically merged per-member answers of the
    sharded passes (after composition dedup)."""
    maintained_rows: int = 0
    """Result rows served from the maintained answer at final match —
    without a full re-match of the document (answer maintenance)."""
    rows_respliced: int = 0
    """Rows spliced into or out of the maintained answer during this
    evaluation (answer maintenance: added + retracted)."""
    answer_cache_hits: int = 0
    """Final matches answered entirely from the maintained answer — no
    scope was dirty, not even a scoped re-match ran (answer
    maintenance)."""
    answer_scope_rematches: int = 0
    """Depth-1 document subtrees re-matched to bring the maintained
    answer current (answer maintenance)."""

    @property
    def serial_time_s(self) -> float:
        """Simulated service time on the serial clock (alias of
        ``simulated_sequential_s`` — the E10 experiment's baseline)."""
        return self.simulated_sequential_s

    @property
    def parallel_time_s(self) -> float:
        """Simulated service time under per-round concurrency (alias of
        ``simulated_parallel_s``: sum of round makespans)."""
        return self.simulated_parallel_s

    @property
    def total_time_s(self) -> float:
        return self.analysis_wall_s + self.simulated_sequential_s

    @property
    def total_time_parallel_s(self) -> float:
        return self.analysis_wall_s + self.simulated_parallel_s

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    def summary(self) -> str:
        text = (
            f"[{self.strategy}] calls={self.calls_invoked} "
            f"rounds={self.invocation_rounds} "
            f"rel-evals={self.relevance_evaluations} "
            f"bytes={self.total_bytes} "
            f"time={self.total_time_s:.3f}s "
            f"(par {self.total_time_parallel_s:.3f}s, "
            f"analysis {self.analysis_wall_s:.3f}s) "
            f"rows={self.result_rows}"
        )
        if self.faults or self.retries or self.breaker_short_circuits:
            text += (
                f" faults={self.faults} retries={self.retries} "
                f"backoff={self.backoff_s:.3f}s "
                f"frozen={self.calls_frozen} skipped={self.calls_skipped} "
                f"breaker-trips={self.breaker_trips}"
                f"/{self.breaker_short_circuits}"
            )
        if self.batch_count or self.cache_hits:
            text += (
                f" batches={self.batch_count} "
                f"width={self.max_batch_width} "
                f"cache-hits={self.cache_hits}"
            )
        if self.relevance_cache_hits or self.queries_reevaluated:
            text += (
                f" rel-cache={self.relevance_cache_hits}"
                f"/{self.queries_reevaluated} "
                f"idx-cands={self.index_candidates}"
            )
        if self.group_passes:
            text += (
                f" group-passes={self.group_passes} "
                f"group-visited={self.group_pass_nodes_visited} "
                f"proj-skipped={self.projection_skipped_subtrees}"
            )
        if self.arena_nodes or self.projection_pruned_at_load:
            text += (
                f" arena-nodes={self.arena_nodes} "
                f"arena-bytes={self.arena_bytes} "
                f"load-pruned={self.projection_pruned_at_load}"
            )
        if self.column_pass_nodes or self.column_rows or self.column_fallbacks:
            text += (
                f" col-nodes={self.column_pass_nodes} "
                f"col-rows={self.column_rows} "
                f"col-fallbacks={self.column_fallbacks}"
            )
        if self.shard_passes:
            text += (
                f" shard-passes={self.shard_passes} "
                f"shard-rows={self.shard_merge_rows}"
            )
        if (
            self.maintained_rows
            or self.rows_respliced
            or self.answer_cache_hits
            or self.answer_scope_rematches
        ):
            text += (
                f" ans-rows={self.maintained_rows} "
                f"respliced={self.rows_respliced} "
                f"ans-hits={self.answer_cache_hits} "
                f"scope-rematches={self.answer_scope_rematches}"
            )
        return text


@dataclasses.dataclass
class RoundRecord:
    """One invocation round (for debugging and the E5 experiment)."""

    layer_index: Optional[int]
    calls: tuple[str, ...]
    parallel: bool
    simulated_time_s: float
