"""The multi-tenant serving layer over the lazy evaluation engine.

``repro.serve`` turns the one-shot evaluator into a long-lived session
manager: a :class:`QueryServer` registers many continuous queries
(:class:`Subscription`) from many tenants over shared documents and
drives them in rounds — batching every due subscription's relevance
work into one cross-tenant
:class:`~repro.pattern.multimatch.PatternGroup` pass per document,
serving provably-quiet refreshes straight from their maintained
answers, and fanning answer deltas out per subscriber
(:class:`AnswerStream`).  Admission control
(:class:`TenantPolicy` / :class:`TenantAccount`) keeps a noisy tenant
from starving the rest.

The usual entry points are ``repro.subscribe`` (one standing query,
private server) and ``repro.QueryServer`` (many).  The engine-facing
core, :class:`~repro.lazy.continuous.ContinuousQuery`, remains
importable from here for compatibility.
"""

from ..lazy.continuous import ContinuousQuery
from .admission import (
    RefreshOutcome,
    RefreshStatus,
    TenantAccount,
    TenantPolicy,
    quantile,
)
from .server import (
    QueryServer,
    RoundReport,
    ServingClock,
    Subscription,
    relevance_family,
)
from .stream import AnswerDelta, AnswerStream

__all__ = [
    "AnswerDelta",
    "AnswerStream",
    "ContinuousQuery",
    "QueryServer",
    "RefreshOutcome",
    "RefreshStatus",
    "RoundReport",
    "ServingClock",
    "Subscription",
    "TenantAccount",
    "TenantPolicy",
    "quantile",
    "relevance_family",
]
