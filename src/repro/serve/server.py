"""The multi-tenant query server: many standing queries, one engine.

The engine is one-shot and single-caller; this module makes it a
*serving layer*.  A :class:`QueryServer` owns a shared
:class:`~repro.services.registry.ServiceBus` (one invocation log, one
call cache, one set of circuit breakers) and registers thousands of
:class:`Subscription` s — continuous queries over shared documents —
which it drives in rounds:

1. **Due detection.**  A subscription is due when its document changed
   since it was last served.  Due refreshes are ordered FIFO within
   tenant priority (:mod:`repro.serve.admission`).
2. **Cross-tenant batching.**  Instead of letting every due
   subscription's engine run re-derive relevance from scratch, the
   server keeps each subscription's relevance family (its NFQs — built
   once at subscribe time, exactly as the engine would build them) and
   answers *all* families over one document in **one**
   :class:`~repro.pattern.multimatch.PatternGroup` pass per round —
   near-duplicate patterns across tenants intern into the same
   canonical classes, and a per-document, splice-maintained
   :class:`~repro.axml.index.LabelIndex` (which the per-refresh engine
   cannot afford to keep) serves its candidate sets.
3. **Serving.**  A due subscription whose pass shows *no eligible
   retrieved call* (and whose document holds no ``IMMEDIATE`` call)
   provably would invoke nothing: it is served straight from its
   maintained :class:`~repro.lazy.answers.AnswerCache`
   (:meth:`~repro.lazy.continuous.ContinuousQuery.serve_maintained`)
   — same rows, same (empty) invocation set, none of the engine's
   per-evaluation setup.  Everything else runs the real engine under
   the tenant's admission budget, so rows and invocation order stay
   *identical* to independent per-subscriber refresh loops — the
   property the differential tests and ``bench_e14_serving`` pin.
4. **Fan-out.**  Changed answers are diffed against the previous
   snapshot and pushed to each subscriber's
   :class:`~repro.serve.stream.AnswerStream`.

Latency is measured on the **serving clock** (:class:`ServingClock`):
simulated bus seconds (service latency, transfer, backoff — exactly
reproducible) plus measured compute seconds, accumulated as the server
does work.  A refresh's latency is the serving-clock distance from the
moment its subscription became due to the moment it was served — queue
wait plus service time, which is what a subscriber actually
experiences and what the cross-tenant batching actually cuts.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Optional, Union

from ..axml.builder import build_document
from ..axml.document import Document
from ..axml.index import LabelIndex
from ..axml.node import Activation, Node
from ..axml.xmlio import parse_document
from ..lazy.config import EngineConfig, Strategy, TypingMode
from ..lazy.continuous import ContinuousQuery
from ..lazy.engine import EvaluationOutcome, LazyQueryEvaluator
from ..lazy.relevance import NFQBuilder, RelevanceQuery, linear_path_queries
from ..obs.trace import SERVE_REFRESH, SERVE_ROUND, tracer_for
from ..pattern.multimatch import PatternGroup
from ..pattern.parse import parse_pattern
from ..pattern.pattern import TreePattern
from ..schema.schema import Schema
from ..services.registry import bus_of
from ..services.service import PushMode
from .admission import (
    RefreshOutcome,
    RefreshStatus,
    TenantAccount,
    TenantPolicy,
)
from .stream import AnswerDelta, AnswerStream


def reject_engine_kwargs(entry_point: str, unexpected: dict) -> None:
    """Refuse loose engine knobs, naming the nearest config field.

    The serving entry points accept exactly one ``config=`` object; a
    stray keyword almost always means "I tried to pass an EngineConfig
    field directly", so the error says where it belongs — reusing
    :meth:`EngineConfig.nearest_field`, the same naming contract the
    config's own validation follows.
    """
    if not unexpected:
        return
    name = next(iter(unexpected))
    nearest = EngineConfig.nearest_field(name)
    hint = (
        f" — did you mean EngineConfig({nearest}=...)? "
        if nearest is not None
        else " "
    )
    raise TypeError(
        f"{entry_point}() got an unexpected keyword argument {name!r}"
        f"{hint}(engine knobs travel on the single config= object, "
        f"e.g. config=EngineConfig.serving({nearest or name}=...))"
    )


class ServingClock:
    """The server's latency clock: simulated seconds + compute seconds.

    The bus clock charges everything remote (service latency, transfer,
    retry backoff) deterministically; :meth:`charge` adds the *local*
    wall time the server actually spent analysing and matching.  Their
    sum is what a subscriber would experience against real services, so
    round latencies reflect both queue wait and compute — the component
    cross-tenant batching is built to cut.
    """

    def __init__(self, bus) -> None:
        self.bus = bus
        self.compute_s = 0.0

    def now(self) -> float:
        """Current serving time, in seconds."""
        return self.bus.clock_s + self.compute_s

    def charge(self, wall_s: float) -> None:
        """Add measured local compute time to the clock."""
        self.compute_s += wall_s


class Subscription:
    """One tenant's standing query, managed by a :class:`QueryServer`.

    The public replacement for hand-built
    :class:`~repro.lazy.continuous.ContinuousQuery` loops:
    :attr:`rows` is the answer as of the last serve, :meth:`refresh`
    asks the server for an on-demand (admission-checked) refresh,
    :attr:`stream` delivers added/removed row deltas, and
    :meth:`cancel` detaches everything.  Constructed by
    ``QueryServer.subscribe`` / ``repro.subscribe``, never directly.
    """

    def __init__(
        self,
        server: "QueryServer",
        core: ContinuousQuery,
        *,
        sub_id: int,
        name: str,
        tenant: str,
    ) -> None:
        self._server = server
        self._core = core
        self.id = sub_id
        self.name = name
        self.tenant = tenant
        self.stream = AnswerStream()
        self.cancelled = False
        self._snapshot: frozenset[tuple[str, ...]] = frozenset()
        self._due_seq: Optional[int] = None
        self._due_at: Optional[float] = None

    @property
    def query(self) -> TreePattern:
        """The standing tree-pattern query."""
        return self._core.query

    @property
    def document(self) -> Document:
        """The (shared, mutating) document the query stands over."""
        return self._core.document

    @property
    def rows(self) -> frozenset[tuple[str, ...]]:
        """Answer value rows as of the last serve (no refresh)."""
        outcome = self._core.peek()
        if outcome is None:
            return frozenset()
        return frozenset(outcome.value_rows())

    @property
    def result(self) -> Optional[EvaluationOutcome]:
        """The last served :class:`EvaluationOutcome`, or ``None``."""
        return self._core.peek()

    @property
    def is_stale(self) -> bool:
        """Has the document changed since this was last served?"""
        return self._core.peek() is None or self._core.is_stale

    @property
    def engine_skips(self) -> int:
        """Refreshes answered by guard screening, engine untouched."""
        return self._core.engine_skips

    @property
    def maintained_serves(self) -> int:
        """Refreshes served from the answer cache after the shared
        group pass proved the relevance family quiet."""
        return self._core.maintained_serves

    def refresh(self) -> RefreshOutcome:
        """Serve this subscription now (admission still applies)."""
        return self._server.refresh_one(self)

    def cancel(self) -> None:
        """End the standing query and detach its document observers."""
        self._server.cancel(self)

    def _emit(
        self, at_s: float, round_index: int
    ) -> tuple[int, int]:
        """Diff the served answer against the last snapshot and push.

        Returns ``(added, removed)`` row counts; pushes an
        :class:`AnswerDelta` only when something changed.
        """
        rows = self.rows
        added = rows - self._snapshot
        removed = self._snapshot - rows
        if added or removed:
            self._snapshot = rows
            self.stream.push(
                AnswerDelta(
                    added=frozenset(added),
                    removed=frozenset(removed),
                    rows_total=len(rows),
                    document_version=self.document.version,
                    round_index=round_index,
                    at_s=at_s,
                )
            )
        return len(added), len(removed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stale" if self.is_stale else "fresh"
        return (
            f"Subscription({self.name!r}, tenant={self.tenant!r}, "
            f"{state}, rows={len(self._snapshot)})"
        )


def relevance_family(
    query: TreePattern, config: EngineConfig
) -> Optional[list[RelevanceQuery]]:
    """The relevance family the engine would build round 1, or ``None``.

    ``None`` means the serving layer cannot pre-certify quiet rounds
    for this config and must always fall back to the engine: typed
    modes (the family depends on the mutable function-name set),
    pushed bindings (no maintained answer), or maintenance off.  The
    ``NAIVE`` strategy returns ``[]`` — its relevance criterion is
    "any live call", checked without patterns.

    The construction mirrors
    ``repro.lazy.engine._EvaluationState._build_relevance_queries``
    exactly (same builder, same flags), because soundness of the served
    shortcut rests on this family *containing* every query the engine
    would evaluate: layer rebuilds only simplify (drop function
    alternatives of completed targets), so each rebuilt query retrieves
    a subset of its initial counterpart — if the initial family
    retrieves nothing eligible, every engine layer goes quiet.
    """
    if not config.maintain_answers:
        return None
    if config.typing is not TypingMode.NONE:
        return None
    if config.push_mode is PushMode.BINDINGS:
        return None
    if config.strategy is Strategy.NAIVE:
        return []
    if config.strategy in (Strategy.TOP_DOWN, Strategy.LAZY_LPQ):
        return linear_path_queries(query)
    if config.strategy is Strategy.LAZY_NFQ:
        builder = NFQBuilder(
            query,
            oracle=None,
            function_names=None,
            drop_value_joins=config.drop_value_joins,
        )
        return builder.build_all(dedupe=config.dedupe_relevance_queries)
    return None


class _DocumentGroup:
    """Server-side shared state for one registered document.

    Owns the persistent splice-maintained :class:`LabelIndex` and the
    cross-tenant :class:`PatternGroup` holding every fast-capable
    subscription's relevance family, keyed ``(subscription id, target
    uid)``.  ``quiet_map`` is the round's verdict per subscription —
    recomputed (one shared pass) whenever the document version moved,
    including mid-round after an engine refresh invoked calls.
    """

    def __init__(self, document: Document, match_options) -> None:
        self.document = document
        self.index = LabelIndex(document)
        self.group = PatternGroup({}, options=match_options, index=self.index)
        self.subs: dict[int, Subscription] = {}
        self._member_keys: dict[int, list[tuple[int, int]]] = {}
        self._naive_ids: set[int] = set()
        self._quiet: dict[int, bool] = {}
        self._quiet_version: Optional[int] = None
        self.group_passes = 0
        self.group_pass_nodes = 0

    def add(
        self, sub: Subscription, family: Optional[list[RelevanceQuery]]
    ) -> None:
        self.subs[sub.id] = sub
        if family is None:
            return
        if not family:
            self._naive_ids.add(sub.id)
        else:
            keys = [(sub.id, rq.target_uid) for rq in family]
            self.group.extend(
                {
                    (sub.id, rq.target_uid): rq.pattern
                    for rq in family
                }
            )
            self._member_keys[sub.id] = keys
        self._quiet_version = None

    def remove(self, sub: Subscription) -> None:
        self.subs.pop(sub.id, None)
        self._naive_ids.discard(sub.id)
        keys = self._member_keys.pop(sub.id, None)
        if keys:
            self.group.discard(keys)
        self._quiet.pop(sub.id, None)

    def detach(self) -> None:
        self.index.detach()

    def fast_capable(self, sub: Subscription) -> bool:
        return sub.id in self._member_keys or sub.id in self._naive_ids

    def quiet(self, sub: Subscription) -> bool:
        """Is ``sub`` provably relevance-quiet on the current document?

        Served from the round's shared pass; stale verdicts (document
        version moved) trigger one fresh pass for *all* fast-capable
        members — later subscriptions of the round reuse it.
        """
        if self._quiet_version != self.document.version:
            self._compute_quiet()
        return self._quiet.get(sub.id, False)

    def _live_calls(self) -> list[Node]:
        out: list[Node] = []
        for bucket in self.index.functions.values():
            out.extend(bucket.values())
        return out

    def _compute_quiet(self) -> None:
        document = self.document
        calls = self._live_calls()
        has_immediate = any(
            c.activation is Activation.IMMEDIATE for c in calls
        )
        has_live = any(
            c.activation is not Activation.FROZEN for c in calls
        )
        quiet: dict[int, bool] = {}
        keys = [
            key
            for sub_id, member_keys in self._member_keys.items()
            for key in member_keys
        ]
        result = None
        if keys and not has_immediate and has_live:
            # The pass is pointless when an IMMEDIATE call forces the
            # engine anyway, or when no live call exists to retrieve.
            result = self.group.evaluate(document, keys=keys)
            self.group_passes += 1
            self.group_pass_nodes += result.nodes_visited
        for sub_id, member_keys in self._member_keys.items():
            if has_immediate:
                quiet[sub_id] = False
                continue
            if not has_live:
                quiet[sub_id] = True
                continue
            verdict = True
            for key in member_keys:
                for call in result.match_sets[key].distinct_nodes():
                    if (
                        call.activation is not Activation.FROZEN
                        and document.contains(call)
                    ):
                        verdict = False
                        break
                if not verdict:
                    break
            quiet[sub_id] = verdict
        for sub_id in self._naive_ids:
            quiet[sub_id] = not has_immediate and not has_live
        self._quiet = quiet
        self._quiet_version = document.version


@dataclasses.dataclass(frozen=True)
class RoundReport:
    """What one :meth:`QueryServer.run_round` did, per refresh."""

    index: int
    started_s: float
    ended_s: float
    outcomes: tuple[RefreshOutcome, ...]

    def counts(self) -> dict[str, int]:
        """Outcome counts by status value."""
        out: dict[str, int] = {}
        for outcome in self.outcomes:
            out[outcome.status.value] = out.get(outcome.status.value, 0) + 1
        return out

    def for_tenant(self, tenant: str) -> list[RefreshOutcome]:
        """This round's outcomes for one tenant, in serving order."""
        return [o for o in self.outcomes if o.tenant == tenant]


class QueryServer:
    """A long-lived session manager for standing queries.

    One server owns one :class:`~repro.services.registry.ServiceBus`
    (shared invocation log, call cache and breakers), one
    :class:`~repro.lazy.engine.LazyQueryEvaluator`, and any number of
    documents and subscriptions.  Engine behaviour travels on exactly
    one ``config=`` :class:`EngineConfig` (default
    :meth:`EngineConfig.serving`); loose engine kwargs are rejected
    with the nearest field named.

    Typical use::

        server = repro.QueryServer(services)
        sub = server.subscribe("/feed/item/title/$T", document,
                               tenant="alice")
        ...mutate document...
        report = server.run_round()
        for delta in sub.stream:
            print(delta.added, delta.removed)
    """

    def __init__(
        self,
        services,
        *,
        config: Optional[EngineConfig] = None,
        schema: Optional[Schema] = None,
        trace=None,
        **unexpected,
    ) -> None:
        reject_engine_kwargs("QueryServer", unexpected)
        if config is not None and not isinstance(config, EngineConfig):
            raise TypeError(
                f"QueryServer config must be an EngineConfig, got "
                f"{config!r}"
            )
        self.config = config or EngineConfig.serving()
        self.bus = bus_of(services)
        self.engine = LazyQueryEvaluator(
            self.bus, schema=schema, config=self.config
        )
        self.clock = ServingClock(self.bus)
        self.tracer = tracer_for(
            trace if trace is not None else self.config.trace,
            sim_clock=self.clock.now,
        )
        self.rounds_run = 0
        self._docs: dict[int, _DocumentGroup] = {}
        self._subs: dict[int, Subscription] = {}
        self._tenants: dict[str, TenantAccount] = {}
        self._sub_ids = itertools.count()
        self._due_seqs = itertools.count()

    # -- tenants ---------------------------------------------------------------

    def register_tenant(
        self, name: str, policy: Optional[TenantPolicy] = None
    ) -> TenantAccount:
        """Declare a tenant and its QoS policy (idempotent re-policy)."""
        account = self._tenants.get(name)
        if account is None:
            account = TenantAccount(name, policy)
            self._tenants[name] = account
        elif policy is not None:
            account.policy = policy
        return account

    def tenant(self, name: str) -> TenantAccount:
        """The tenant's account, auto-registered with no limits."""
        return self.register_tenant(name)

    def tenant_metrics(self) -> dict[str, dict]:
        """Per-tenant metric snapshots, keyed by tenant name."""
        return {
            name: account.metrics()
            for name, account in sorted(self._tenants.items())
        }

    # -- subscriptions ---------------------------------------------------------

    @property
    def subscriptions(self) -> list[Subscription]:
        """Live subscriptions, in registration order."""
        return [s for s in self._subs.values() if not s.cancelled]

    def subscribe(
        self,
        query: Union[TreePattern, str],
        document: Union[Document, Node, str],
        *,
        tenant: str = "default",
        name: Optional[str] = None,
        eager: bool = True,
        **unexpected,
    ) -> Subscription:
        """Register a standing query and return its :class:`Subscription`.

        ``query``/``document`` accept the same shapes as
        ``repro.evaluate`` (pattern or string; document, root node or
        XML text).  ``eager`` evaluates immediately (outside admission
        — materialisation cost belongs to subscribe, not to a round);
        the initial answer, if any, is the stream's first delta.
        """
        reject_engine_kwargs("QueryServer.subscribe", unexpected)
        if isinstance(query, str):
            query = parse_pattern(query, name=name)
        if isinstance(document, str):
            document = parse_document(document)
        elif isinstance(document, Node):
            document = build_document(document)
        account = self.tenant(tenant)
        sub_id = next(self._sub_ids)
        core = ContinuousQuery(self.engine, query, document, eager=False)
        sub = Subscription(
            self,
            core,
            sub_id=sub_id,
            name=name or query.name or f"sub-{sub_id}",
            tenant=tenant,
        )
        group = self._docs.get(id(document))
        if group is None:
            group = _DocumentGroup(document, self.engine.match_options)
            self._docs[id(document)] = group
        group.add(sub, relevance_family(query, self.config))
        self._subs[sub_id] = sub
        if eager:
            before = len(self.bus.log.records)
            started = time.perf_counter()
            core.refresh()
            self.clock.charge(time.perf_counter() - started)
            account.invocations_total += len(self.bus.log.records) - before
            sub._emit(self.clock.now(), round_index=-1)
        return sub

    def cancel(self, sub: Subscription) -> None:
        """End ``sub``: detach observers, drop its group members."""
        if sub.cancelled:
            return
        sub.cancelled = True
        sub._core.close()
        group = self._docs.get(id(sub.document))
        if group is not None:
            group.remove(sub)
            if not group.subs:
                group.detach()
                del self._docs[id(sub.document)]
        del self._subs[sub.id]

    # -- rounds ----------------------------------------------------------------

    def _due_subscriptions(self) -> list[Subscription]:
        now = self.clock.now()
        due = []
        for sub in self._subs.values():
            if sub.cancelled or not sub.is_stale:
                continue
            if sub._due_seq is None:
                sub._due_seq = next(self._due_seqs)
                sub._due_at = now
            due.append(sub)
        due.sort(
            key=lambda s: (self._tenants[s.tenant].policy.priority, s._due_seq)
        )
        return due

    def run_round(self) -> RoundReport:
        """Serve every due subscription once (FIFO within priority)."""
        index = self.rounds_run
        self.rounds_run += 1
        for account in self._tenants.values():
            account.begin_round()
        started = self.clock.now()
        due = self._due_subscriptions()
        passes_before = sum(g.group_passes for g in self._docs.values())
        outcomes = []
        with self.tracer.span(
            SERVE_ROUND,
            round=index,
            due=len(due),
            subscriptions=len(self._subs),
        ) as span:
            for sub in due:
                outcomes.append(self._serve(sub, index))
            if span is not None:
                counts = {}
                for outcome in outcomes:
                    counts[outcome.status.value] = (
                        counts.get(outcome.status.value, 0) + 1
                    )
                span.tags.update(counts)
                span.tags["group_passes"] = (
                    sum(g.group_passes for g in self._docs.values())
                    - passes_before
                )
        return RoundReport(
            index=index,
            started_s=started,
            ended_s=self.clock.now(),
            outcomes=tuple(outcomes),
        )

    def refresh_one(self, sub: Subscription) -> RefreshOutcome:
        """Serve one subscription on demand (admission still applies).

        Round budgets are those of the current round window — calling
        this between rounds spends the same per-round allowances the
        next :meth:`run_round` would reset.
        """
        if sub.cancelled:
            raise ValueError(f"subscription {sub.name!r} is cancelled")
        if not sub.is_stale:
            outcome = RefreshOutcome(
                subscription_id=sub.id,
                subscription_name=sub.name,
                tenant=sub.tenant,
                status=RefreshStatus.FRESH,
                latency_s=0.0,
                rows=len(sub.rows),
                document_version=sub.document.version,
            )
            self._tenants[sub.tenant].record(outcome)
            return outcome
        if sub._due_seq is None:
            sub._due_seq = next(self._due_seqs)
            sub._due_at = self.clock.now()
        return self._serve(sub, self.rounds_run - 1)

    def _serve(self, sub: Subscription, round_index: int) -> RefreshOutcome:
        """Serve one due subscription: fast path, engine, or deferral."""
        account = self._tenants[sub.tenant]
        core = sub._core
        group = self._docs[id(sub.document)]
        started_wall = time.perf_counter()
        reason = None
        invoked = 0
        skips0 = core.engine_skips
        serves0 = core.maintained_serves
        evals0 = core.refresh_count
        with self.tracer.span(
            SERVE_REFRESH, subscription=sub.name, tenant=sub.tenant
        ) as span:
            served = None
            if group.fast_capable(sub) and group.quiet(sub):
                served = core.serve_maintained()
            if served is None:
                reason = account.admit_engine()
                if reason is None:
                    before = len(self.bus.log.records)
                    core.refresh()
                    invoked = len(self.bus.log.records) - before
                    account.charge_engine(invoked)
            if span is not None and reason is not None:
                span.tags["deferred"] = reason
        self.clock.charge(time.perf_counter() - started_wall)
        now = self.clock.now()
        if core.refresh_count > evals0:
            status = RefreshStatus.EVALUATED
        elif core.maintained_serves > serves0:
            status = RefreshStatus.MAINTAINED
        elif core.engine_skips > skips0:
            status = RefreshStatus.SKIPPED
        elif reason is not None:
            status = RefreshStatus.DEFERRED
        else:
            status = RefreshStatus.FRESH
        if status is RefreshStatus.DEFERRED:
            outcome = RefreshOutcome(
                subscription_id=sub.id,
                subscription_name=sub.name,
                tenant=sub.tenant,
                status=status,
                reason=reason,
                rows=len(sub.rows),
                document_version=sub.document.version,
            )
        else:
            added = removed = 0
            if status in (
                RefreshStatus.MAINTAINED,
                RefreshStatus.EVALUATED,
            ):
                added, removed = sub._emit(now, round_index)
            latency = now - (sub._due_at if sub._due_at is not None else now)
            sub._due_seq = None
            sub._due_at = None
            outcome = RefreshOutcome(
                subscription_id=sub.id,
                subscription_name=sub.name,
                tenant=sub.tenant,
                status=status,
                latency_s=latency,
                invocations=invoked,
                rows=len(sub.rows),
                delta_added=added,
                delta_removed=removed,
                document_version=sub.document.version,
            )
        account.record(outcome)
        return outcome

    def close(self) -> None:
        """Cancel every subscription and detach all document state."""
        for sub in list(self._subs.values()):
            self.cancel(sub)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryServer(subscriptions={len(self._subs)}, "
            f"tenants={len(self._tenants)}, rounds={self.rounds_run})"
        )
