"""Admission control and per-tenant accounting for the serving layer.

A :class:`~repro.serve.QueryServer` hosts many tenants on one shared
`ServiceBus`; without admission control one tenant whose standing
queries keep triggering invocations (a "noisy neighbor") would spend
the round's wall-clock and simulated budget for everyone.  The QoS
model here is deliberately simple and fully deterministic:

* every tenant has a :class:`TenantPolicy` — an *invocation budget* and
  an *engine-refresh cap* per round, plus a scheduling priority;
* due refreshes are served **FIFO within priority** (lower priority
  number first; within one priority, in the order the subscriptions
  became due);
* a refresh that would run the engine past its tenant's budget or
  inflight cap is **deferred** with a typed
  :class:`RefreshOutcome` (status ``DEFERRED``, reason ``"budget"`` or
  ``"inflight"``) and retried — first in line — next round.  Refreshes
  answered without the engine (guard-screened skips, maintained
  serves) spend no budget and are never deferred.

These caps layer *on top of* the bus's circuit breakers: breakers
protect services from failing callers, budgets protect tenants from
each other.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Optional


class RefreshStatus(enum.Enum):
    """How one due refresh was served (or not) by a round.

    * ``FRESH`` — the document had not changed; nothing to do.
    * ``SKIPPED`` — changed, but every delta guard-screened clean: the
      cached outcome is provably current (PR-6's engine skip).
    * ``MAINTAINED`` — the cross-tenant group pass proved the relevance
      family quiet; the answer was served from the
      :class:`~repro.lazy.answers.AnswerCache` (dirty scopes re-matched
      in place), no engine run.
    * ``EVALUATED`` — the engine ran in full (and possibly invoked).
    * ``DEFERRED`` — admission refused the engine run this round
      (``reason`` says why); the subscription stays due.
    """

    FRESH = "fresh"
    SKIPPED = "skipped"
    MAINTAINED = "maintained"
    EVALUATED = "evaluated"
    DEFERRED = "deferred"


@dataclasses.dataclass(frozen=True)
class RefreshOutcome:
    """The typed result of serving (or deferring) one due refresh."""

    subscription_id: int
    subscription_name: str
    tenant: str
    status: RefreshStatus
    reason: Optional[str] = None
    """Why a ``DEFERRED`` refresh was deferred: ``"budget"`` or
    ``"inflight"``; ``None`` for served refreshes."""
    latency_s: Optional[float] = None
    """Serving-clock seconds from the moment the subscription became
    due to the moment it was served; ``None`` while deferred."""
    invocations: int = 0
    """Service invocations charged to the tenant by this refresh."""
    rows: int = 0
    """Answer size after the refresh."""
    delta_added: int = 0
    delta_removed: int = 0
    document_version: int = 0

    @property
    def served(self) -> bool:
        """True unless the refresh was deferred."""
        return self.status is not RefreshStatus.DEFERRED


@dataclasses.dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant QoS knobs, all optional (``None`` = unlimited)."""

    invocation_budget: Optional[int] = None
    """Once a round has charged this many invocations to the tenant,
    further engine refreshes are deferred to the next round.  The last
    admitted refresh may overrun (invocation counts are only known
    after the fact); the overrun still counts against the budget."""
    max_inflight: Optional[int] = None
    """Maximum engine refreshes per tenant per round — a cap on how
    much of the (serial, simulated) round one tenant may occupy."""
    priority: int = 0
    """Scheduling class: lower numbers are served first.  Within one
    priority, due refreshes are FIFO by the order they became due."""

    def __post_init__(self) -> None:
        for name in ("invocation_budget", "max_inflight"):
            bound = getattr(self, name)
            if bound is not None and (
                not isinstance(bound, int)
                or isinstance(bound, bool)
                or bound < 1
            ):
                raise ValueError(
                    f"TenantPolicy.{name} must be a positive integer or "
                    f"None, got {bound!r}"
                )
        if not isinstance(self.priority, int) or isinstance(
            self.priority, bool
        ):
            raise TypeError(
                f"TenantPolicy.priority must be an int, got "
                f"{self.priority!r}"
            )


def quantile(values: list[float], q: float) -> float:
    """The empirical ``q``-quantile (nearest-rank), 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class TenantAccount:
    """One tenant's live admission state and cumulative metrics."""

    def __init__(self, name: str, policy: Optional[TenantPolicy] = None):
        self.name = name
        self.policy = policy or TenantPolicy()
        # Per-round admission state (reset by begin_round).
        self.round_invocations = 0
        self.round_engine_runs = 0
        # Cumulative accounting.
        self.refreshes = 0
        self.by_status: dict[str, int] = {
            status.value: 0 for status in RefreshStatus
        }
        self.invocations_total = 0
        self.latencies_s: list[float] = []
        self.rows_delivered = 0
        """Delta rows (added + removed) streamed to this tenant."""

    def begin_round(self) -> None:
        """Reset the per-round budget/inflight counters."""
        self.round_invocations = 0
        self.round_engine_runs = 0

    def admit_engine(self) -> Optional[str]:
        """May this tenant run one more engine refresh this round?

        Returns ``None`` when admitted, else the deferral reason.
        """
        policy = self.policy
        if (
            policy.max_inflight is not None
            and self.round_engine_runs >= policy.max_inflight
        ):
            return "inflight"
        if (
            policy.invocation_budget is not None
            and self.round_invocations >= policy.invocation_budget
        ):
            return "budget"
        return None

    def charge_engine(self, invocations: int) -> None:
        """Account one admitted engine refresh and its invocations."""
        self.round_engine_runs += 1
        self.round_invocations += invocations
        self.invocations_total += invocations

    def record(self, outcome: RefreshOutcome) -> None:
        """Fold one refresh outcome into the cumulative metrics."""
        self.refreshes += 1
        self.by_status[outcome.status.value] += 1
        if outcome.latency_s is not None:
            self.latencies_s.append(outcome.latency_s)
        self.rows_delivered += outcome.delta_added + outcome.delta_removed

    def latency_quantile(self, q: float) -> float:
        """Served-refresh latency quantile (serving-clock seconds)."""
        return quantile(self.latencies_s, q)

    def metrics(self) -> dict:
        """A snapshot dict — what the CLI and benchmarks report."""
        return {
            "tenant": self.name,
            "refreshes": self.refreshes,
            **self.by_status,
            "invocations": self.invocations_total,
            "rows_delivered": self.rows_delivered,
            "p50_latency_s": self.latency_quantile(0.50),
            "p99_latency_s": self.latency_quantile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TenantAccount({self.name!r}, refreshes={self.refreshes}, "
            f"invocations={self.invocations_total})"
        )
