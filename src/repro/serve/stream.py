"""Per-subscriber answer delta streams.

A :class:`~repro.serve.QueryServer` round serves many subscriptions
from one shared pass; what each subscriber actually wants back is not
the full row set every time but *what changed*.  :class:`AnswerStream`
is the per-subscription outbox: whenever a refresh changes the
subscription's answer, an :class:`AnswerDelta` (the added and removed
value rows, computed against the maintained
:class:`~repro.lazy.answers.AnswerCache` snapshot) is pushed here.

Consumption is pull *or* push:

* iterate the stream (``for delta in sub.stream``) to drain pending
  deltas — the iterator removes what it yields, so two consumers never
  see the same delta twice;
* or register a callback (:meth:`AnswerStream.on_delta`) to be invoked
  synchronously at push time — deltas are still buffered, so a late
  iterator can catch up.

The buffer is bounded (a slow consumer must not hold the server's
memory hostage): past ``max_pending`` deltas the *oldest* entries are
dropped and counted in :attr:`AnswerStream.dropped` — the stream
degrades to "you missed some history, re-read ``Subscription.rows``",
never to unbounded growth.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable, Iterator


ValueRow = tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class AnswerDelta:
    """One refresh's answer change for one subscription.

    ``added``/``removed`` are value-row sets (the same shape
    :meth:`~repro.lazy.engine.EvaluationOutcome.value_rows` returns);
    ``rows_total`` is the full answer size *after* this delta, so a
    consumer that missed deltas can detect drift cheaply.
    """

    added: frozenset[ValueRow]
    removed: frozenset[ValueRow]
    rows_total: int
    document_version: int
    round_index: int
    at_s: float
    """Serving-clock timestamp (simulated bus seconds + measured
    compute seconds) at which the delta was served."""

    @property
    def empty(self) -> bool:
        """True when nothing changed (never pushed, but composable)."""
        return not self.added and not self.removed


class AnswerStream:
    """A bounded buffer + callback fan-out of one subscription's deltas."""

    def __init__(self, max_pending: int = 1024) -> None:
        if max_pending < 1:
            raise ValueError(
                f"AnswerStream.max_pending must be >= 1, got {max_pending!r}"
            )
        self.max_pending = max_pending
        self.dropped = 0
        """Deltas evicted because the buffer was full (oldest first)."""
        self.delivered = 0
        """Deltas pushed over the stream's lifetime."""
        self._pending: collections.deque[AnswerDelta] = collections.deque()
        self._callbacks: list[Callable[[AnswerDelta], None]] = []

    def push(self, delta: AnswerDelta) -> None:
        """Buffer ``delta`` and fan it out to registered callbacks.

        Called by the serving layer; user code normally only consumes.
        """
        self.delivered += 1
        self._pending.append(delta)
        while len(self._pending) > self.max_pending:
            self._pending.popleft()
            self.dropped += 1
        for callback in self._callbacks:
            callback(delta)

    def on_delta(self, callback: Callable[[AnswerDelta], None]) -> None:
        """Register ``callback`` to run synchronously on every push."""
        self._callbacks.append(callback)

    @property
    def pending(self) -> int:
        """Deltas buffered and not yet drained."""
        return len(self._pending)

    def take(self) -> list[AnswerDelta]:
        """Drain and return every pending delta, oldest first."""
        out = list(self._pending)
        self._pending.clear()
        return out

    def __iter__(self) -> Iterator[AnswerDelta]:
        """Drain pending deltas; each is yielded exactly once."""
        while self._pending:
            yield self._pending.popleft()

    def __len__(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnswerStream(pending={len(self._pending)}, "
            f"delivered={self.delivered}, dropped={self.dropped})"
        )
