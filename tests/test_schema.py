"""Unit tests for schemas: parsing, validation, derived alphabets."""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.schema.regex import DATA, parse_regex
from repro.schema.schema import Schema, SchemaError, parse_schema
from repro.workloads.hotels import HOTELS_SCHEMA_TEXT, figure_1_document


@pytest.fixture
def schema():
    return parse_schema(HOTELS_SCHEMA_TEXT)


def test_parse_schema_sections(schema):
    assert set(schema.function_names()) == {
        "getHotels",
        "getNearbyMuseums",
        "getNearbyRestos",
        "getRating",
    }
    assert schema.has_element("hotel")
    assert schema.content_model("hotel") == parse_regex(
        "name.address.rating.nearby"
    )


def test_signature_lookup(schema):
    sig = schema.signature("getRating")
    assert sig.input_type == parse_regex("data")
    assert sig.output_type == parse_regex("data")
    assert not sig.output_is_any


def test_unknown_names_default_to_any(schema):
    assert schema.signature("mystery").output_is_any
    assert schema.content_model("mystery").mentions_any()
    assert not schema.is_function_name("mystery")


def test_declare_helpers():
    schema = Schema()
    schema.declare_element("a", "b*")
    schema.declare_function("f", "data", "b")
    assert schema.has_element("a")
    assert schema.signature("f").output_type == parse_regex("b")


def test_parse_schema_rejects_stray_lines():
    with pytest.raises(SchemaError):
        parse_schema("a = b")  # outside any section
    with pytest.raises(SchemaError):
        parse_schema("elements:\njust words")
    with pytest.raises(SchemaError):
        parse_schema("functions:\n f = data")  # missing [in:, out:]


def test_comments_and_blank_lines_ignored():
    schema = parse_schema(
        """
        # a comment
        elements:
          a = b*   # trailing comment

        """
    )
    assert schema.has_element("a")


def test_child_word(schema):
    doc = figure_1_document()
    hotel = doc.root.children[0]
    assert Schema.child_word(hotel) == ["name", "address", "rating", "nearby"]
    nearby = hotel.children[3]
    assert Schema.child_word(nearby) == ["getNearbyRestos", "getNearbyMuseums"]


def test_validate_figure_1_document(schema):
    assert schema.validate_document(figure_1_document()) == []


def test_validate_flags_bad_content(schema):
    doc = build_document(E("hotels", E("hotel", E("name", V("x")))))
    errors = schema.validate_document(doc)
    assert len(errors) == 1
    assert "hotel" in errors[0]


def test_validate_output(schema):
    ok = [E("restaurant", E("name", V("n")), E("address", V("a")), E("rating", V("5")))]
    assert schema.validate_output("getNearbyRestos", ok) == []
    bad = [E("museum", E("name", V("n")), E("address", V("a")))]
    errors = schema.validate_output("getNearbyRestos", bad)
    assert errors and "getNearbyRestos" in errors[0]


def test_validate_call_input(schema):
    doc = build_document(E("hotels", C("getHotels", E("oops"))))
    errors = schema.validate_document(doc)
    assert errors and "input of call" in errors[0]


def test_derived_child_letters_expand_functions(schema):
    letters, top = schema.derived_child_letters("rating")
    assert letters == {DATA}
    assert not top
    letters, top = schema.derived_child_letters("nearby")
    assert letters == {"restaurant", "museum"}
    assert not top


def test_derived_output_letters(schema):
    letters, top = schema.derived_output_letters("getHotels")
    assert letters == {"hotel"}
    letters, top = schema.derived_output_letters("unknownService")
    assert top


def test_recursive_schema_alphabet_terminates():
    schema = parse_schema(
        """
        functions:
          f = [in: data, out: a.f?]
        elements:
          a = f?
        """
    )
    letters, top = schema.derived_child_letters("a")
    assert letters == {"a"}
    assert not top


def test_can_contain_closure(schema):
    below, top = schema.can_contain_closure("hotel")
    assert "restaurant" in below
    assert "museum" in below
    assert DATA in below
    assert "hotel" not in below  # hotels do not nest
    assert not top


def test_render_roundtrips(schema):
    again = parse_schema(schema.render())
    assert again.function_names() == schema.function_names()
    assert set(again.elements) == set(schema.elements)
