"""Tests for the multi-tenant serving layer (repro.serve)."""

import dataclasses

import pytest

import repro
from repro import C, E, V, EngineConfig, Strategy, TableService
from repro.lazy.continuous import ContinuousQuery
from repro.lazy.engine import LazyQueryEvaluator
from repro.pattern.match import MatchOptions
from repro.serve import (
    AnswerDelta,
    AnswerStream,
    QueryServer,
    RefreshStatus,
    TenantPolicy,
    quantile,
)
from repro.services.registry import ServiceBus, ServiceRegistry, bus_of


def resto_service(latency_s=0.05):
    return TableService(
        "getNearbyRestos",
        {
            "1 Madison Av.": [E("resto", V("Nobu"))],
            "2 Av.": [E("resto", V("Katz"))],
            "3 Av.": [E("resto", V("Shula"))],
        },
        latency_s=latency_s,
    )


def hotels_doc():
    return repro.build_document(
        E(
            "hotels",
            E(
                "hotel",
                E("name", V("Ritz")),
                E(
                    "nearby",
                    E("resto", V("Balthazar")),
                    C("getNearbyRestos", V("1 Madison Av.")),
                ),
            ),
        )
    )


RESTOS = "/hotels/hotel/nearby/resto/$R"
NAMES = "/hotels/hotel/name/$N"


# ---------------------------------------------------------------------------
# repro.subscribe: coercion, rows, refresh, cancel
# ---------------------------------------------------------------------------


class TestSubscribeFacade:
    def test_accepts_same_shapes_as_evaluate(self):
        xml = repro.serialize_document(hotels_doc())
        sub = repro.subscribe(RESTOS, xml, services=[resto_service()])
        assert sub.rows == {("Balthazar",), ("Nobu",)}
        sub.cancel()

    def test_accepts_node_document_and_parsed_query(self):
        query = repro.parse_pattern(RESTOS)
        root = E(
            "hotels",
            E("hotel", E("name", V("Ritz")), E("nearby", E("resto", V("X")))),
        )
        sub = repro.subscribe(query, root, services=[])
        assert sub.rows == {("X",)}
        assert sub.query is query

    def test_reuses_an_existing_bus(self):
        bus = ServiceBus(ServiceRegistry([resto_service()]))
        sub = repro.subscribe(RESTOS, hotels_doc(), services=bus)
        assert len(bus.log.records) == 1
        assert sub.rows == {("Balthazar",), ("Nobu",)}

    def test_lazy_subscription_evaluates_on_first_refresh(self):
        sub = repro.subscribe(
            RESTOS, hotels_doc(), services=[resto_service()], eager=False
        )
        assert sub.rows == frozenset()
        assert sub.is_stale
        outcome = sub.refresh()
        assert outcome.status is RefreshStatus.EVALUATED
        assert sub.rows == {("Balthazar",), ("Nobu",)}

    def test_refresh_when_fresh_is_free(self):
        sub = repro.subscribe(RESTOS, hotels_doc(), services=[resto_service()])
        outcome = sub.refresh()
        assert outcome.status is RefreshStatus.FRESH
        assert outcome.invocations == 0
        assert outcome.latency_s == 0.0

    def test_cancel_is_idempotent_and_final(self):
        sub = repro.subscribe(RESTOS, hotels_doc(), services=[resto_service()])
        sub.cancel()
        sub.cancel()
        assert sub.cancelled
        with pytest.raises(ValueError, match="cancelled"):
            sub.refresh()

    def test_loose_engine_kwargs_rejected_with_nearest_field(self):
        with pytest.raises(TypeError, match="maintain_answers"):
            repro.subscribe(
                RESTOS,
                hotels_doc(),
                services=[resto_service()],
                maintain_answer=False,
            )

    def test_unrecognisable_kwarg_still_rejected(self):
        with pytest.raises(TypeError, match="zzzzz"):
            repro.subscribe(
                RESTOS, hotels_doc(), services=[], zzzzz=1
            )


# ---------------------------------------------------------------------------
# Answer delta streams
# ---------------------------------------------------------------------------


class TestAnswerStream:
    def test_initial_answer_is_the_first_delta(self):
        sub = repro.subscribe(RESTOS, hotels_doc(), services=[resto_service()])
        deltas = sub.stream.take()
        assert len(deltas) == 1
        assert deltas[0].added == {("Balthazar",), ("Nobu",)}
        assert deltas[0].removed == frozenset()
        assert deltas[0].rows_total == 2

    def test_refresh_pushes_only_the_change(self):
        doc = hotels_doc()
        sub = repro.subscribe(RESTOS, doc, services=[resto_service()])
        sub.stream.take()
        nearby = next(
            n
            for n in doc.root.iter_subtree()
            if n.is_element and n.label == "nearby"
        )
        doc.insert_subtree(nearby, E("resto", V("Via Carota")))
        sub.refresh()
        (delta,) = sub.stream.take()
        assert delta.added == {("Via Carota",)}
        assert delta.removed == frozenset()
        assert delta.rows_total == 3

    def test_unchanged_refresh_pushes_nothing(self):
        doc = hotels_doc()
        sub = repro.subscribe(NAMES, doc, services=[resto_service()])
        sub.stream.take()
        doc.insert_subtree(doc.root, E("parking", E("spot", V("L1"))))
        sub.refresh()
        assert sub.stream.pending == 0

    def test_iteration_drains(self):
        stream = AnswerStream()
        for i in range(3):
            stream.push(self._delta(i))
        seen = [d.round_index for d in stream]
        assert seen == [0, 1, 2]
        assert len(stream) == 0

    def test_bounded_buffer_drops_oldest(self):
        stream = AnswerStream(max_pending=2)
        for i in range(5):
            stream.push(self._delta(i))
        assert stream.dropped == 3
        assert stream.delivered == 5
        assert [d.round_index for d in stream.take()] == [3, 4]

    def test_callbacks_fire_on_push(self):
        stream = AnswerStream()
        seen = []
        stream.on_delta(lambda d: seen.append(d.round_index))
        stream.push(self._delta(7))
        assert seen == [7]
        assert stream.pending == 1  # still buffered for iterators

    def test_max_pending_must_be_positive(self):
        with pytest.raises(ValueError, match="max_pending"):
            AnswerStream(max_pending=0)

    @staticmethod
    def _delta(i):
        return AnswerDelta(
            added=frozenset({(str(i),)}),
            removed=frozenset(),
            rows_total=1,
            document_version=i,
            round_index=i,
            at_s=0.0,
        )


# ---------------------------------------------------------------------------
# The cross-tenant fast path: statuses and invocation discipline
# ---------------------------------------------------------------------------


class TestFastPath:
    def make_server(self, **config_kwargs):
        server = QueryServer(
            [resto_service()], config=EngineConfig.serving(**config_kwargs)
        )
        doc = hotels_doc()
        return server, doc

    def test_quiet_insert_is_skipped(self):
        server, doc = self.make_server()
        sub = server.subscribe(RESTOS, doc)
        doc.insert_subtree(doc.root, E("parking", E("spot", V("L1"))))
        report = server.run_round()
        assert report.counts() == {"skipped": 1}
        assert sub.rows == {("Balthazar",), ("Nobu",)}

    def test_relevant_extensional_insert_is_maintained_without_engine(self):
        server, doc = self.make_server()
        sub = server.subscribe(RESTOS, doc)
        invocations_before = len(server.bus.log.records)
        nearby = next(
            n
            for n in doc.root.iter_subtree()
            if n.is_element and n.label == "nearby"
        )
        doc.insert_subtree(nearby, E("resto", V("Lilia")))
        (outcome,) = server.run_round().outcomes
        assert outcome.status is RefreshStatus.MAINTAINED
        assert outcome.invocations == 0
        assert len(server.bus.log.records) == invocations_before
        assert sub.rows == {("Balthazar",), ("Nobu",), ("Lilia",)}
        assert sub.maintained_serves == 1

    def test_inserted_call_forces_the_engine(self):
        server, doc = self.make_server()
        sub = server.subscribe(RESTOS, doc)
        nearby = next(
            n
            for n in doc.root.iter_subtree()
            if n.is_element and n.label == "nearby"
        )
        doc.insert_subtree(nearby, C("getNearbyRestos", V("2 Av.")))
        (outcome,) = server.run_round().outcomes
        assert outcome.status is RefreshStatus.EVALUATED
        assert outcome.invocations == 1
        assert sub.rows == {("Balthazar",), ("Nobu",), ("Katz",)}

    def test_immediate_call_disables_the_shortcut(self):
        server, doc = self.make_server()
        server.subscribe(NAMES, doc)
        call = C(
            "getNearbyRestos",
            V("3 Av."),
            activation=repro.Activation.IMMEDIATE,
        )
        doc.insert_subtree(doc.root.children[0], call)
        (outcome,) = server.run_round().outcomes
        assert outcome.status is RefreshStatus.EVALUATED

    def test_shared_group_pass_serves_many_subscribers(self):
        server, doc = self.make_server()
        subs = [
            server.subscribe(text, doc, name=f"q{i}")
            for i, text in enumerate([RESTOS, NAMES, RESTOS, NAMES])
        ]
        group = server._docs[id(doc)]
        # A live call in a position no family retrieves (not a hotel
        # child, not under nearby) keeps the document intensional, so
        # quiet verdicts need an actual relevance pass.
        doc.insert_subtree(
            doc.root, E("garage", C("getNearbyRestos", V("3 Av.")))
        )
        doc.insert_subtree(doc.root, E("hotel", E("name", V("Savoy"))))
        report = server.run_round()
        assert {o.status.value for o in report.outcomes} <= {
            "skipped",
            "maintained",
        }
        # One shared pass answered every fast-capable member.
        assert group.group_passes == 1
        assert subs[1].rows == {("Ritz",), ("Savoy",)}

    def test_naive_strategy_falls_back_while_calls_are_live(self):
        server, doc = self.make_server(strategy=Strategy.NAIVE)
        sub = server.subscribe(RESTOS, doc)
        assert sub.rows == {("Balthazar",), ("Nobu",)}
        # All calls are consumed now; a quiet insert serves maintained.
        doc.insert_subtree(doc.root, E("parking", E("spot", V("L2"))))
        (outcome,) = server.run_round().outcomes
        assert outcome.status in (
            RefreshStatus.SKIPPED,
            RefreshStatus.MAINTAINED,
        )

    def test_unmaintained_config_always_runs_the_engine(self):
        server = QueryServer(
            [resto_service()],
            config=EngineConfig(strategy=Strategy.LAZY_NFQ),
        )
        doc = hotels_doc()
        server.subscribe(RESTOS, doc)
        doc.insert_subtree(doc.root, E("parking", E("spot", V("L1"))))
        (outcome,) = server.run_round().outcomes
        assert outcome.status is RefreshStatus.EVALUATED

    def test_rows_match_an_independent_refresh_loop(self):
        """The serving shortcut must be invisible in rows and calls."""
        server, server_doc = self.make_server()
        baseline_bus = bus_of([resto_service()])
        baseline_doc = hotels_doc()
        engine = LazyQueryEvaluator(
            baseline_bus, config=EngineConfig.serving()
        )
        queries = [RESTOS, NAMES]
        subs = [server.subscribe(q, server_doc) for q in queries]
        loops = [
            ContinuousQuery(engine, repro.parse_pattern(q), baseline_doc)
            for q in queries
        ]
        mutations = [
            lambda d: d.insert_subtree(d.root, E("parking", E("x", V("1")))),
            lambda d: d.insert_subtree(
                d.root, E("hotel", E("name", V("Savoy")))
            ),
            lambda d: d.insert_subtree(
                next(
                    n
                    for n in d.root.iter_subtree()
                    if n.is_element and n.label == "nearby"
                ),
                C("getNearbyRestos", V("2 Av.")),
            ),
        ]
        for mutate in mutations:
            mutate(baseline_doc)
            mutate(server_doc)
            baseline_rows = [set(cq.refresh().value_rows()) for cq in loops]
            server.run_round()
            assert [set(s.rows) for s in subs] == baseline_rows
            assert [
                (r.service_name, r.call_node_id, r.fault)
                for r in baseline_bus.log.records
            ] == [
                (r.service_name, r.call_node_id, r.fault)
                for r in server.bus.log.records
            ]
        for cq in loops:
            cq.close()


# ---------------------------------------------------------------------------
# Admission control: budgets, inflight caps, priorities
# ---------------------------------------------------------------------------


def make_call_heavy_doc():
    return repro.build_document(
        E(
            "hotels",
            E(
                "hotel",
                E("name", V("Ritz")),
                E("nearby", C("getNearbyRestos", V("1 Madison Av."))),
            ),
        )
    )


class TestAdmission:
    def test_budget_defers_only_the_noisy_tenant(self):
        server = QueryServer([resto_service()])
        server.register_tenant("noisy", TenantPolicy(invocation_budget=1))
        noisy_doc = make_call_heavy_doc()
        victim_doc = make_call_heavy_doc()
        noisy = [
            server.subscribe(RESTOS, noisy_doc, tenant="noisy", eager=False)
            for _ in range(3)
        ]
        victim = server.subscribe(
            RESTOS, victim_doc, tenant="victim", eager=False
        )
        report = server.run_round()
        by_name = {}
        for outcome in report.outcomes:
            by_name.setdefault(outcome.tenant, []).append(outcome.status)
        # The first noisy refresh invokes and exhausts the budget; the
        # rest of that tenant defers.  The victim is untouched.
        assert by_name["noisy"][0] is RefreshStatus.EVALUATED
        assert all(
            s is RefreshStatus.DEFERRED for s in by_name["noisy"][1:]
        )
        assert by_name["victim"] == [RefreshStatus.EVALUATED]
        assert victim.rows == {("Nobu",)}
        deferred = [
            o
            for o in report.outcomes
            if o.status is RefreshStatus.DEFERRED
        ]
        assert {o.reason for o in deferred} == {"budget"}
        assert all(not o.served for o in deferred)
        # Deferred subscriptions are still due and go first next round.
        report2 = server.run_round()
        assert [o.tenant for o in report2.outcomes][:1] == ["noisy"]
        assert noisy[1].rows == {("Nobu",)}

    def test_inflight_cap_limits_engine_runs_per_round(self):
        server = QueryServer([resto_service()])
        server.register_tenant("t", TenantPolicy(max_inflight=2))
        doc = make_call_heavy_doc()
        for _ in range(4):
            server.subscribe(RESTOS, doc, tenant="t", eager=False)
        report = server.run_round()
        counts = report.counts()
        assert counts["deferred"] >= 1
        deferred = [
            o
            for o in report.outcomes
            if o.status is RefreshStatus.DEFERRED
        ]
        assert {o.reason for o in deferred} == {"inflight"}

    def test_skips_and_maintained_serves_cost_no_budget(self):
        server = QueryServer([resto_service()])
        server.register_tenant(
            "t", TenantPolicy(invocation_budget=1, max_inflight=1)
        )
        doc = hotels_doc()
        subs = [
            server.subscribe(RESTOS, doc, tenant="t") for _ in range(5)
        ]
        doc.insert_subtree(doc.root, E("hotel", E("name", V("Savoy"))))
        report = server.run_round()
        assert "deferred" not in report.counts()
        assert all(o.served for o in report.outcomes)
        assert all(s.rows == subs[0].rows for s in subs)

    def test_priority_orders_rounds_fifo_within_class(self):
        server = QueryServer([resto_service()])
        server.register_tenant("bulk", TenantPolicy(priority=1))
        server.register_tenant("gold", TenantPolicy(priority=0))
        doc = hotels_doc()
        server.subscribe(NAMES, doc, tenant="bulk", name="b0")
        server.subscribe(NAMES, doc, tenant="gold", name="g0")
        server.subscribe(NAMES, doc, tenant="bulk", name="b1")
        server.subscribe(NAMES, doc, tenant="gold", name="g1")
        doc.insert_subtree(doc.root, E("parking", E("spot", V("L1"))))
        report = server.run_round()
        assert [o.subscription_name for o in report.outcomes] == [
            "g0",
            "g1",
            "b0",
            "b1",
        ]
        assert report.for_tenant("gold")[0].subscription_name == "g0"

    def test_tenant_policy_validation(self):
        with pytest.raises(ValueError, match="invocation_budget"):
            TenantPolicy(invocation_budget=0)
        with pytest.raises(ValueError, match="max_inflight"):
            TenantPolicy(max_inflight=-2)
        with pytest.raises(TypeError, match="priority"):
            TenantPolicy(priority="high")

    def test_tenant_metrics_snapshot(self):
        server = QueryServer([resto_service()])
        doc = hotels_doc()
        server.subscribe(RESTOS, doc, tenant="a")
        doc.insert_subtree(doc.root, E("parking", E("spot", V("L1"))))
        server.run_round()
        metrics = server.tenant_metrics()["a"]
        assert metrics["refreshes"] == 1
        assert metrics["skipped"] == 1
        assert metrics["invocations"] == 1  # the eager subscribe
        assert metrics["p99_latency_s"] >= 0.0


# ---------------------------------------------------------------------------
# The serving clock
# ---------------------------------------------------------------------------


class TestServingClock:
    def test_simulated_service_time_is_charged(self):
        server = QueryServer([resto_service(latency_s=2.5)])
        server.subscribe(RESTOS, hotels_doc())
        assert server.clock.now() >= 2.5

    def test_compute_time_accumulates(self):
        server = QueryServer([resto_service()])
        doc = hotels_doc()
        server.subscribe(RESTOS, doc)
        before = server.clock.compute_s
        doc.insert_subtree(doc.root, E("parking", E("spot", V("L1"))))
        server.run_round()
        assert server.clock.compute_s > before

    def test_latency_measures_due_to_served(self):
        server = QueryServer([resto_service(latency_s=1.0)])
        doc = make_call_heavy_doc()
        sub = server.subscribe(RESTOS, doc, eager=False)
        (outcome,) = server.run_round().outcomes
        assert outcome.status is RefreshStatus.EVALUATED
        assert outcome.latency_s is not None
        assert outcome.latency_s >= 1.0  # the simulated invocation
        assert not sub.is_stale

    def test_quantile_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert quantile(values, 0.50) == 50.0
        assert quantile(values, 0.99) == 99.0
        assert quantile([], 0.99) == 0.0
        assert quantile([7.0], 0.5) == 7.0


# ---------------------------------------------------------------------------
# Config consolidation: serving() preset, single config= entry point
# ---------------------------------------------------------------------------


class TestConfigSurface:
    def test_serving_preset(self):
        config = EngineConfig.serving()
        assert config.maintain_answers
        assert config.incremental
        assert config.shared_matching
        assert config.call_cache
        assert config.max_concurrency == 4
        assert config.fault_policy is repro.FaultPolicy.default_non_raising()

    def test_serving_preset_accepts_overrides(self):
        config = EngineConfig.serving(
            strategy=Strategy.LAZY_LPQ, maintain_answers=False
        )
        assert config.strategy is Strategy.LAZY_LPQ
        assert not config.maintain_answers

    def test_nearest_field_suggestions(self):
        assert EngineConfig.nearest_field("maintain_answer") == (
            "maintain_answers"
        )
        assert EngineConfig.nearest_field("stratgy") == "strategy"
        assert EngineConfig.nearest_field("qqqqqq") is None

    def test_query_server_rejects_loose_engine_kwargs(self):
        with pytest.raises(TypeError, match="call_cache"):
            QueryServer([], call_caching=True)

    def test_query_server_rejects_non_config(self):
        with pytest.raises(TypeError, match="EngineConfig"):
            QueryServer([], config={"strategy": "lazy-nfq"})

    def test_subscribe_method_rejects_loose_engine_kwargs(self):
        server = QueryServer([])
        with pytest.raises(TypeError, match="shared_matching"):
            server.subscribe(NAMES, hotels_doc(), shared_matchin=True)

    def test_config_match_options_flow_to_the_engine(self):
        options = MatchOptions(descend_into_parameters=True)
        config = EngineConfig(match_options=options)
        engine = LazyQueryEvaluator(bus_of([]), config=config)
        assert engine.match_options is options

    def test_conflicting_match_options_raise(self):
        config = EngineConfig(
            match_options=MatchOptions(descend_into_parameters=True)
        )
        with pytest.raises(ValueError, match="conflicting match options"):
            repro.evaluate(
                NAMES,
                hotels_doc(),
                services=[],
                config=config,
                match_options=MatchOptions(),
            )

    def test_agreeing_match_options_are_fine(self):
        options = MatchOptions(descend_into_parameters=True)
        config = EngineConfig(match_options=options)
        outcome = repro.evaluate(
            NAMES,
            hotels_doc(),
            services=[],
            config=config,
            match_options=MatchOptions(descend_into_parameters=True),
        )
        assert outcome.value_rows() == {("Ritz",)}

    def test_match_options_field_is_validated(self):
        with pytest.raises(TypeError, match="match_options"):
            EngineConfig(match_options="strict")


# ---------------------------------------------------------------------------
# ContinuousQuery compatibility shim
# ---------------------------------------------------------------------------


class TestContinuousQueryShim:
    def test_keyword_form_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="repro.subscribe"):
            cq = ContinuousQuery(
                query=repro.parse_pattern(RESTOS),
                document=hotels_doc(),
                services=[resto_service()],
                config=EngineConfig.serving(),
            )
        assert cq.value_rows() == {("Balthazar",), ("Nobu",)}
        cq.close()

    def test_evaluator_and_services_together_rejected(self):
        engine = LazyQueryEvaluator(bus_of([]))
        with pytest.raises(ValueError, match="not both"):
            ContinuousQuery(
                engine,
                repro.parse_pattern(NAMES),
                hotels_doc(),
                services=[resto_service()],
            )

    def test_missing_arguments_rejected(self):
        with pytest.raises(TypeError, match="requires an evaluator"):
            ContinuousQuery(query=repro.parse_pattern(NAMES))


# ---------------------------------------------------------------------------
# Server lifecycle
# ---------------------------------------------------------------------------


class TestServerLifecycle:
    def test_documents_share_state_only_within_a_group(self):
        server = QueryServer([resto_service()])
        doc_a, doc_b = hotels_doc(), hotels_doc()
        sub_a = server.subscribe(RESTOS, doc_a)
        sub_b = server.subscribe(RESTOS, doc_b)
        doc_a.insert_subtree(doc_a.root, E("parking", E("spot", V("L1"))))
        report = server.run_round()
        assert len(report.outcomes) == 1  # only doc_a's sub was due
        assert report.outcomes[0].subscription_id == sub_a.id
        assert not sub_b.is_stale

    def test_cancel_detaches_document_group(self):
        server = QueryServer([resto_service()])
        doc = hotels_doc()
        sub1 = server.subscribe(RESTOS, doc)
        sub2 = server.subscribe(NAMES, doc)
        sub1.cancel()
        assert id(doc) in server._docs
        sub2.cancel()
        assert id(doc) not in server._docs
        assert server.subscriptions == []

    def test_close_cancels_everything(self):
        server = QueryServer([resto_service()])
        doc = hotels_doc()
        subs = [server.subscribe(NAMES, doc) for _ in range(3)]
        server.close()
        assert all(s.cancelled for s in subs)
        assert server._docs == {}

    def test_round_report_counts_empty_round(self):
        server = QueryServer([resto_service()])
        server.subscribe(NAMES, hotels_doc())
        report = server.run_round()
        assert report.outcomes == ()
        assert report.counts() == {}

    def test_rounds_are_traced(self):
        sink = repro.InMemorySink()
        server = QueryServer(
            [resto_service()], config=EngineConfig.serving(), trace=sink
        )
        doc = hotels_doc()
        server.subscribe(RESTOS, doc)
        doc.insert_subtree(doc.root, E("parking", E("spot", V("L1"))))
        server.run_round()
        names = [span.name for span in sink.spans]
        assert "serve_round" in names
        assert "serve_refresh" in names
