"""Direct tests for the F-guide residual verification (Section 6.2).

``_verify_candidate`` aligns an NFQ's spine with a guide candidate's
ancestor chain and checks the non-linear conditions — the "remaining
query ... starting from the set of function calls returned by
q_v^lin" of the paper.

Note the optimistic semantics (Prop. 1): a candidate call can satisfy
*its own* sibling conditions — its future result might contain the
required data — so the only conditions that rule a candidate out are
those that fail extensionally at positions no remaining call covers.
"""

from repro.axml.builder import C, E, V, build_document
from repro.lazy.engine import _verify_candidate
from repro.lazy.relevance import build_nfqs
from repro.pattern.match import Matcher
from repro.pattern.parse import parse_pattern


def nfq_for(query, label):
    nodes = {n.uid: n for n in query.nodes()}
    for rq in build_nfqs(query):
        if any(nodes[uid].label == label for uid in rq.all_target_uids):
            return rq
    raise AssertionError(label)


def verify(rq, candidate):
    return _verify_candidate(rq, candidate, Matcher(rq.pattern))


def agree_with_full_evaluation(query, doc):
    """The invariant: guide verification == full NFQ evaluation, for
    every NFQ and every call of the document (boolean semantics)."""
    for rq in build_nfqs(query):
        matcher = Matcher(rq.pattern)
        retrieved = {
            id(n) for n in matcher.evaluate(doc).distinct_nodes()
        }
        for call_node in doc.function_nodes():
            expected = id(call_node) in retrieved
            # Position mismatch is what the guide pre-filters; verify
            # only claims correctness for position-matching candidates,
            # so only check calls the full evaluation retrieved or that
            # verification accepted.
            got = verify(rq, call_node)
            if got:
                assert expected, (rq.pattern.to_string(), call_node.label)
            if expected:
                assert got, (rq.pattern.to_string(), call_node.label)


def test_uncoverable_condition_rules_candidates_out():
    query = parse_pattern('/r[flag="on"]/item/x')
    doc_on = build_document(
        E("r", E("flag", V("on")), E("item", C("good")))
    )
    doc_off = build_document(
        E("r", E("flag", V("off")), E("item", C("bad")))
    )
    rq = nfq_for(query, "x")
    assert verify(rq, doc_on.function_nodes()[0])
    # flag sits at the r level where no call remains: provably hopeless.
    assert not verify(rq, doc_off.function_nodes()[0])


def test_candidate_satisfies_its_own_sibling_conditions():
    """Prop. 1 optimism: the call itself may return the missing tag."""
    query = parse_pattern('/r/item[tag="hot"]/x')
    doc = build_document(
        E("r", E("item", E("tag", V("cold")), C("maybe")))
    )
    rq = nfq_for(query, "x")
    assert verify(rq, doc.function_nodes()[0])


def test_descendant_output_alignment():
    query = parse_pattern("/r/a//b/c")
    doc = build_document(
        E("r", E("a", E("deep", E("b", C("hit")))), E("z", E("b", C("miss"))))
    )
    rq = nfq_for(query, "c")
    hit = [n for n in doc.function_nodes() if n.label == "hit"][0]
    miss = [n for n in doc.function_nodes() if n.label == "miss"][0]
    assert verify(rq, hit)
    # 'miss' sits under /r/z/b — its ancestors cannot align with r/a//b.
    assert not verify(rq, miss)


def test_descendant_target_accepts_any_depth():
    query = parse_pattern("/r/a//b")
    doc = build_document(
        E("r", E("a", C("shallow"), E("mid", E("deep", C("deeper")))))
    )
    rq = nfq_for(query, "b")
    for call_node in doc.function_nodes():
        assert verify(rq, call_node), call_node.label


def test_named_output_filters_by_service():
    from repro.lazy.relevance import NFQBuilder
    from repro.schema.graphschema import LenientSatisfiability
    from repro.schema.schema import parse_schema

    schema = parse_schema(
        """
        functions:
          getX = [in: data, out: x]
          getY = [in: data, out: y]
        elements:
          r = (x | getX | getY)*
          x = data
          y = data
        """
    )
    query = parse_pattern("/r/x")
    builder = NFQBuilder(
        query,
        oracle=LenientSatisfiability(schema),
        function_names=schema.function_names(),
    )
    x_node = [n for n in query.nodes() if n.label == "x"][0]
    rq = builder.build_for(x_node)
    doc = build_document(E("r", C("getX"), C("getY")))
    get_x, get_y = doc.function_nodes()
    assert verify(rq, get_x)
    assert not verify(rq, get_y)  # name not in the refined output set


def test_verification_agrees_with_full_nfq_evaluation():
    query = parse_pattern('/r[flag="on"]/item[tag="hot"]/x')
    doc = build_document(
        E(
            "r",
            E("flag", V("on")),
            E("item", E("tag", V("hot")), C("a")),
            E("item", E("tag", V("cold")), C("b")),
            E("item", C("c")),
        )
    )
    agree_with_full_evaluation(query, doc)


def test_verification_agrees_on_figure_1():
    from repro.workloads.hotels import figure_1_document, paper_query

    agree_with_full_evaluation(paper_query(), figure_1_document())
