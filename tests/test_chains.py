"""Tests for the chained-call workload (used by experiment E5)."""

import pytest

from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.services.registry import ServiceCall
from repro.workloads.chains import build_chain_workload


def run(workload, **config_kwargs):
    bus = workload.make_bus()
    engine = LazyQueryEvaluator(
        bus, schema=workload.schema, config=EngineConfig(**config_kwargs)
    )
    return engine.evaluate(workload.query, workload.make_document())


def test_chain_requires_minimum_depth():
    with pytest.raises(ValueError):
        build_chain_workload(depth=1)


def test_chain_materialises_level_by_level():
    wl = build_chain_workload(depth=5, width=1)
    outcome = run(wl, strategy=Strategy.NAIVE)
    assert outcome.metrics.calls_invoked == 5
    assert outcome.value_rows() == {("leaf-0",)}


def test_chain_width_multiplies_work():
    wl = build_chain_workload(depth=4, width=3)
    outcome = run(wl, strategy=Strategy.LAZY_NFQ)
    assert outcome.metrics.calls_invoked == 12
    assert outcome.value_rows() == {("leaf-0",), ("leaf-1",), ("leaf-2",)}


def test_chain_document_is_schema_valid_at_every_stage():
    wl = build_chain_workload(depth=4, width=2)
    doc = wl.make_document()
    bus = wl.make_bus()
    assert wl.schema.validate_document(doc) == []
    while doc.function_nodes():
        call = doc.function_nodes()[0]
        reply = bus.invoke(
            ServiceCall(service=call.label, parameters=call.children)
        ).reply
        doc.replace_call(call, reply.forest)
        assert wl.schema.validate_document(doc) == []


def test_parallel_rounds_equal_depth():
    wl = build_chain_workload(depth=6, width=5)
    outcome = run(wl, strategy=Strategy.LAZY_NFQ, parallel=True)
    assert outcome.metrics.invocation_rounds == 6
    assert outcome.metrics.calls_invoked == 30


def test_layering_reduces_relevance_evaluations():
    wl = build_chain_workload(depth=6, width=4)
    plain = run(wl, strategy=Strategy.LAZY_NFQ, use_layers=False)
    layered = run(wl, strategy=Strategy.LAZY_NFQ, parallel=False)
    assert layered.value_rows() == plain.value_rows()
    assert layered.metrics.relevance_evaluations < plain.metrics.relevance_evaluations


def test_lazy_skips_unqueried_branches():
    """Querying one branch only must leave the others un-materialised."""
    from repro.pattern.parse import parse_pattern

    wl = build_chain_workload(depth=5, width=4)
    document = wl.make_document()
    bus = wl.make_bus()
    query = parse_pattern("/chain/branch/l1/l2/l3/l4/$LEAF")
    engine = LazyQueryEvaluator(
        bus, schema=wl.schema, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    outcome = engine.evaluate(query, document)
    # All four branches share the same positions: all are relevant.
    assert outcome.metrics.calls_invoked == 20
    # But a branch-local filter prunes the others via conditions... the
    # chain services key results by branch index, so check the answer.
    assert len(outcome.value_rows()) == 4
