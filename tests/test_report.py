"""Tests for the strategy-comparison report utility."""

import pytest

from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.report import compare_strategies, format_comparison
from repro.services.registry import ServiceBus
from repro.workloads.hotels import (
    figure_1_document,
    figure_1_registry,
    figure_1_schema,
    paper_query,
)


def run_comparison(configs):
    return compare_strategies(
        configs,
        paper_query(),
        document_factory=figure_1_document,
        bus_factory=lambda: ServiceBus(figure_1_registry()),
        schema=figure_1_schema(),
    )


def test_compare_strategies_runs_each_config_independently():
    rows = run_comparison(
        [
            EngineConfig(strategy=Strategy.NAIVE),
            EngineConfig(strategy=Strategy.LAZY_NFQ),
            EngineConfig(strategy=Strategy.LAZY_NFQ_TYPED),
        ]
    )
    assert [row.label for row in rows] == [
        "naive",
        "lazy-nfq",
        "lazy-nfq-typed+lenient",
    ]
    calls = [row.outcome.metrics.calls_invoked for row in rows]
    assert calls == sorted(calls, reverse=True)
    assert len({row.outcome.metrics.result_rows for row in rows}) == 1


def test_format_comparison_is_aligned_text():
    rows = run_comparison([EngineConfig(strategy=Strategy.LAZY_NFQ)])
    text = format_comparison(rows, title="demo")
    lines = text.splitlines()
    assert lines[0] == "== demo =="
    assert "strategy" in lines[1] and "calls" in lines[1]
    assert len({len(lines[1]), len(lines[2])}) == 1  # header and rule align
    assert "lazy-nfq" in text


def test_disagreement_raises():
    class LyingConfig(EngineConfig):
        pass

    # Simulate disagreement by comparing against a different query via a
    # doctored factory: second run sees an empty document.
    toggler = {"first": True}

    def factory():
        if toggler["first"]:
            toggler["first"] = False
            return figure_1_document()
        from repro.axml.builder import E, build_document

        return build_document(E("hotels"))

    with pytest.raises(AssertionError):
        compare_strategies(
            [
                EngineConfig(strategy=Strategy.NAIVE),
                EngineConfig(strategy=Strategy.LAZY_NFQ),
            ],
            paper_query(),
            document_factory=factory,
            bus_factory=lambda: ServiceBus(figure_1_registry()),
        )


def test_schema_consistency_check():
    from repro.schema.schema import parse_schema

    clean = parse_schema(
        """
        functions:
          f = [in: data, out: a*]
        elements:
          a = data
        """
    )
    assert clean.check_consistency() == []

    sloppy = parse_schema(
        """
        functions:
          f = [in: data, out: typo*]
        elements:
          a = other.f
        """
    )
    warnings = sloppy.check_consistency()
    assert any("'other'" in w for w in warnings)
    assert any("'typo'" in w for w in warnings)
