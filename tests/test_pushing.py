"""Unit tests for query pushing (Section 7)."""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.lazy.pushing import BindingsOverlay, pushed_subquery_for
from repro.pattern.match import Matcher
from repro.pattern.nodes import EdgeKind, PatternKind
from repro.pattern.parse import parse_pattern
from repro.services.registry import ServiceBus, ServiceRegistry
from repro.services.catalog import StaticService
from repro.services.service import BindingRow, PushMode
from repro.workloads.hotels import (
    figure_1_document,
    figure_1_registry,
    figure_1_schema,
    paper_query,
)


def test_pushed_subquery_is_the_query_subtree():
    query = paper_query()
    restaurant = [n for n in query.nodes() if n.label == "restaurant"][0]
    pushed = pushed_subquery_for(query, restaurant)
    assert pushed.pattern.root.label == "restaurant"
    assert pushed.anchor_edge is EdgeKind.DESCENDANT
    # Section 7's example: //restaurant[rating="5",name=X,address=Y].
    assert pushed.pattern.to_string() == (
        '/restaurant[name[$X!]][address[$Y!]][rating["5"]]'
    )


def test_all_variables_become_result_nodes():
    query = parse_pattern("/a/b[c=$X][d=$Y]", result_variables=["X"])
    b = [n for n in query.nodes() if n.label == "b"][0]
    pushed = pushed_subquery_for(query, b)
    marked = {n.label for n in pushed.pattern.result_nodes()}
    assert marked == {"X", "Y"}
    assert pushed.bindable


def test_non_variable_results_disable_bindings():
    query = parse_pattern("/a/b/c")  # result is the element c
    b = [n for n in query.nodes() if n.label == "b"][0]
    pushed = pushed_subquery_for(query, b)
    assert not pushed.bindable


def test_pure_filter_subquery_is_bindable():
    query = parse_pattern('/a/b[c="1"]/d')
    c = [n for n in query.nodes() if n.label == "c"][0]
    pushed = pushed_subquery_for(query, c)
    assert pushed.bindable
    assert pushed.pattern.result_nodes() == []


def test_overlay_rows_join_with_environment():
    query = parse_pattern("/a/b[name=$X]")
    b = [n for n in query.nodes() if n.label == "b"][0]
    pushed = pushed_subquery_for(query, b)
    overlay = BindingsOverlay()
    doc = build_document(E("a"))
    overlay.add(doc.root, pushed, [BindingRow((("X", "v1"),))])
    rows = overlay.lookup(doc.root, b)
    assert len(rows) == 1
    assert rows[0].merge_env({}) == {"X": "v1"}
    assert rows[0].merge_env({"X": "v1"}) == {"X": "v1"}
    assert rows[0].merge_env({"X": "other"}) is None


def test_overlay_supplies_result_nodes():
    query = parse_pattern("/a/b[name=$X]")
    b = [n for n in query.nodes() if n.label == "b"][0]
    x = [n for n in query.nodes() if n.is_variable][0]
    pushed = pushed_subquery_for(query, b)
    overlay = BindingsOverlay()
    doc = build_document(E("a"))
    overlay.add(doc.root, pushed, [BindingRow((("X", "v1"),))])
    matched = Matcher(query, overlay=overlay).evaluate(doc)
    assert matched.value_rows() == {("v1",)}
    (row,) = matched.rows
    assert row.nodes[0].is_value


def test_overlay_lookup_through_or_alternatives():
    from repro.lazy.relevance import build_nfqs

    query = parse_pattern('/a[b="1"]/c')
    b = [n for n in query.nodes() if n.label == "b"][0]
    pushed = pushed_subquery_for(query, b)
    overlay = BindingsOverlay()
    doc = build_document(E("a", C("getC")))
    overlay.add(doc.root, pushed, [BindingRow(())])
    # The NFQ for c OR-wraps the b condition; the overlay must satisfy it.
    nfqs = build_nfqs(query)
    c_nfq = [
        rq for rq in nfqs
        if rq.pattern.to_string().endswith("[()!]")
    ]
    for rq in nfqs:
        matched = Matcher(rq.pattern, overlay=overlay).evaluate(doc)
        if rq.target.label == "c":
            assert len(matched.distinct_nodes()) == 1


def test_engine_bindings_push_records_overlay(fig1_schema):
    doc = figure_1_document()
    bus = ServiceBus(figure_1_registry())
    config = EngineConfig(
        strategy=Strategy.LAZY_NFQ, push_mode=PushMode.BINDINGS
    )
    outcome = LazyQueryEvaluator(bus, schema=fig1_schema, config=config).evaluate(
        paper_query(), doc
    )
    assert outcome.overlay is not None
    assert outcome.overlay.row_count >= 1
    pushed_records = [r for r in bus.log.records if r.push_mode == "bindings"]
    assert pushed_records
    assert all(r.returned_bindings for r in pushed_records)


def test_push_reduces_received_bytes(fig1_schema):
    def run(push_mode):
        doc = figure_1_document()
        bus = ServiceBus(figure_1_registry())
        config = EngineConfig(strategy=Strategy.LAZY_NFQ, push_mode=push_mode)
        out = LazyQueryEvaluator(
            bus, schema=fig1_schema, config=config
        ).evaluate(paper_query(), doc)
        return out

    plain = run(PushMode.NONE)
    filtered = run(PushMode.FILTERED)
    bindings = run(PushMode.BINDINGS)
    assert plain.value_rows() == filtered.value_rows() == bindings.value_rows()
    assert filtered.metrics.bytes_received <= plain.metrics.bytes_received
    assert bindings.metrics.bytes_received <= filtered.metrics.bytes_received


def test_push_suppressed_when_positions_are_shared():
    """A call whose position several query nodes could use must be
    invoked un-pushed (the engine's safety rule)."""
    registry = ServiceRegistry(
        [StaticService("f", [E("x", V("1")), E("y", V("2"))])]
    )
    bus = ServiceBus(registry)
    doc = build_document(E("root", C("f")))
    query = parse_pattern("/root[x][y]")
    config = EngineConfig(strategy=Strategy.LAZY_NFQ, push_mode=PushMode.FILTERED)
    out = LazyQueryEvaluator(bus, config=config).evaluate(query, doc)
    assert len(out.rows) == 1
    # Both x and y NFQs sit at /root: no pushing happened.
    assert all(r.push_mode == "none" for r in bus.log.records)


def test_deep_position_bindings_reach_descendant_steps():
    """Regression: a bindings reply recorded at a call position *deep*
    in the document (here two levels down, under an ``epsilon``) stands
    for embeddings that a descendant step consulted at an ancestor
    would have found in the spliced forest.  The overlay used to key
    rows by exact position only, so ``//beta`` evaluated at the root
    never saw them and the query silently lost rows."""

    def make_doc():
        return build_document(
            E(
                "root",
                E("beta", E("epsilon", C("getBeta", V("k")))),
                E("beta", V("1")),
            ),
            name="deep-push",
        )

    def make_bus():
        return ServiceBus(
            ServiceRegistry(
                [
                    StaticService(
                        "getBeta",
                        [E("beta", V("alpha")), E("beta", V("2"))],
                    )
                ]
            )
        )

    query = parse_pattern("/root[//beta=$X][beta]", result_variables=["X"])

    naive = LazyQueryEvaluator(
        make_bus(), config=EngineConfig(strategy=Strategy.NAIVE)
    ).evaluate(query, make_doc())

    config = EngineConfig(
        strategy=Strategy.LAZY_NFQ, push_mode=PushMode.BINDINGS
    )
    pushed = LazyQueryEvaluator(make_bus(), config=config).evaluate(
        query, make_doc()
    )
    # The reply must actually have been recorded in the overlay (at the
    # epsilon position, below the node the descendant step starts from).
    assert pushed.overlay is not None and pushed.overlay.row_count >= 1
    assert pushed.value_rows() == naive.value_rows()
    assert ("alpha",) in pushed.value_rows()
    assert ("2",) in pushed.value_rows()
