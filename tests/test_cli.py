"""Tests for the command-line interface."""

import pytest

from repro.axml.xmlio import serialize_document
from repro.cli import load_services, main
from repro.workloads.hotels import HOTELS_SCHEMA_TEXT, figure_1_document

SERVICES_XML = """<services>
  <service name="getRating" in="data" out="data">
    <case key="22 Madison Av.">2</case>
    <case key="13 Penn St.">5</case>
    <default>3</default>
  </service>
  <service name="getNearbyRestos" in="data" out="restaurant*" latency="0.01">
    <case key="75, 2nd Av.">
      <restaurant><name>Jo Mama</name><address>75, 2nd Av.</address>
        <rating>5</rating></restaurant>
    </case>
    <default/>
  </service>
  <service name="getNearbyMuseums" in="data" out="museum*"><default/></service>
  <service name="getHotels" in="data" out="hotel*" push="false">
    <default/>
  </service>
</services>"""

QUERY = (
    '/hotels/hotel[name="Best Western"][rating="5"]'
    '/nearby//restaurant[name=$X][address=$Y][rating="5"]'
)


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "hotels.xml").write_text(
        serialize_document(figure_1_document())
    )
    (tmp_path / "hotels.schema").write_text(HOTELS_SCHEMA_TEXT)
    (tmp_path / "services.xml").write_text(SERVICES_XML)
    return tmp_path


def test_load_services_builds_table_services(workspace):
    registry = load_services(str(workspace / "services.xml"))
    assert set(registry.names()) == {
        "getHotels",
        "getNearbyMuseums",
        "getNearbyRestos",
        "getRating",
    }
    restos = registry.resolve("getNearbyRestos")
    assert restos.latency_s == 0.01
    forest = restos.produce([_value_param("75, 2nd Av.")])
    assert forest[0].label == "restaurant"
    assert registry.resolve("getHotels").supports_push is False
    assert registry.resolve("getRating").produce(
        [_value_param("unknown")]
    )[0].label == "3"


def _value_param(text):
    from repro.axml.node import value

    return value(text)


def test_eval_command(workspace, capsys):
    code = main(
        [
            "eval",
            "--document", str(workspace / "hotels.xml"),
            "--schema", str(workspace / "hotels.schema"),
            "--services", str(workspace / "services.xml"),
            "--strategy", "lazy-nfq-typed",
            "--query", QUERY,
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Jo Mama" in out
    assert "calls=" in out
    assert "<results>" in out


def test_eval_saves_rewritten_document(workspace, capsys):
    target = workspace / "rewritten.xml"
    main(
        [
            "eval",
            "--document", str(workspace / "hotels.xml"),
            "--services", str(workspace / "services.xml"),
            "--strategy", "lazy-nfq",
            "--query", QUERY,
            "--save-document", str(target),
        ]
    )
    text = target.read_text()
    assert "Jo Mama" in text  # the invoked result was spliced in
    assert "axml:call" in text  # irrelevant calls remain intensional
    assert 'service="getNearbyMuseums"' in text


def test_validate_command_ok(workspace, capsys):
    code = main(
        [
            "validate",
            "--document", str(workspace / "hotels.xml"),
            "--schema", str(workspace / "hotels.schema"),
        ]
    )
    assert code == 0
    assert "valid" in capsys.readouterr().out


def test_validate_command_flags_violations(workspace, capsys):
    (workspace / "bad.xml").write_text("<hotels><hotel><name>x</name></hotel></hotels>")
    code = main(
        [
            "validate",
            "--document", str(workspace / "bad.xml"),
            "--schema", str(workspace / "hotels.schema"),
        ]
    )
    assert code == 1
    assert "violation" in capsys.readouterr().out


def test_analyze_command(workspace, capsys):
    code = main(
        [
            "analyze",
            "--query", '/hotels/hotel[rating="5"]/name',
            "--schema", str(workspace / "hotels.schema"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "linear path queries" in out
    assert "node-focused queries" in out
    assert "layers" in out
    assert "termination" in out and "acyclic" in out


def test_services_file_errors(tmp_path):
    bad = tmp_path / "bad.xml"
    bad.write_text("<services><service><default/></service></services>")
    with pytest.raises(ValueError):
        load_services(str(bad))
    bad.write_text(
        '<services><service name="s"><case>x</case></service></services>'
    )
    with pytest.raises(ValueError):
        load_services(str(bad))


def test_compare_command(workspace, capsys):
    code = main(
        [
            "compare",
            "--document", str(workspace / "hotels.xml"),
            "--schema", str(workspace / "hotels.schema"),
            "--services", str(workspace / "services.xml"),
            "--query", QUERY,
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    for name in ("naive", "top-down", "lazy-lpq", "lazy-nfq", "lazy-nfq-typed"):
        assert name in out


def test_eval_speculative_flag(workspace, capsys):
    code = main(
        [
            "eval",
            "--document", str(workspace / "hotels.xml"),
            "--services", str(workspace / "services.xml"),
            "--strategy", "lazy-nfq",
            "--speculative",
            "--query", QUERY,
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "+spec" in out


def test_eval_fault_flags_retry_recovers(workspace, capsys):
    code = main(
        [
            "eval",
            "--document",
            str(workspace / "hotels.xml"),
            "--services",
            str(workspace / "services.xml"),
            "--query",
            QUERY,
            "--fault-policy",
            "retry",
            "--max-attempts",
            "4",
            "--fault-rate",
            "0.4",
            "--fault-seed",
            "9",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Jo Mama" in out  # the full answer survived the injected faults


def test_eval_tolerant_flag_freezes_instead_of_crashing(workspace, capsys):
    code = main(
        [
            "eval",
            "--document",
            str(workspace / "hotels.xml"),
            "--services",
            str(workspace / "services.xml"),
            "--query",
            QUERY,
            "--tolerant",
            "--fault-rate",
            "1.0",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "frozen=" in out  # faults surfaced in the summary, not a traceback


def test_eval_legacy_skip_faults_flag_still_works(workspace, capsys):
    code = main(
        [
            "eval",
            "--document",
            str(workspace / "hotels.xml"),
            "--services",
            str(workspace / "services.xml"),
            "--query",
            QUERY,
            "--skip-faults",
            "--fault-rate",
            "1.0",
            "--breaker-threshold",
            "0",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "skipped=" in out


def test_serve_command(workspace, capsys):
    code = main(
        [
            "serve",
            "--document", str(workspace / "hotels.xml"),
            "--services", str(workspace / "services.xml"),
            "--query", QUERY,
            "--query", "/hotels/hotel/name/$N",
            "--tenant", "alpha",
            "--tenant", "beta",
            "--rounds", "2",
            "--budget", "5",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "subscribed" in out
    assert "(tenant alpha)" in out and "(tenant beta)" in out
    assert "round 0:" in out and "round 1:" in out
    assert "per-tenant metrics:" in out
    assert "alpha:" in out and "beta:" in out
    assert "pending deltas" in out


def test_eval_rejects_column_match_without_arena(workspace, capsys):
    code = main(
        [
            "eval",
            "--document", str(workspace / "hotels.xml"),
            "--services", str(workspace / "services.xml"),
            "--query", QUERY,
            "--column-match",
        ]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "--column-match" in err and "--arena" in err


def test_eval_rejects_shards_without_shared_matching(workspace, capsys):
    code = main(
        [
            "eval",
            "--document", str(workspace / "hotels.xml"),
            "--services", str(workspace / "services.xml"),
            "--query", QUERY,
            "--shards", "4",
        ]
    )
    err = capsys.readouterr().err
    assert code == 2
    assert "--shards" in err and "--shared-matching" in err


def test_eval_column_match_with_arena_runs(workspace, capsys):
    code = main(
        [
            "eval",
            "--document", str(workspace / "hotels.xml"),
            "--services", str(workspace / "services.xml"),
            "--query", "/hotels/hotel/name/$N",
            "--arena",
            "--column-match",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "colmatch" in out  # the config label names the column path
    assert "rows=4" in out
