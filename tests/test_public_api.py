"""Sanity tests for the public API surface."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.axml",
    "repro.pattern",
    "repro.schema",
    "repro.services",
    "repro.lazy",
    "repro.workloads",
    "repro.obs",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_packages_import_cleanly(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize(
    "name",
    [
        "repro",
        "repro.axml",
        "repro.pattern",
        "repro.schema",
        "repro.services",
        "repro.lazy",
        "repro.workloads",
        "repro.obs",
    ],
)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    for exported in module.__all__:
        assert hasattr(module, exported), f"{name}.{exported} missing"


def test_version_is_exposed():
    assert repro.__version__.count(".") == 2


def test_every_public_symbol_is_documented():
    for exported in repro.__all__:
        if exported == "__version__":
            continue
        symbol = getattr(repro, exported)
        if callable(symbol) or isinstance(symbol, type):
            assert symbol.__doc__, f"repro.{exported} lacks a docstring"


def test_readme_quickstart_names_exist():
    for name in (
        "E",
        "V",
        "C",
        "build_document",
        "parse_pattern",
        "parse_schema",
        "ServiceRegistry",
        "ServiceBus",
        "TableService",
        "make_signature",
        "LazyQueryEvaluator",
        "EngineConfig",
        "Strategy",
        "evaluate",
        "InMemorySink",
        "JsonlSink",
        "ServiceCall",
        "InvocationPolicy",
    ):
        assert hasattr(repro, name)
