"""Sanity tests for the public API surface."""

import importlib
import pathlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.axml",
    "repro.pattern",
    "repro.schema",
    "repro.services",
    "repro.lazy",
    "repro.serve",
    "repro.workloads",
    "repro.obs",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_packages_import_cleanly(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize(
    "name",
    [
        "repro",
        "repro.axml",
        "repro.pattern",
        "repro.schema",
        "repro.services",
        "repro.lazy",
        "repro.serve",
        "repro.workloads",
        "repro.obs",
    ],
)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    for exported in module.__all__:
        assert hasattr(module, exported), f"{name}.{exported} missing"


def test_version_is_exposed():
    assert repro.__version__.count(".") == 2


def test_every_public_symbol_is_documented():
    for exported in repro.__all__:
        if exported == "__version__":
            continue
        symbol = getattr(repro, exported)
        if callable(symbol) or isinstance(symbol, type):
            assert symbol.__doc__, f"repro.{exported} lacks a docstring"


def test_serving_surface_is_exported():
    """The serving facade: evaluate's standing-query counterpart."""
    for name in (
        "subscribe",
        "QueryServer",
        "Subscription",
        "AnswerStream",
        "AnswerDelta",
        "TenantPolicy",
        "RefreshStatus",
        "RefreshOutcome",
        "RoundReport",
    ):
        assert hasattr(repro, name), f"repro.{name} missing"
        assert name in repro.__all__, f"repro.{name} not in __all__"


def test_continuous_query_compat_shims_agree():
    """ContinuousQuery stays importable from every historical home."""
    from repro import ContinuousQuery as top
    from repro.lazy import ContinuousQuery as lazy
    from repro.lazy.continuous import ContinuousQuery as direct
    from repro.serve import ContinuousQuery as serve

    assert top is lazy is direct is serve


def test_all_is_sorted_and_matches_dir():
    names = [n for n in repro.__all__ if n != "__version__"]
    assert names == sorted(names), "repro.__all__ is not alphabetized"
    for name in names:
        assert hasattr(repro, name)


def test_docs_mention_serving_layer():
    root = pathlib.Path(repro.__file__).resolve().parents[2]
    internals = (root / "docs" / "internals.md").read_text(encoding="utf-8")
    assert "Serving layer" in internals
    readme = (root / "README.md").read_text(encoding="utf-8")
    assert "repro.subscribe" in readme


def test_readme_quickstart_names_exist():
    for name in (
        "E",
        "V",
        "C",
        "build_document",
        "parse_pattern",
        "parse_schema",
        "ServiceRegistry",
        "ServiceBus",
        "TableService",
        "make_signature",
        "LazyQueryEvaluator",
        "EngineConfig",
        "Strategy",
        "evaluate",
        "InMemorySink",
        "JsonlSink",
        "ServiceCall",
        "InvocationPolicy",
    ):
        assert hasattr(repro, name)
