"""Tests for generic document updates and their observer notifications.

Section 6.2: the F-guide "must also be maintained as the document
evolves.  This maintenance must be performed if the document is updated
but also during query evaluation" — so insertions/removals outside call
invocation must keep observers (and hence guides) in sync.
"""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.axml.node import call, element, value
from repro.lazy.fguide import FGuide


@pytest.fixture
def doc():
    return build_document(
        E("root", E("a", C("f")), E("b"))
    )


def test_insert_subtree_appends_by_default(doc):
    b = doc.root.children[1]
    doc.insert_subtree(b, element("x", value("1")))
    assert [c.label for c in b.children] == ["x"]
    x = b.children[0]
    assert doc.contains(x)
    assert x.node_id is not None


def test_insert_subtree_at_position(doc):
    doc.insert_subtree(doc.root, element("first"), position=0)
    assert [c.label for c in doc.root.children] == ["first", "a", "b"]


def test_insert_rejects_bad_targets(doc):
    with pytest.raises(ValueError):
        doc.insert_subtree(element("loose"), element("x"))
    holder = element("h", element("child"))
    with pytest.raises(ValueError):
        doc.insert_subtree(doc.root, holder.children[0])
    leaf_doc = build_document(E("r", V("text")))
    with pytest.raises(ValueError):
        leaf_doc.insert_subtree(leaf_doc.root.children[0], element("x"))


def test_remove_subtree_detaches_and_unregisters(doc):
    a = doc.root.children[0]
    removed = doc.remove_subtree(a)
    assert removed is a
    assert a.parent is None
    assert not doc.contains(a)
    assert [c.label for c in doc.root.children] == ["b"]


def test_remove_root_is_an_error(doc):
    with pytest.raises(ValueError):
        doc.remove_subtree(doc.root)


class _Recorder:
    def __init__(self):
        self.added = []
        self.removed = []

    def calls_added(self, document, nodes):
        self.added.extend(n.label for n in nodes)

    def call_removed(self, document, node):
        self.removed.append(node.label)


def test_insert_notifies_about_embedded_calls(doc):
    recorder = _Recorder()
    doc.add_observer(recorder)
    doc.insert_subtree(doc.root, element("n", call("g"), element("d", call("h"))))
    assert recorder.added == ["g", "h"]


def test_remove_notifies_about_lost_calls(doc):
    recorder = _Recorder()
    doc.add_observer(recorder)
    doc.remove_subtree(doc.root.children[0])  # subtree 'a' holds call f
    assert recorder.removed == ["f"]


def test_fguide_tracks_inserts_and_removals(doc):
    guide = FGuide(doc)
    assert guide.call_count() == 1

    b = doc.root.children[1]
    doc.insert_subtree(b, element("wrap", call("g")))
    assert guide.call_count() == 2
    assert ("root", "b", "wrap") in guide.paths()

    doc.remove_subtree(doc.root.children[0])  # drops call f
    assert guide.call_count() == 1
    assert ("root", "a") not in guide.paths()

    guide.rebuild()
    assert guide.call_count() == 1  # incremental state == rebuilt state
    guide.detach()


def test_fguide_consistency_under_mixed_mutations(doc):
    guide = FGuide(doc)
    b = doc.root.children[1]
    doc.insert_subtree(b, element("wrap", call("g", value("k"))))
    f = [n for n in doc.function_nodes() if n.label == "f"][0]
    doc.replace_call(f, [element("out", call("h"))])
    incremental = (set(guide.paths()), guide.call_count())
    guide.rebuild()
    assert (set(guide.paths()), guide.call_count()) == incremental
    guide.detach()
