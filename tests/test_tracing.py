"""Tests for the tracing subsystem (repro.obs) and its engine wiring.

Covers the tracer/span mechanics, the span-tree shape an evaluation
produces under each strategy and fault policy (retries, backoff and
breaker transitions must appear as span events), structural nesting
soundness, and the JSONL export round-trip.
"""

import io

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.lazy.config import EngineConfig, FaultPolicy, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.lazy.report import format_trace_profile
from repro.obs.profile import format_phase_profile, phase_profile
from repro.obs.trace import (
    EVALUATE,
    EVENT_ATTEMPT,
    EVENT_BACKOFF,
    EVENT_BREAKER_TRIP,
    EVENT_FAULT,
    EVENT_SHORT_CIRCUIT,
    FINAL_MATCH,
    INVOCATION,
    LAYER,
    NULL_TRACER,
    RELEVANCE_CHECK,
    ROUND,
    SATISFIABILITY,
    InMemorySink,
    JsonlSink,
    TeeSink,
    Tracer,
    load_jsonl_spans,
    tracer_for,
    verify_nesting,
)
from repro.pattern.parse import parse_pattern
from repro.services.catalog import FailingService, StaticService
from repro.services.registry import ServiceBus, ServiceRegistry
from repro.services.resilience import CircuitBreakerPolicy, RetryPolicy
from repro.workloads.hotels import (
    figure_1_document,
    figure_1_registry,
    paper_query,
)

QUERY = parse_pattern("/r/x/$V")


def make_document():
    return build_document(E("r", C("f"), C("g"), E("x", V("0"))))


def transient_registry(failures=2):
    return ServiceRegistry(
        [
            FailingService(
                "f", StaticService("inner", [E("x", V("1"))]), failures=failures
            ),
            StaticService("g", [E("x", V("2"))]),
        ]
    )


def traced_evaluate(registry, document, query, **config_kwargs):
    sink = InMemorySink()
    config = EngineConfig(trace=sink, **config_kwargs)
    engine = LazyQueryEvaluator(ServiceBus(registry), config=config)
    outcome = engine.evaluate(query, document)
    return outcome, sink


# ---------------------------------------------------------------- tracer unit


def test_tracer_builds_nested_spans_and_events():
    sink = InMemorySink()
    clock = {"t": 0.0}
    tracer = Tracer(sink, sim_clock=lambda: clock["t"])
    with tracer.span("outer", kind="demo") as outer:
        clock["t"] = 1.0
        with tracer.span("inner") as inner:
            tracer.event("ping", detail=7)
            clock["t"] = 2.5
    assert [s.name for s in sink.spans] == ["inner", "outer"]  # children first
    assert outer.children == [inner]
    assert inner.parent_id == outer.span_id
    assert outer.tags == {"kind": "demo"}
    assert inner.event_names() == ["ping"]
    assert inner.events[0].tags == {"detail": 7}
    assert inner.start_sim_s == 1.0 and inner.end_sim_s == 2.5
    assert outer.sim_s == 2.5
    assert verify_nesting(outer) == []


def test_null_tracer_is_inert():
    with NULL_TRACER.span("anything", tag=1) as span:
        assert span is None
    NULL_TRACER.event("ignored")
    assert tracer_for(None) is NULL_TRACER


def test_tracer_for_wraps_sinks_and_passes_tracers_through():
    sink = InMemorySink()
    tracer = tracer_for(sink)
    assert isinstance(tracer, Tracer) and tracer.sink is sink
    assert tracer_for(tracer) is tracer


# ------------------------------------------------------------ span-tree shape


def test_lazy_evaluation_produces_one_well_formed_root():
    outcome, sink = traced_evaluate(
        figure_1_registry(), figure_1_document(), paper_query()
    )
    assert outcome.value_rows()  # sanity: the paper's answer exists
    roots = sink.roots
    assert len(roots) == 1
    (root,) = roots
    assert root.name == EVALUATE
    assert root.tags["strategy"] == "lazy-nfq"
    assert "hotels" in root.tags["query"]
    for phase in (SATISFIABILITY, LAYER, ROUND, RELEVANCE_CHECK, FINAL_MATCH):
        assert root.find_all(phase), f"no {phase} span"
    invocations = root.find_all(INVOCATION)
    assert len(invocations) == outcome.metrics.calls_invoked
    assert all(s.tags["service"] for s in invocations)
    assert verify_nesting(root) == []


def test_each_evaluation_gets_its_own_root():
    sink = InMemorySink()
    config = EngineConfig(trace=sink)
    engine = LazyQueryEvaluator(
        ServiceBus(figure_1_registry()), config=config
    )
    engine.evaluate(paper_query(), figure_1_document())
    engine.evaluate(paper_query(), figure_1_document())
    assert len(sink.roots) == 2
    for root in sink.roots:
        assert root.name == EVALUATE
        assert verify_nesting(root) == []


def test_naive_strategy_traces_rounds_too():
    _, sink = traced_evaluate(
        transient_registry(failures=0),
        make_document(),
        QUERY,
        strategy=Strategy.NAIVE,
    )
    (root,) = sink.roots
    rounds = root.find_all(ROUND)
    assert rounds and all(s.tags.get("phase") == "naive" for s in rounds)
    assert root.find_all(INVOCATION)
    assert verify_nesting(root) == []


def test_invocation_spans_record_simulated_service_time():
    _, sink = traced_evaluate(
        figure_1_registry(), figure_1_document(), paper_query()
    )
    (root,) = sink.roots
    assert sum(s.sim_s for s in root.find_all(INVOCATION)) > 0.0


def test_untraced_run_default():
    config = EngineConfig()
    assert config.trace is None  # tracing is strictly opt-in


# ------------------------------------------------- fault policies as events


def test_retry_policy_emits_attempt_backoff_and_fault_events():
    outcome, sink = traced_evaluate(
        transient_registry(failures=2),
        make_document(),
        QUERY,
        fault_policy=FaultPolicy.RETRY,
        retry=RetryPolicy(max_attempts=4, base_backoff_s=0.01),
    )
    assert outcome.metrics.retries == 2
    (root,) = sink.roots
    f_span = next(
        s for s in root.find_all(INVOCATION) if s.tags["service"] == "f"
    )
    names = f_span.event_names()
    assert names.count(EVENT_ATTEMPT) == 3  # fail, fail, succeed
    assert names.count(EVENT_FAULT) == 2
    assert names.count(EVENT_BACKOFF) == 2
    assert all(
        e.tags["seconds"] > 0
        for e in f_span.events
        if e.name == EVENT_BACKOFF
    )
    assert "fault_kind" not in f_span.tags  # eventually succeeded
    assert verify_nesting(root) == []


@pytest.mark.parametrize(
    "policy", [FaultPolicy.FREEZE, FaultPolicy.SKIP], ids=lambda p: p.value
)
def test_single_attempt_policies_record_the_fault(policy):
    outcome, sink = traced_evaluate(
        transient_registry(failures=2),
        make_document(),
        QUERY,
        fault_policy=policy,
        retry=RetryPolicy(max_attempts=1),
    )
    (root,) = sink.roots
    f_span = next(
        s for s in root.find_all(INVOCATION) if s.tags["service"] == "f"
    )
    names = f_span.event_names()
    assert names.count(EVENT_ATTEMPT) == 1
    assert names.count(EVENT_FAULT) == 1
    assert EVENT_BACKOFF not in names
    assert f_span.tags["fault_kind"] == "ServiceFault"
    if policy is FaultPolicy.FREEZE:
        assert outcome.metrics.calls_frozen >= 1
    else:
        assert outcome.metrics.calls_skipped >= 1
    assert verify_nesting(root) == []


def test_breaker_trip_and_short_circuit_appear_as_events():
    _, sink = traced_evaluate(
        transient_registry(failures=10),  # never recovers in this run
        make_document(),
        QUERY,
        fault_policy=FaultPolicy.RETRY,
        retry=RetryPolicy(max_attempts=4, base_backoff_s=0.01),
        breaker=CircuitBreakerPolicy(failure_threshold=3, reset_after_s=None),
    )
    (root,) = sink.roots
    f_span = next(
        s for s in root.find_all(INVOCATION) if s.tags["service"] == "f"
    )
    names = f_span.event_names()
    assert EVENT_BREAKER_TRIP in names
    assert EVENT_SHORT_CIRCUIT in names  # attempt 4 found the circuit open
    assert f_span.tags["fault_kind"] == "CircuitOpenFault"
    assert verify_nesting(root) == []


# ------------------------------------------------------------ export and report


def test_jsonl_export_round_trips_to_in_memory_trees():
    buffer = io.StringIO()
    memory = InMemorySink()
    sink = TeeSink(memory, JsonlSink(buffer))
    config = EngineConfig(
        trace=sink,
        fault_policy=FaultPolicy.RETRY,
        retry=RetryPolicy(max_attempts=4, base_backoff_s=0.01),
    )
    engine = LazyQueryEvaluator(
        ServiceBus(transient_registry(failures=2)), config=config
    )
    engine.evaluate(QUERY, make_document())
    loaded = load_jsonl_spans(buffer.getvalue().splitlines())
    assert [r.to_tree_dict() for r in loaded] == [
        r.to_tree_dict() for r in memory.roots
    ]


def test_jsonl_loader_promotes_orphans_to_roots():
    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    tracer = Tracer(sink)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    lines = buffer.getvalue().splitlines()
    truncated = [l for l in lines if '"name": "inner"' in l]
    (orphan,) = load_jsonl_spans(truncated)
    assert orphan.name == "inner" and orphan.parent_id is not None


def test_phase_profile_uses_exclusive_time_and_formats():
    _, sink = traced_evaluate(
        figure_1_registry(), figure_1_document(), paper_query()
    )
    profile = phase_profile(sink.roots)
    assert profile[INVOCATION].count == len(sink.find_all(INVOCATION))
    (root,) = sink.roots
    # Exclusive times sum back to the root's inclusive wall time.
    total = sum(stats.wall_s for stats in profile.values())
    assert total == pytest.approx(root.wall_s, rel=1e-6, abs=1e-6)
    text = format_phase_profile(profile)
    for phase in (INVOCATION, RELEVANCE_CHECK, FINAL_MATCH):
        assert phase in text
    assert format_trace_profile(sink) == text
