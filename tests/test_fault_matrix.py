"""Fault-policy × strategy matrix: every combination behaves.

All five ``Strategy`` values crossed with RAISE/SKIP/FREEZE/RETRY, over
a document whose calls fail transiently (``FailingService``) or
randomly (``FlakyService``).  The headline invariant: under RETRY the
answer equals the fault-free run for every strategy.
"""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.lazy.config import EngineConfig, FaultPolicy, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.pattern.parse import parse_pattern
from repro.services.catalog import (
    FailingService,
    FlakyService,
    ServiceFault,
    StaticService,
)
from repro.services.registry import ServiceBus, ServiceRegistry
from repro.services.resilience import RetryPolicy

ALL_STRATEGIES = list(Strategy)
TOLERANT_POLICIES = [FaultPolicy.SKIP, FaultPolicy.FREEZE, FaultPolicy.RETRY]

QUERY = parse_pattern("/r/x/$V")


def make_document():
    return build_document(E("r", C("f"), C("g"), E("x", V("0"))))


def transient_registry():
    """``f`` fails twice then recovers; ``g`` always works."""
    return ServiceRegistry(
        [
            FailingService(
                "f", StaticService("inner", [E("x", V("1"))]), failures=2
            ),
            StaticService("g", [E("x", V("2"))]),
        ]
    )


def flaky_registry(rate, seed=11):
    return ServiceRegistry(
        [
            FlakyService(
                StaticService("f", [E("x", V("1"))]), fault_rate=rate, seed=seed
            ),
            FlakyService(
                StaticService("g", [E("x", V("2"))]),
                fault_rate=rate,
                seed=seed + 1,
            ),
        ]
    )


def fault_free_registry():
    return ServiceRegistry(
        [
            StaticService("f", [E("x", V("1"))]),
            StaticService("g", [E("x", V("2"))]),
        ]
    )


def evaluate(registry, strategy, policy, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=4, base_backoff_s=0.01))
    config = EngineConfig(strategy=strategy, fault_policy=policy, **kwargs)
    engine = LazyQueryEvaluator(ServiceBus(registry), config=config)
    return engine.evaluate(QUERY, make_document())


@pytest.fixture(scope="module")
def fault_free_rows():
    rows = {}
    for strategy in ALL_STRATEGIES:
        out = evaluate(fault_free_registry(), strategy, FaultPolicy.RAISE)
        rows[strategy] = out.value_rows()
    # The core invariant first: every strategy agrees fault-free.
    assert len(set(map(frozenset, rows.values()))) == 1
    return rows


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
def test_raise_propagates_transient_faults(strategy):
    with pytest.raises(ServiceFault):
        evaluate(transient_registry(), strategy, FaultPolicy.RAISE)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
@pytest.mark.parametrize("policy", TOLERANT_POLICIES, ids=lambda p: p.value)
def test_tolerant_policies_never_raise_on_transient_faults(strategy, policy):
    out = evaluate(transient_registry(), strategy, policy)
    # The extensional row and g's row survive under every policy.
    assert ("0",) in out.value_rows()
    assert ("2",) in out.value_rows()
    if policy is FaultPolicy.RETRY:
        assert ("1",) in out.value_rows()


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
def test_retry_matches_fault_free_answer(strategy, fault_free_rows):
    out = evaluate(transient_registry(), strategy, FaultPolicy.RETRY)
    assert out.value_rows() == fault_free_rows[strategy]
    assert out.metrics.faults == 2
    assert out.metrics.retries == 2


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
def test_retry_matches_fault_free_answer_under_flaky_services(
    strategy, fault_free_rows
):
    out = evaluate(flaky_registry(rate=0.5), strategy, FaultPolicy.RETRY)
    assert out.value_rows() == fault_free_rows[strategy]


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
def test_freeze_keeps_faulted_calls_intensional(strategy):
    out = evaluate(
        transient_registry(),
        strategy,
        FaultPolicy.FREEZE,
        retry=RetryPolicy(max_attempts=1),
    )
    m = out.metrics
    assert m.calls_frozen >= 1
    assert m.calls_skipped == 0
    # Frozen calls are still in the document, intensional.
    frozen = [
        c for c in out.document.function_nodes() if c.label == "f"
    ]
    assert frozen


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
def test_fault_free_runs_are_untouched_by_the_new_default(strategy):
    """FREEZE (or any tolerant policy) never changes a fault-free run."""
    baseline = evaluate(fault_free_registry(), strategy, FaultPolicy.RAISE)
    tolerant = evaluate(fault_free_registry(), strategy, FaultPolicy.FREEZE)
    assert tolerant.value_rows() == baseline.value_rows()
    assert tolerant.metrics.calls_invoked == baseline.metrics.calls_invoked
    assert tolerant.metrics.faults == 0
    assert tolerant.metrics.calls_frozen == 0
