"""Tests for continuous queries over evolving documents."""

from repro.axml.builder import C, E, V, build_document
from repro.axml.node import call, element, value
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.continuous import ContinuousQuery
from repro.lazy.engine import LazyQueryEvaluator
from repro.pattern.parse import parse_pattern
from repro.services.catalog import TableService
from repro.services.registry import ServiceBus, ServiceRegistry


def make_world():
    document = build_document(
        E("feed", E("item", E("tag", V("hot")), E("title", V("first"))))
    )
    registry = ServiceRegistry(
        [
            TableService(
                "getItems",
                {
                    "k1": [
                        E("item", E("tag", V("hot")), E("title", V("remote-1")))
                    ],
                    "k2": [
                        E("item", E("tag", V("cold")), E("title", V("remote-2")))
                    ],
                },
            )
        ]
    )
    evaluator = LazyQueryEvaluator(
        ServiceBus(registry), config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    query = parse_pattern('/feed/item[tag="hot"]/title/$T')
    return document, evaluator, query


def test_initial_evaluation_and_caching():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document)
    assert standing.value_rows() == {("first",)}
    assert standing.refresh_count == 1
    # No mutation: refresh is a cache hit.
    standing.refresh()
    standing.refresh()
    assert standing.refresh_count == 1
    assert not standing.is_stale


def test_insertion_triggers_reevaluation():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document)
    document.insert_subtree(
        document.root,
        element("item", element("tag", value("hot")),
                element("title", value("second"))),
    )
    assert standing.is_stale
    assert standing.value_rows() == {("first",), ("second",)}
    assert standing.refresh_count == 2


def test_new_calls_are_lazily_pulled_in():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document)
    document.insert_subtree(document.root, call("getItems", value("k1")))
    assert standing.value_rows() == {("first",), ("remote-1",)}
    # The call was invoked during the refresh (the document mutated),
    # but the post-evaluation version is recorded: no further refresh.
    count = standing.refresh_count
    standing.refresh()
    assert standing.refresh_count == count


def test_irrelevant_updates_still_reconverge():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document)
    document.insert_subtree(document.root, call("getItems", value("k2")))
    rows = standing.value_rows()
    assert rows == {("first",)}  # cold item does not qualify
    # The call was still relevant positionally and got invoked once;
    # afterwards the standing query is quiescent again.
    assert standing.peek().metrics.calls_invoked == 1
    count = standing.refresh_count
    standing.refresh()
    assert standing.refresh_count == count


def test_removal_triggers_reevaluation():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document)
    first_item = document.root.children[0]
    document.remove_subtree(first_item)
    assert standing.value_rows() == set()


def test_lazy_eager_flag():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document, eager=False)
    assert standing.peek() is None
    assert standing.refresh_count == 0
    standing.refresh()
    assert standing.peek() is not None
