"""Tests for continuous queries over evolving documents."""

from repro.axml.builder import C, E, V, build_document
from repro.axml.node import call, element, value
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.continuous import ContinuousQuery
from repro.lazy.engine import LazyQueryEvaluator
from repro.pattern.parse import parse_pattern
from repro.services.catalog import TableService
from repro.services.registry import ServiceBus, ServiceCall, ServiceRegistry
from repro.services.scheduler import CallCache
from repro.services.service import PushMode


def make_world():
    document = build_document(
        E("feed", E("item", E("tag", V("hot")), E("title", V("first"))))
    )
    registry = ServiceRegistry(
        [
            TableService(
                "getItems",
                {
                    "k1": [
                        E("item", E("tag", V("hot")), E("title", V("remote-1")))
                    ],
                    "k2": [
                        E("item", E("tag", V("cold")), E("title", V("remote-2")))
                    ],
                },
            )
        ]
    )
    evaluator = LazyQueryEvaluator(
        ServiceBus(registry), config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    query = parse_pattern('/feed/item[tag="hot"]/title/$T')
    return document, evaluator, query


def test_initial_evaluation_and_caching():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document)
    assert standing.value_rows() == {("first",)}
    assert standing.refresh_count == 1
    # No mutation: refresh is a cache hit.
    standing.refresh()
    standing.refresh()
    assert standing.refresh_count == 1
    assert not standing.is_stale


def test_insertion_triggers_reevaluation():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document)
    document.insert_subtree(
        document.root,
        element("item", element("tag", value("hot")),
                element("title", value("second"))),
    )
    assert standing.is_stale
    assert standing.value_rows() == {("first",), ("second",)}
    assert standing.refresh_count == 2


def test_new_calls_are_lazily_pulled_in():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document)
    document.insert_subtree(document.root, call("getItems", value("k1")))
    assert standing.value_rows() == {("first",), ("remote-1",)}
    # The call was invoked during the refresh (the document mutated),
    # but the post-evaluation version is recorded: no further refresh.
    count = standing.refresh_count
    standing.refresh()
    assert standing.refresh_count == count


def test_irrelevant_updates_still_reconverge():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document)
    document.insert_subtree(document.root, call("getItems", value("k2")))
    rows = standing.value_rows()
    assert rows == {("first",)}  # cold item does not qualify
    # The call was still relevant positionally and got invoked once;
    # afterwards the standing query is quiescent again.
    assert standing.peek().metrics.calls_invoked == 1
    count = standing.refresh_count
    standing.refresh()
    assert standing.refresh_count == count


def test_removal_triggers_reevaluation():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document)
    first_item = document.root.children[0]
    document.remove_subtree(first_item)
    assert standing.value_rows() == set()


def test_lazy_eager_flag():
    document, evaluator, query = make_world()
    standing = ContinuousQuery(evaluator, query, document, eager=False)
    assert standing.peek() is None
    assert standing.refresh_count == 0
    standing.refresh()
    assert standing.peek() is not None


# -- scoped call-cache invalidation (the shared-bus bugfix) ------------------


def test_scoped_invalidation_is_once_per_document_version():
    registry = ServiceRegistry(
        [TableService("getItems", {"k1": [E("item")]})]
    )
    cache = CallCache()
    bus = ServiceBus(registry, cache=cache)
    document = build_document(E("feed"))
    bus.invoke(ServiceCall("getItems", (value("k1"),)))
    assert len(cache) == 1
    assert bus.invalidate_cache_scoped(document, {"getItems": 3}) == 1
    bus.invoke(ServiceCall("getItems", (value("k1"),)))  # re-memoized
    # The same touch drained by a sibling standing query drops nothing.
    assert bus.invalidate_cache_scoped(document, {"getItems": 3}) == 0
    assert len(cache) == 1
    # Untouched services are never dropped; later touches flush again.
    assert bus.invalidate_cache_scoped(document, {"other": 9}) == 0
    assert bus.invalidate_cache_scoped(document, {"getItems": 4}) == 1


def test_sibling_queries_no_longer_evict_each_others_cache():
    # Regression: refresh used to call invalidate_cache() — wiping the
    # *whole* shared CallCache for every standing query on the bus.
    registry = ServiceRegistry(
        [
            TableService(
                "getItems",
                {"k1": [E("item", E("tag", V("hot")),
                          E("title", V("remote-1")))]},
            ),
            TableService("getChain", {"c1": [C("getItems", V("k1"))]}),
        ]
    )
    evaluator = LazyQueryEvaluator(
        ServiceBus(registry),
        config=EngineConfig(strategy=Strategy.LAZY_NFQ, call_cache=True),
    )
    query = parse_pattern('/feed/item[tag="hot"]/title/$T')
    doc1 = build_document(
        E("feed", E("item", E("tag", V("hot")), E("title", V("one"))),
          C("getItems", V("k1")))
    )
    standing1 = ContinuousQuery(evaluator, query, doc1)
    assert standing1.value_rows() == {("one",), ("remote-1",)}
    cache = evaluator.bus.cache
    assert cache is not None and len(cache) == 1 and cache.hits == 0

    doc2 = build_document(
        E("feed", E("item", E("tag", V("hot")), E("title", V("two"))))
    )
    standing2 = ContinuousQuery(evaluator, query, doc2)
    # standing2's document evolves; its refresh drops only the services
    # the mutation's new calls actually name (getChain) — getItems'
    # memoized reply survives and the call getChain's reply brings in
    # is answered from it.
    doc2.insert_subtree(doc2.root, call("getChain", value("c1")))
    assert standing2.value_rows() == {("two",), ("remote-1",)}
    assert cache.hits == 1
    # Data-only mutations drop nothing at all.
    entries_before = len(cache)
    doc2.insert_subtree(doc2.root, element("note", value("n")))
    standing2.refresh()
    assert len(cache) == entries_before


# -- maintained answers ------------------------------------------------------


def make_maintained_world(**overrides):
    document = build_document(
        E("feed", E("item", E("tag", V("hot")), E("title", V("first"))))
    )
    registry = ServiceRegistry(
        [
            TableService(
                "getItems",
                {
                    "k1": [
                        E("item", E("tag", V("hot")), E("title", V("remote-1")))
                    ],
                    "k2": [
                        E("item", E("tag", V("cold")), E("title", V("remote-2")))
                    ],
                },
            ),
            TableService("getMeta", {"m": [E("meta", V("z"))]}),
        ]
    )
    config = EngineConfig(
        strategy=Strategy.LAZY_NFQ, maintain_answers=True, **overrides
    )
    evaluator = LazyQueryEvaluator(ServiceBus(registry), config=config)
    query = parse_pattern('/feed/item[tag="hot"]/title/$T')
    return document, evaluator, query


def test_maintained_refresh_skips_the_engine_on_screened_mutations():
    document, evaluator, query = make_maintained_world()
    standing = ContinuousQuery(evaluator, query, document)
    assert standing.answer_cache is not None
    assert standing.value_rows() == {("first",)}
    assert standing.refresh_count == 1
    document.insert_subtree(document.root, element("footer", value("x")))
    assert standing.is_stale
    assert standing.value_rows() == {("first",)}
    assert standing.engine_skips == 1
    assert standing.refresh_count == 1  # the engine never ran


def test_maintained_rows_track_the_full_reevaluation_oracle():
    document, evaluator, query = make_maintained_world()
    standing = ContinuousQuery(evaluator, query, document)
    mutations = [
        lambda d: d.insert_subtree(
            d.root,
            element("item", element("tag", value("hot")),
                    element("title", value("second"))),
        ),
        lambda d: d.insert_subtree(d.root, call("getItems", value("k1"))),
        lambda d: d.insert_subtree(d.root, call("getItems", value("k2"))),
        lambda d: d.remove_subtree(d.root.children[0]),
    ]
    oracle_doc = document.copy()
    oracle = LazyQueryEvaluator(
        ServiceBus(evaluator.bus.registry),
        config=EngineConfig(strategy=Strategy.LAZY_NFQ),
    )
    for index, mutate in enumerate(mutations):
        mutate(document)
        outcome = standing.refresh()
        mutate(oracle_doc)
        expected = oracle.evaluate(query, oracle_doc)
        assert outcome.value_rows() == expected.value_rows(), f"step {index}"
    cache = standing.answer_cache
    assert cache.full_matches == 1  # seeded once, then spliced
    assert cache.scope_rematches >= 1


def test_maintained_final_match_is_a_row_hit_for_answer_disjoint_calls():
    document, evaluator, query = make_maintained_world()
    standing = ContinuousQuery(evaluator, query, document)
    # getMeta's reply carries no item/title labels: relevance must be
    # re-examined (the engine runs, the call is invoked) but the rows
    # provably cannot change — the final match is served cache-hot.
    document.insert_subtree(document.root, call("getMeta", value("m")))
    outcome = standing.refresh()
    assert outcome.value_rows() == {("first",)}
    assert standing.engine_skips == 0
    assert outcome.metrics.answer_cache_hits == 1
    assert outcome.metrics.maintained_rows == 1
    assert standing.answer_cache.scope_rematches == 0


def test_maintained_metrics_report_respliced_rows():
    document, evaluator, query = make_maintained_world()
    standing = ContinuousQuery(evaluator, query, document)
    document.insert_subtree(document.root, call("getItems", value("k1")))
    outcome = standing.refresh()
    assert outcome.value_rows() == {("first",), ("remote-1",)}
    assert outcome.metrics.maintained_rows == 2
    assert outcome.metrics.rows_respliced >= 1
    assert "ans-rows=" in outcome.metrics.summary()


def test_maintained_answers_stay_off_under_bindings_push():
    document, evaluator, query = make_maintained_world(
        push_mode=PushMode.BINDINGS
    )
    standing = ContinuousQuery(evaluator, query, document)
    assert standing.answer_cache is None
    assert standing.value_rows() == {("first",)}


def test_close_detaches_the_observers():
    document, evaluator, query = make_maintained_world()
    standing = ContinuousQuery(evaluator, query, document)
    observers_before = len(document._observers)
    standing.close()
    assert len(document._observers) == observers_before - 2
    assert standing.answer_cache is None
