"""Engine edge cases: shared buses, root mismatches, repeated use."""

from repro.axml.builder import C, E, V, build_document
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.pattern.parse import parse_pattern
from repro.services.catalog import StaticService
from repro.services.registry import ServiceBus, ServiceRegistry


def simple_bus():
    return ServiceBus(
        ServiceRegistry([StaticService("fetch", [E("x", V("1"))])])
    )


def test_query_root_label_mismatch_invokes_nothing():
    doc = build_document(E("r", C("fetch")))
    bus = simple_bus()
    out = LazyQueryEvaluator(
        bus, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    ).evaluate(parse_pattern("/other/x"), doc)
    assert bus.log.call_count == 0
    assert len(out.rows) == 0
    assert out.metrics.completed


def test_shared_bus_metrics_are_per_evaluation():
    bus = simple_bus()
    engine = LazyQueryEvaluator(
        bus, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    first = engine.evaluate(
        parse_pattern("/r/x/$V"), build_document(E("r", C("fetch")))
    )
    second = engine.evaluate(
        parse_pattern("/r/x/$V"), build_document(E("r", C("fetch")))
    )
    # The bus log accumulates across evaluations...
    assert bus.log.call_count == 2
    # ...but each outcome only accounts its own traffic.
    assert first.metrics.total_bytes == second.metrics.total_bytes
    assert first.metrics.calls_invoked == second.metrics.calls_invoked == 1


def test_engine_instance_is_reusable_across_queries():
    bus = simple_bus()
    engine = LazyQueryEvaluator(
        bus, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    doc = build_document(E("r", C("fetch"), E("y", V("2"))))
    a = engine.evaluate(parse_pattern("/r/x/$V"), doc)
    b = engine.evaluate(parse_pattern("/r/y/$V"), doc)
    assert a.value_rows() == {("1",)}
    assert b.value_rows() == {("2",)}


def test_star_root_query_over_any_document():
    doc = build_document(E("whatever", E("deep", C("fetch"))))
    bus = simple_bus()
    out = LazyQueryEvaluator(
        bus, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    ).evaluate(parse_pattern("//x/$V"), doc)
    assert out.value_rows() == {("1",)}


def test_result_xml_serialisation_shapes():
    doc = build_document(E("r", C("fetch")))
    bus = simple_bus()
    out = LazyQueryEvaluator(
        bus, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    ).evaluate(parse_pattern("/r/x"), doc)
    xml = out.to_xml()
    assert xml.startswith("<results>")
    assert "<x>1</x>" in xml  # element result serialised with subtree


def test_empty_result_xml():
    doc = build_document(E("r"))
    bus = simple_bus()
    out = LazyQueryEvaluator(
        bus, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    ).evaluate(parse_pattern("/r/x"), doc)
    assert out.to_xml() in ("<results />", "<results/>")
