"""Unit tests for the embedding engine (Definition 1 semantics)."""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.pattern.match import MatchCounter, Matcher, MatchOptions, snapshot_result
from repro.pattern.parse import parse_pattern


@pytest.fixture
def doc():
    return build_document(
        E(
            "site",
            E(
                "person",
                E("name", V("alice")),
                E("age", V("30")),
                E("pet", E("name", V("rex"))),
            ),
            E(
                "person",
                E("name", V("bob")),
                E("age", V("30")),
            ),
            E("thing", E("deep", E("person", E("name", V("carol"))))),
        )
    )


def rows(q, d):
    return snapshot_result(parse_pattern(q), d).value_rows()


def test_root_must_match_document_root(doc):
    assert rows("/site/person/name/$X", doc) == {("alice",), ("bob",)}
    assert rows("/other/person", doc) == set()


def test_child_vs_descendant(doc):
    assert rows("/site/person/name/$X", doc) == {("alice",), ("bob",)}
    assert rows("/site//person/name/$X", doc) == {
        ("alice",),
        ("bob",),
        ("carol",),
    }


def test_descendant_through_nested_elements(doc):
    assert rows("/site//name/$X", doc) == {
        ("alice",),
        ("bob",),
        ("carol",),
        ("rex",),
    }


def test_value_constant_filters(doc):
    assert rows('/site/person[age="30"]/name/$X', doc) == {
        ("alice",),
        ("bob",),
    }
    assert rows('/site/person[age="31"]/name/$X', doc) == set()


def test_predicates_are_existential(doc):
    assert rows("/site/person[pet]/name/$X", doc) == {("alice",)}


def test_result_defaults_to_last_step(doc):
    got = snapshot_result(parse_pattern("/site/person/age"), doc)
    # Two embeddings but homomorphic results dedup by target node.
    assert len(got) == 2
    assert got.value_rows() == {("age",)}


def test_variable_join_requires_equal_labels():
    d = build_document(
        E(
            "r",
            E("pair", E("l", V("1")), E("m", V("1"))),
            E("pair", E("l", V("1")), E("m", V("2"))),
        )
    )
    q = parse_pattern("/r/pair[l=$X][m=$X]", result_variables=["X"])
    assert snapshot_result(q, d).value_rows() == {("1",)}


def test_variable_can_bind_element_labels(doc):
    q = parse_pattern("/site/person/$T")
    labels = {row.values()[0] for row in snapshot_result(q, doc)}
    assert labels == {"name", "age", "pet"}


def test_star_matches_any_data_node(doc):
    assert rows("/site/*/name/$X", doc) == {("alice",), ("bob",)}


def test_patterns_do_not_match_function_nodes_as_data():
    d = build_document(E("r", C("f", E("arg", V("x")))))
    assert rows("/r/arg/$X", d) == set()
    assert rows("/r//arg", d) == set()  # no descent into parameters


def test_descend_into_parameters_option():
    d = build_document(E("r", C("f", E("arg", V("x")))))
    q = parse_pattern("/r//arg/$X")
    opts = MatchOptions(descend_into_parameters=True)
    assert Matcher(q, options=opts).evaluate(d).value_rows() == {("x",)}


def test_function_pattern_nodes_match_calls():
    d = build_document(E("r", C("f"), C("g"), E("a", C("f"))))
    q = parse_pattern("/r/()")
    got = snapshot_result(q, d)
    assert sorted(n.label for n in got.distinct_nodes()) == ["f", "g"]
    q2 = parse_pattern("/r//f()")
    assert len(snapshot_result(q2, d).distinct_nodes()) == 2


def test_named_function_pattern_filters():
    d = build_document(E("r", C("f"), C("g")))
    q = parse_pattern("/r/g()")
    assert [n.label for n in snapshot_result(q, d).distinct_nodes()] == ["g"]


def test_homomorphism_children_may_overlap(doc):
    # Both predicate branches can map to the same 'name' node.
    assert rows("/site/person[name][name]/age", doc) == {("age",)}


def test_counter_tracks_work(doc):
    counter = MatchCounter()
    q = parse_pattern("/site//person/name/$X")
    Matcher(q, counter=counter).evaluate(doc)
    assert counter.evaluations == 1
    assert counter.can_checks > 0


def test_evaluate_forest_child_anchor():
    q = parse_pattern('/restaurant[rating="5"]/name/$X')
    forest = [
        E("restaurant", E("name", V("good")), E("rating", V("5"))),
        E("restaurant", E("name", V("bad")), E("rating", V("2"))),
        E("wrapper", E("restaurant", E("name", V("nested")), E("rating", V("5")))),
    ]
    m = Matcher(q)
    from repro.pattern.nodes import EdgeKind

    child_rows = m.evaluate_forest(forest, anchor_edge=EdgeKind.CHILD)
    assert child_rows.value_rows() == {("good",)}
    desc_rows = m.evaluate_forest(forest, anchor_edge=EdgeKind.DESCENDANT)
    assert desc_rows.value_rows() == {("good",), ("nested",)}


def test_has_embedding_short_circuits(doc):
    q = parse_pattern("/site/person")
    assert Matcher(q).has_embedding(doc.root)
    q2 = parse_pattern("/site/alien")
    assert not Matcher(q2).has_embedding(doc.root)


def test_snapshot_of_paper_query_before_invocation(fig1_query, fig1_document):
    # Figure 1: no embedding until getNearbyRestos is invoked.
    assert snapshot_result(fig1_query, fig1_document).value_rows() == set()
