"""Tests for delta-driven answer maintenance (``repro.lazy.answers``)
and the scoped-matching primitives it is built on."""

import pytest

from repro.axml.builder import E, V, build_document
from repro.axml.index import LabelIndex
from repro.axml.node import call, element, value
from repro.lazy.answers import AnswerCache, ServiceTouchTracker
from repro.pattern.match import Matcher, MatchSet
from repro.pattern.multimatch import PatternGroup
from repro.pattern.parse import parse_pattern


def make_library():
    return build_document(
        E(
            "lib",
            E(
                "shelf",
                E("book", E("tag", V("x")), E("title", V("a"))),
                E("book", E("tag", V("y")), E("title", V("b"))),
            ),
            E("shelf", E("book", E("tag", V("x")), E("title", V("c")))),
            E("box", E("book", E("tag", V("x")), E("title", V("d")))),
        )
    )


def row_keys(match_set):
    return {MatchSet.row_key(row) for row in match_set.rows}


# -- scoped matching ---------------------------------------------------------


@pytest.mark.parametrize(
    "query_text",
    [
        '/lib/shelf/book[tag="x"]/title/$T',
        '/lib//book[tag="x"]/title/$T',
        "/lib//title/$T",
    ],
)
def test_scoped_results_compose_to_the_full_result(query_text):
    document = make_library()
    query = parse_pattern(query_text)
    full = Matcher(query).evaluate(document)
    matcher = Matcher(query)
    groups = [
        matcher.evaluate_scoped(document, child).rows
        for child in document.root.children
    ]
    composed = MatchSet.compose(query, groups)
    assert composed.value_rows() == full.value_rows()
    assert row_keys(composed) == row_keys(full)


def test_scoped_results_compose_with_a_label_index_attached():
    # Index-served descendant candidates must honour the scope: the
    # bucket holds nodes of *every* depth-1 subtree, and only those
    # reachable through the scoped child may count.
    document = make_library()
    index = LabelIndex(document)
    query = parse_pattern('/lib//book[tag="x"]/title/$T')
    full = Matcher(query).evaluate(document)
    matcher = Matcher(query, index=index)
    composed = MatchSet.compose(
        query,
        [
            matcher.evaluate_scoped(document, child).rows
            for child in document.root.children
        ],
    )
    assert composed.value_rows() == full.value_rows()
    assert row_keys(composed) == row_keys(full)
    index.detach()


def test_scoped_evaluation_rejects_non_root_children():
    document = make_library()
    matcher = Matcher(parse_pattern("/lib//title/$T"))
    deep = document.root.children[0].children[0]  # a book, depth 2
    with pytest.raises(ValueError):
        matcher.evaluate_scoped(document, deep)


def test_scope_does_not_leak_into_later_evaluations():
    document = make_library()
    query = parse_pattern("/lib//title/$T")
    matcher = Matcher(query)
    matcher.evaluate_scoped(document, document.root.children[0])
    # A later full evaluation sees the whole document again.
    assert (
        matcher.evaluate(document).value_rows()
        == Matcher(query).evaluate(document).value_rows()
    )


def test_group_scoped_pass_matches_per_member_scoped_matchers():
    document = make_library()
    queries = {
        "child": parse_pattern('/lib/shelf/book[tag="x"]/title/$T'),
        "desc": parse_pattern("/lib//title/$T"),
    }
    group = PatternGroup(queries)
    for child in document.root.children:
        passed = group.evaluate(document, scope=child)
        for key, query in queries.items():
            oracle = Matcher(query).evaluate_scoped(document, child)
            assert (
                passed.match_sets[key].value_rows() == oracle.value_rows()
            ), f"{key} diverged in scope {child.label}"
    # Scoped facts must not leak: a later unscoped pass is still full.
    unscoped = group.evaluate(document)
    for key, query in queries.items():
        assert (
            unscoped.match_sets[key].value_rows()
            == Matcher(query).evaluate(document).value_rows()
        )


# -- MatchSet splice primitives ----------------------------------------------


def test_matchset_compose_dedupes_by_row_identity():
    document = make_library()
    query = parse_pattern("/lib//title/$T")
    rows = Matcher(query).evaluate(document).rows
    composed = MatchSet.compose(query, [rows, rows])
    assert len(composed) == len(rows)


def test_matchset_spliced_retracts_and_appends():
    document = make_library()
    query = parse_pattern("/lib//title/$T")
    result = Matcher(query).evaluate(document)
    assert result.spliced(set(), []) is result  # no-op returns self
    victim = MatchSet.row_key(result.rows[0])
    shrunk = result.spliced({victim}, [])
    assert len(shrunk) == len(result) - 1
    assert victim not in row_keys(shrunk)
    grown = shrunk.spliced(set(), [result.rows[0]])
    assert row_keys(grown) == row_keys(result)


# -- SpliceDelta geometry ----------------------------------------------------


class _DeltaLog:
    def __init__(self, document):
        self.deltas = []
        document.add_observer(self)

    def call_removed(self, document, node):
        pass

    def calls_added(self, document, nodes):
        pass

    def splice(self, document, delta):
        self.deltas.append(delta)


def test_scope_under_finds_the_depth_one_attachment():
    document = make_library()
    log = _DeltaLog(document)
    shelf = document.root.children[0]
    book = shelf.children[0]
    document.insert_subtree(book, element("note", value("fine")))
    assert log.deltas[-1].scope_under(document.root) is shelf
    # Directly under the root there is no depth-1 container.
    document.insert_subtree(document.root, element("shelf"))
    assert log.deltas[-1].scope_under(document.root) is None
    # Removing a depth-1 subtree: parent *is* the root.
    document.remove_subtree(document.root.children[-1])
    assert log.deltas[-1].scope_under(document.root) is None


def test_touched_services_names_calls_in_both_directions():
    document = make_library()
    log = _DeltaLog(document)
    document.insert_subtree(
        document.root.children[0], call("getBooks", value("k"))
    )
    assert log.deltas[-1].touched_services() == frozenset({"getBooks"})
    call_node = document.root.children[0].children[-1]
    document.replace_call(call_node, [element("book")])
    assert "getBooks" in log.deltas[-1].touched_services()


# -- ServiceTouchTracker -----------------------------------------------------


def test_tracker_records_external_call_insertions_only():
    document = make_library()
    tracker = ServiceTouchTracker(document)
    document.insert_subtree(document.root, element("shelf"))
    assert tracker.touched == {}  # data only
    document.insert_subtree(document.root, call("getBooks", value("k")))
    assert tracker.touched == {"getBooks": document.version}
    # Invocation-produced splices are engine bookkeeping, not a signal
    # that the world behind a service changed: no flush for either the
    # invoked call leaving or the produced call arriving.
    call_node = document.root.children[-1]
    tracker.drain()
    document.replace_call(call_node, [call("getMore", value("k2"))])
    assert tracker.touched == {}
    # A produced call later *removed* is still not an external re-ask.
    produced = document.root.children[-1]
    document.remove_subtree(produced)
    assert tracker.touched == {}
    tracker.detach()


def test_tracker_drain_resets():
    document = make_library()
    tracker = ServiceTouchTracker(document)
    document.insert_subtree(document.root, call("getBooks", value("k")))
    first = tracker.drain()
    assert first == {"getBooks": document.version}
    assert tracker.drain() == {}
    tracker.detach()


# -- AnswerCache -------------------------------------------------------------

QUERY = '/lib/shelf/book[tag="x"]/title/$T'


def oracle_rows(document, query):
    return Matcher(query).evaluate(document).value_rows()


def test_cache_seeds_then_serves_hits():
    document = make_library()
    query = parse_pattern(QUERY)
    cache = AnswerCache(query, document)
    assert not cache.seeded
    rows = cache.rows()
    assert rows.value_rows() == {("a",), ("c",)}
    assert cache.full_matches == 1
    cache.rows()
    assert cache.full_matches == 1
    assert cache.hits == 1
    assert cache.is_current
    cache.detach()


def test_guard_screen_dismisses_disjoint_splices():
    document = make_library()
    query = parse_pattern(QUERY)
    cache = AnswerCache(query, document)
    cache.rows()
    document.insert_subtree(
        document.root.children[2], element("misc", value("z"))
    )
    assert cache.screens == 1
    assert cache.is_current  # provably unchanged: no re-match needed
    cache.detach()


def test_dirty_scope_rematch_tracks_the_oracle():
    document = make_library()
    query = parse_pattern(QUERY)
    cache = AnswerCache(query, document)
    cache.rows()
    shelf = document.root.children[1]
    document.insert_subtree(
        shelf, element("book", element("tag", value("x")),
                       element("title", value("e")))
    )
    assert not cache.is_current
    rows = cache.rows()
    assert rows.value_rows() == oracle_rows(document, query) == {
        ("a",), ("c",), ("e",)
    }
    assert cache.full_matches == 1  # only the seed was a full match
    assert cache.scope_rematches == 1
    assert cache.rows_added == 1
    cache.detach()


def test_root_level_splices_dirty_the_new_and_gone_scopes():
    document = make_library()
    query = parse_pattern(QUERY)
    cache = AnswerCache(query, document)
    cache.rows()
    document.insert_subtree(
        document.root,
        element("shelf", element("book", element("tag", value("x")),
                                 element("title", value("f")))),
    )
    assert cache.rows().value_rows() == oracle_rows(document, query)
    document.remove_subtree(document.root.children[0])  # drops a and b
    assert cache.rows().value_rows() == oracle_rows(document, query) == {
        ("c",), ("f",)
    }
    assert cache.rows_retracted >= 1
    assert cache.full_matches == 1
    cache.detach()


def test_answer_screened_relevance_touch_is_still_a_row_hit():
    # A new call node defeats the guard (the engine must run) but not
    # the answer footprint (no row can have changed): the final match
    # is served from the cache untouched.
    document = make_library()
    query = parse_pattern(QUERY)
    cache = AnswerCache(query, document)
    cache.rows()
    document.insert_subtree(document.root, call("getBooks", value("k")))
    assert not cache.is_current  # the engine may now have work
    before = cache.hits
    rows = cache.rows()
    assert cache.hits == before + 1
    assert cache.scope_rematches == 0
    assert rows.value_rows() == {("a",), ("c",)}
    cache.detach()


def test_multi_child_roots_fall_back_to_full_rematches():
    document = make_library()
    query = parse_pattern("/lib[box]/shelf/book/title/$T")
    assert len(query.root.children) > 1
    cache = AnswerCache(query, document)
    cache.rows()
    shelf = document.root.children[0]
    document.insert_subtree(
        shelf, element("book", element("title", value("g")))
    )
    assert cache.rows().value_rows() == oracle_rows(document, query)
    assert cache.full_matches == 2  # honest full re-match, still screened
    cache.detach()


def test_any_call_relevant_widens_the_guard():
    document = make_library()
    query = parse_pattern(QUERY)
    strict = AnswerCache(query, document, any_call_relevant=True)
    strict.rows()
    # The tag="y" book query would never look at this call's position,
    # but under NAIVE every call is invoked: the guard must not screen.
    document.insert_subtree(
        document.root.children[2], call("getAnything")
    )
    assert not strict.is_current
    assert strict.screens == 0
    strict.detach()


def test_removal_and_reinsertion_round_trips():
    document = make_library()
    query = parse_pattern(QUERY)
    cache = AnswerCache(query, document)
    baseline = cache.rows().value_rows()
    shelf = document.root.children[0]
    book = shelf.children[0]  # the tag=x/title=a book
    removed = document.remove_subtree(book)
    assert cache.rows().value_rows() == oracle_rows(document, query)
    document.insert_subtree(shelf, removed, position=0)
    assert cache.rows().value_rows() == oracle_rows(document, query)
    assert cache.rows().value_rows() == baseline
    cache.detach()
