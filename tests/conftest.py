"""Shared fixtures: the paper's running example and helpers."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.axml.builder import C, E, V, build_document

# Named Hypothesis profiles: "dev" keeps the suite fast locally; CI's
# differential job selects "ci" (200 derandomized examples per property)
# with ``--hypothesis-profile=ci``, which is applied by the hypothesis
# pytest plugin after this module is imported and so overrides "dev".
settings.register_profile(
    "ci",
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("dev")
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.services.registry import ServiceBus
from repro.workloads.hotels import (
    figure_1_document,
    figure_1_registry,
    figure_1_schema,
    paper_query,
)


@pytest.fixture
def fig1_document():
    return figure_1_document()


@pytest.fixture
def fig1_registry():
    return figure_1_registry()


@pytest.fixture
def fig1_schema():
    return figure_1_schema()


@pytest.fixture
def fig1_query():
    return paper_query()


@pytest.fixture
def fig1_bus(fig1_registry):
    return ServiceBus(fig1_registry)


@pytest.fixture
def small_document():
    """A tiny mixed document used by many structural tests."""
    return build_document(
        E(
            "library",
            E(
                "book",
                E("title", V("Foundations of Databases")),
                E("year", V("1995")),
                C("getPrice", V("fdb")),
            ),
            E(
                "book",
                E("title", V("Data on the Web")),
                C("getReviews", V("dotw")),
            ),
            C("getBooks", V("db")),
        ),
        name="library",
    )


def run_engine(query, document, bus, schema=None, **config_kwargs):
    """Evaluate with a given configuration; returns the outcome."""
    config = EngineConfig(**config_kwargs)
    engine = LazyQueryEvaluator(bus, schema=schema, config=config)
    return engine.evaluate(query, document)


def all_lazy_strategies():
    return [Strategy.LAZY_LPQ, Strategy.LAZY_NFQ, Strategy.LAZY_NFQ_TYPED]
