"""Unit tests for the AXML node model (repro.axml.node)."""

import pytest

from repro.axml.node import (
    Node,
    NodeKind,
    call,
    element,
    fresh_name,
    value,
    walk_matching,
)


def test_element_constructor_sets_kind_and_label():
    node = element("hotel")
    assert node.kind is NodeKind.ELEMENT
    assert node.label == "hotel"
    assert node.is_element and node.is_data
    assert not node.is_function and not node.is_value


def test_value_constructor_coerces_to_string():
    node = value(42)
    assert node.is_value
    assert node.label == "42"


def test_call_constructor_with_parameters():
    node = call("getRating", value("address"))
    assert node.is_function
    assert not node.is_data
    assert len(node.children) == 1
    assert node.children[0].parent is node


def test_append_rejects_already_attached_child():
    parent = element("a")
    child = element("b")
    parent.append(child)
    other = element("c")
    with pytest.raises(ValueError):
        other.append(child)


def test_detach_removes_from_parent():
    parent = element("a", element("b"))
    child = parent.children[0]
    child.detach()
    assert child.parent is None
    assert parent.children == []


def test_iter_subtree_is_preorder_document_order():
    tree = element("a", element("b", value("1")), element("c"))
    labels = [n.label for n in tree.iter_subtree()]
    assert labels == ["a", "b", "1", "c"]


def test_iter_descendants_excludes_self():
    tree = element("a", element("b"))
    labels = [n.label for n in tree.iter_descendants()]
    assert labels == ["b"]


def test_iter_ancestors_walks_to_root():
    tree = element("a", element("b", element("c")))
    leaf = tree.children[0].children[0]
    assert [n.label for n in leaf.iter_ancestors()] == ["b", "a"]


def test_data_and_function_children_partition():
    tree = element("a", value("v"), call("f"), element("b"))
    assert [n.label for n in tree.data_children()] == ["v", "b"]
    assert [n.label for n in tree.function_children()] == ["f"]


def test_subtree_size_and_depth():
    tree = element("a", element("b", value("1")), element("c"))
    assert tree.subtree_size() == 4
    assert tree.children[0].children[0].depth() == 2
    assert tree.depth() == 0


def test_clone_is_deep_and_detached():
    tree = element("a", element("b", value("1")))
    copy = tree.clone()
    assert copy is not tree
    assert copy.structurally_equal(tree)
    assert copy.parent is None
    copy.children[0].label = "z"
    assert tree.children[0].label == "b"


def test_structural_equality_notices_kind_differences():
    assert not element("a").structurally_equal(value("a"))
    assert not element("a").structurally_equal(call("a"))
    assert element("a", value("1")).structurally_equal(element("a", value("1")))
    assert not element("a", value("1")).structurally_equal(element("a", value("2")))


def test_structural_equality_is_order_sensitive():
    left = element("a", element("b"), element("c"))
    right = element("a", element("c"), element("b"))
    assert not left.structurally_equal(right)


def test_walk_matching_filters():
    tree = element("a", call("f"), element("b", call("g")))
    names = sorted(n.label for n in walk_matching(tree, lambda n: n.is_function))
    assert names == ["f", "g"]


def test_pretty_renders_every_node_kind():
    tree = element("a", value("x"), call("f"))
    text = tree.pretty()
    assert "<a>" in text
    assert '"x"' in text
    assert "@f()" in text


def test_fresh_name_is_unique():
    assert fresh_name("svc") != fresh_name("svc")
