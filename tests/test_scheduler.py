"""The concurrent batch scheduler: determinism, degeneracy, faults.

Three families of guarantees:

* **List scheduling** (``assign_workers``) is a pure function with the
  classic bounds: makespan between ``max`` and ``sum`` of the
  durations, offsets non-decreasing in submission order.
* **Degeneracy**: ``invoke_batch`` at ``max_concurrency=1`` is *exactly*
  the serial loop — same clock, same log, same outcomes — and the whole
  engine at any width is deterministic run-to-run (same batches, same
  clock, same span tree).
* **Faults under concurrency**: FREEZE/RETRY behave identically at any
  width; a service tripping its breaker inside a batch cannot reject
  the sibling calls dispatched alongside it; breaker backoff charges
  the clock only for admitted attempts.
"""

from __future__ import annotations

import pytest

from repro.axml.builder import E, V
from repro.lazy.config import EngineConfig, FaultPolicy, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.obs.trace import BATCH, INVOCATION, InMemorySink, verify_nesting
from repro.services.catalog import (
    FailingService,
    FlakyService,
    ServiceFault,
    StaticService,
)
from repro.services.registry import ServiceBus, ServiceCall, ServiceRegistry
from repro.services.resilience import (
    CircuitBreakerPolicy,
    InvocationPolicy,
    RetryPolicy,
)
from repro.services.scheduler import SchedulerPolicy, assign_workers
from repro.workloads.chains import build_chain_workload

# ------------------------------------------------------------- assign_workers


def test_assign_workers_empty_and_single():
    assert assign_workers([], 4) == ([], 0.0)
    assert assign_workers([2.5], 4) == ([0.0], 2.5)


def test_assign_workers_serial_is_prefix_sums():
    offsets, makespan = assign_workers([1.0, 2.0, 3.0], 1)
    assert offsets == [0.0, 1.0, 3.0]
    assert makespan == 6.0


def test_assign_workers_two_workers():
    # Worker A takes the 3s call; worker B chews through the 1s ones.
    offsets, makespan = assign_workers([3.0, 1.0, 1.0, 1.0], 2)
    assert offsets == [0.0, 0.0, 1.0, 2.0]
    assert makespan == 3.0


def test_assign_workers_unbounded_width_runs_all_at_zero():
    durations = [0.5, 1.5, 0.25, 1.0]
    offsets, makespan = assign_workers(durations, 16)
    assert offsets == [0.0] * len(durations)
    assert makespan == 1.5


@pytest.mark.parametrize("width", [1, 2, 3, 7])
def test_assign_workers_bounds_and_monotone_offsets(width):
    durations = [0.3, 1.1, 0.7, 0.7, 2.0, 0.1, 0.9, 0.4]
    offsets, makespan = assign_workers(durations, width)
    assert max(durations) - 1e-12 <= makespan <= sum(durations) + 1e-12
    assert offsets == sorted(offsets)  # submission order, no reordering
    assert makespan == max(o + d for o, d in zip(offsets, durations))
    # Pure function: identical inputs, identical schedule.
    assert assign_workers(durations, width) == (offsets, makespan)


# ------------------------------------------------- serial degeneracy (C == 1)


def chain_calls(workload):
    document = workload.make_document()
    return [
        ServiceCall(service=node.label, parameters=node.children)
        for node in document.function_nodes()
    ]


def log_view(bus):
    return [
        (r.service_name, r.simulated_time_s, r.fault, r.fault_kind, r.attempt)
        for r in bus.log.records
    ]


def test_invoke_batch_width_one_is_exactly_the_serial_loop():
    workload = build_chain_workload(depth=2, width=6)
    calls = chain_calls(workload)

    serial_bus = ServiceBus(workload.registry)
    serial = [serial_bus.invoke(call) for call in calls]

    batch_bus = ServiceBus(workload.registry)
    batch = batch_bus.invoke_batch(
        calls, scheduler=SchedulerPolicy(max_concurrency=1)
    )

    assert batch.width == len(calls)
    assert batch_bus.clock_s == serial_bus.clock_s
    assert log_view(batch_bus) == log_view(serial_bus)
    for got, want in zip(batch.outcomes, serial):
        assert got.succeeded == want.succeeded
        assert got.reply.forest and want.reply.forest
        assert [n.label for n in got.reply.forest] == [
            n.label for n in want.reply.forest
        ]


def test_invoke_batch_concurrent_clock_is_the_makespan():
    workload = build_chain_workload(depth=2, width=8, latency_s=0.05)
    calls = chain_calls(workload)
    bus = ServiceBus(workload.registry)
    result = bus.invoke_batch(
        calls, scheduler=SchedulerPolicy(max_concurrency=8)
    )
    assert result.width == 8
    assert 0.0 < result.parallel_s < result.serial_s
    assert bus.clock_s == pytest.approx(result.parallel_s)
    # Every call still individually accounted in the log.
    assert len(bus.log.records) == len(calls)


# ---------------------------------------------------------------- determinism


def span_shape(span):
    """A span tree reduced to comparable structure (names + key tags)."""
    keep = ("service", "width", "concurrency", "layer")
    return (
        span.name,
        tuple((k, str(span.tags[k])) for k in keep if k in span.tags),
        tuple(e.name for e in span.events),
        tuple(span_shape(child) for child in span.children),
    )


def run_traced(max_concurrency: int):
    workload = build_chain_workload(depth=4, width=6)
    sink = InMemorySink()
    config = EngineConfig(
        strategy=Strategy.LAZY_NFQ,
        max_concurrency=max_concurrency,
        trace=sink,
    )
    engine = LazyQueryEvaluator(
        ServiceBus(workload.registry), schema=workload.schema, config=config
    )
    outcome = engine.evaluate(workload.query, workload.make_document())
    return outcome, sink


@pytest.mark.parametrize("width", [2, 4, 8])
def test_engine_runs_are_deterministic(width):
    first, first_sink = run_traced(width)
    second, second_sink = run_traced(width)
    assert first.value_rows() == second.value_rows()
    assert first.metrics.parallel_time_s == second.metrics.parallel_time_s
    assert first.metrics.batch_count == second.metrics.batch_count
    assert first.metrics.max_batch_width == second.metrics.max_batch_width
    assert [span_shape(r) for r in first_sink.roots] == [
        span_shape(r) for r in second_sink.roots
    ]


def test_concurrent_trace_nests_and_batches_carry_invocations():
    outcome, sink = run_traced(4)
    (root,) = sink.roots
    assert verify_nesting(root) == []
    batches = root.find_all(BATCH)
    assert len(batches) == outcome.metrics.batch_count > 0
    for batch in batches:
        assert int(batch.tags["width"]) >= 2
        assert len(batch.find_all(INVOCATION)) == int(batch.tags["width"])


# ------------------------------------------------------- fault x concurrency


def flaky_chain_registry(rate: float, fault_kind: str = "fault"):
    workload = build_chain_workload(depth=3, width=6)
    base = workload.registry
    registry = ServiceRegistry(
        FlakyService(base.resolve(name), fault_rate=rate, seed=7, fault_kind=fault_kind)
        for name in base.names()
    )
    return workload, registry


@pytest.mark.parametrize("policy", [FaultPolicy.FREEZE, FaultPolicy.RETRY])
@pytest.mark.parametrize("width", [2, 4, 8])
def test_fault_policies_match_serial_at_every_width(policy, width):
    def run(max_concurrency):
        workload, registry = flaky_chain_registry(rate=0.4)
        config = EngineConfig(
            strategy=Strategy.LAZY_NFQ,
            fault_policy=policy,
            retry=RetryPolicy(max_attempts=3, base_backoff_s=0.01),
            max_concurrency=max_concurrency,
        )
        engine = LazyQueryEvaluator(
            ServiceBus(registry), schema=workload.schema, config=config
        )
        return engine.evaluate(workload.query, workload.make_document())

    reference = run(1)
    outcome = run(width)
    assert outcome.value_rows() == reference.value_rows()
    assert outcome.metrics.faults == reference.metrics.faults
    assert outcome.metrics.calls_invoked == reference.metrics.calls_invoked


def test_sibling_trip_does_not_reject_in_flight_batch_members():
    """One service melting down inside a batch trips *its* breaker, but
    the siblings dispatched in the same batch already passed the gate
    and must complete normally."""
    bad = FlakyService(
        StaticService("bad", [E("x", V("1"))]), fault_rate=1.0, seed=3
    )
    good = StaticService("good", [E("y", V("2"))])
    bus = ServiceBus(ServiceRegistry([bad, good]))
    policy = InvocationPolicy(
        retry=RetryPolicy(max_attempts=1),
        breaker=CircuitBreakerPolicy(failure_threshold=2, reset_after_s=None),
    )
    calls = [ServiceCall(service="bad")] * 3 + [ServiceCall(service="good")] * 3
    result = bus.invoke_batch(
        calls, policy=policy, scheduler=SchedulerPolicy(max_concurrency=6)
    )
    bad_outcomes = result.outcomes[:3]
    good_outcomes = result.outcomes[3:]
    # All bad calls were admitted on the dispatch-time (closed) snapshot:
    # they fault for real, none is short-circuited mid-batch.
    assert all(isinstance(o.fault, ServiceFault) for o in bad_outcomes)
    assert not any(o.short_circuited for o in bad_outcomes)
    # Siblings on the healthy service are untouched by the meltdown.
    assert all(o.succeeded for o in good_outcomes)
    # The merged marks still tripped the breaker for *after* the batch...
    after = bus.invoke(ServiceCall(service="bad"), policy=policy)
    assert after.short_circuited
    # ...while the healthy service stays open for business.
    assert bus.invoke(ServiceCall(service="good"), policy=policy).succeeded


# --------------------------------------------- breaker + backoff clock rules


def breaker_bus():
    """A bus whose only service fails once, then heals."""
    svc = FailingService("f", StaticService("f", [E("ok")]), failures=1)
    return ServiceBus(ServiceRegistry([svc]))


def test_rejected_attempt_charges_no_clock_and_no_backoff():
    """Regression: a short-circuited invocation must not advance the
    simulated clock — the waiting was never going to buy admission."""
    bus = breaker_bus()
    trip = InvocationPolicy(
        retry=RetryPolicy(max_attempts=1),
        breaker=CircuitBreakerPolicy(failure_threshold=1, reset_after_s=None),
    )
    first = bus.invoke(ServiceCall(service="f"), policy=trip)
    assert first.fault is not None and not first.short_circuited
    assert bus.breakers["f"].opened_at_s is not None

    before = bus.clock_s
    outcome = bus.invoke(
        ServiceCall(service="f"),
        policy=InvocationPolicy(
            retry=RetryPolicy(max_attempts=5, base_backoff_s=100.0),
            breaker=CircuitBreakerPolicy(
                failure_threshold=1, reset_after_s=None
            ),
        ),
    )
    assert outcome.short_circuited
    assert outcome.backoff_s == 0.0
    assert bus.clock_s == before
    assert bus.log.call_count == 1  # only the original tripping attempt


def test_backoff_too_short_for_cooldown_is_not_charged():
    """Regression: when a retry's backoff would end while the breaker
    is still cooling down, the attempt is rejected *and the wait is not
    charged* — the old code moved the clock first, then rejected."""
    bus = breaker_bus()
    policy = InvocationPolicy(
        retry=RetryPolicy(
            max_attempts=2, base_backoff_s=2.0, jitter_fraction=0.0
        ),
        breaker=CircuitBreakerPolicy(failure_threshold=1, reset_after_s=5.0),
    )
    outcome = bus.invoke(ServiceCall(service="f"), policy=policy)
    # Attempt 1 faults and trips the breaker; attempt 2's 2s backoff
    # falls short of the 5s cooldown, so it short-circuits uncharged.
    assert outcome.short_circuited
    assert outcome.backoff_s == 0.0
    attempt_cost = bus.log.records[0].simulated_time_s
    assert bus.clock_s == pytest.approx(attempt_cost)


def test_cooldown_elapsing_during_backoff_admits_the_probe():
    """The flip side: when waiting out the backoff *does* carry the
    clock past the breaker cooldown, the retry is the half-open probe —
    it is admitted and charged, not short-circuited."""
    bus = breaker_bus()
    policy = InvocationPolicy(
        retry=RetryPolicy(
            max_attempts=2,
            base_backoff_s=10.0,
            max_backoff_s=10.0,
            jitter_fraction=0.0,
        ),
        breaker=CircuitBreakerPolicy(failure_threshold=1, reset_after_s=5.0),
    )
    outcome = bus.invoke(ServiceCall(service="f"), policy=policy)
    # Attempt 1 faults and trips the breaker; attempt 2's 10s backoff
    # crosses the 5s cooldown, so the probe goes through and the
    # now-healed service answers.
    assert outcome.succeeded and not outcome.short_circuited
    assert outcome.backoff_s == 10.0
    assert bus.breakers["f"].opened_at_s is None  # probe success closed it
