"""Unit tests for XML (de)serialisation of AXML trees."""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.axml.node import value
from repro.axml.xmlio import (
    forest_size_bytes,
    parse,
    parse_document,
    serialize,
    serialize_document,
    serialize_forest,
    serialized_size,
)


def sample_tree():
    return E(
        "hotel",
        E("name", V("Best Western")),
        E("nearby", C("getNearbyRestos", V("2nd Av."))),
    )


def test_roundtrip_preserves_structure():
    tree = sample_tree()
    again = parse(serialize(tree))
    assert again.structurally_equal(tree)


def test_function_nodes_use_axml_call_convention():
    xml = serialize(sample_tree())
    assert 'service="getNearbyRestos"' in xml
    assert "call" in xml


def test_parse_rejects_call_without_service():
    with pytest.raises(ValueError):
        parse('<a xmlns:axml="http://activexml.net/2004/axml"><axml:call/></a>')


def test_mixed_content_roundtrip():
    tree = E("p", V("before"), E("b", V("bold")), V("after"))
    again = parse(serialize(tree))
    assert [n.label for n in again.children] == ["before", "b", "after"]


def test_document_roundtrip(small_document):
    text = serialize_document(small_document)
    doc = parse_document(text, name="again")
    assert doc.root.structurally_equal(small_document.root)
    assert doc.name == "again"


def test_whitespace_only_text_is_dropped():
    tree = parse("<a>\n  <b>x</b>\n</a>")
    assert [n.label for n in tree.children] == ["b"]


def test_serialize_bare_value_is_an_error():
    with pytest.raises(ValueError):
        serialize(value("loose"))


def test_serialized_size_counts_utf8_bytes():
    assert serialized_size(value("abc")) == 3
    assert serialized_size(value("é")) == 2
    assert serialized_size(E("a")) >= len("<a />".encode())


def test_forest_sizes_are_additive():
    forest = [E("a", V("1")), E("b")]
    assert forest_size_bytes(forest) == sum(serialized_size(t) for t in forest)
    assert forest_size_bytes([]) == 0


def test_serialize_forest_wraps_trees():
    text = serialize_forest([E("a"), C("f")])
    assert "forest" in text
    assert "<a />" in text or "<a/>" in text


def test_nested_calls_roundtrip():
    tree = E("r", C("outer", E("arg", C("inner", V("x")))))
    again = parse(serialize(tree))
    assert again.structurally_equal(tree)


def test_activation_modes_roundtrip():
    from repro.axml.node import Activation

    tree = E(
        "r",
        C("a"),
        C("b", activation=Activation.IMMEDIATE),
        C("c", activation=Activation.FROZEN),
    )
    again = parse(serialize(tree))
    assert [child.activation for child in again.children] == [
        Activation.LAZY,
        Activation.IMMEDIATE,
        Activation.FROZEN,
    ]
