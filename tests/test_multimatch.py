"""Unit tests for the shared multi-query matching pass (PatternGroup).

The differential anchor is always the same: whatever the group
returns must be byte-identical, member by member, to a fresh
per-query :class:`Matcher` on the same document state.  On top of
that, these tests pin the structural claims — canonical classes
actually collapse the family, projection is sound and switches off
under wildcards, sources come from index/guide when available — and
the composition with the PR-4 relevance cache.
"""

from __future__ import annotations

import pytest

from repro.axml import LabelIndex
from repro.axml.builder import C, E, V, build_document
from repro.lazy.fguide import FGuide
from repro.lazy.incremental import RelevanceCache
from repro.lazy.relevance import NFQBuilder, build_nfqs
from repro.pattern.match import MatchCounter, Matcher
from repro.pattern.multimatch import LabelSummary, PatternGroup
from repro.pattern.parse import parse_pattern


def make_doc():
    return build_document(
        E(
            "hotels",
            E(
                "hotel",
                E("name", V("Best Western")),
                E("rating", V("5")),
                E("nearby", E("restaurant", E("name", V("Chez Doc")))),
            ),
            E(
                "hotel",
                E("name", V("Grand Budapest")),
                E("rating", V("3")),
                C("more_restaurants", V("k1")),
            ),
            E("park", E("tree", V("oak"))),
        )
    )


QUERY_TEXT = '/hotels/hotel[name="Best Western"][rating="5"]//restaurant/name'


def rows_of(match_set):
    return sorted(
        (tuple(n.node_id for n in row.nodes), row.bindings)
        for row in match_set.rows
    )


def family():
    nfqs = build_nfqs(parse_pattern(QUERY_TEXT))
    assert nfqs
    return nfqs


# -- oracle parity -----------------------------------------------------------


@pytest.mark.parametrize("with_index", [False, True])
def test_group_matches_per_query_oracle(with_index):
    document = make_doc()
    nfqs = family()
    index = LabelIndex(document) if with_index else None
    group = PatternGroup(
        {rq.target_uid: rq.pattern for rq in nfqs}, index=index
    )
    result = group.evaluate(document)
    for rq in nfqs:
        oracle = Matcher(rq.pattern, index=index).evaluate(document)
        assert rows_of(result.match_sets[rq.target_uid]) == rows_of(oracle)
    if index is not None:
        index.detach()


def test_group_parity_with_variables_disables_projection():
    """Variable tests put a data wildcard in the summary: projection
    must switch off, answers must still match the oracle."""
    document = make_doc()
    nfqs = build_nfqs(parse_pattern("/hotels/hotel[name=$X]//restaurant"))
    group = PatternGroup({rq.target_uid: rq.pattern for rq in nfqs})
    result = group.evaluate(document)
    assert not result.projected
    assert result.skipped_subtrees == 0
    for rq in nfqs:
        assert rows_of(result.match_sets[rq.target_uid]) == rows_of(
            Matcher(rq.pattern).evaluate(document)
        )


def test_group_evaluates_selected_keys_only():
    document = make_doc()
    nfqs = family()
    group = PatternGroup({rq.target_uid: rq.pattern for rq in nfqs})
    chosen = [nfqs[0].target_uid, nfqs[-1].target_uid]
    result = group.evaluate(document, keys=chosen)
    assert sorted(result.match_sets) == sorted(set(chosen))


@pytest.mark.parametrize("with_index", [False, True])
def test_cross_family_members_share_no_edge_confusion(with_index):
    """Mixing members from *different* queries must stay oracle-exact.

    Regression: the condition memo was keyed by (class id, document
    node) without the connecting edge.  A member testing a condition
    class through a CHILD edge would cache a negative that a sibling
    member testing the *same class* through a DESCENDANT edge then
    read back, in either evaluation order.  One query's NFQ family
    reuses each step with one consistent edge, so only cross-family
    groups — the serving layer's cross-tenant pass — ever collide.
    """
    document = build_document(
        E("root", E("branch", E("leaf", C("svc", V("k1")))))
    )
    # Same condition class `()` (any function), different edges: a
    # direct child test (no function child of root -> False) and a
    # descendant test (the call exists below -> True).
    members = {
        "child": parse_pattern("/root[()!]"),
        "descendant": parse_pattern("/root[//()!]"),
    }
    index = LabelIndex(document) if with_index else None
    for order in (["child", "descendant"], ["descendant", "child"]):
        group = PatternGroup(members, index=index)
        result = group.evaluate(document, keys=order)
        for key in order:
            oracle = Matcher(members[key], index=index).evaluate(document)
            assert rows_of(result.match_sets[key]) == rows_of(oracle), (
                order,
                key,
            )
    if index is not None:
        index.detach()


def test_group_tracks_document_mutation():
    """Memo tables are per-pass: after a mutation the next pass sees
    the new state, matching fresh matchers (the engine's reuse path)."""
    document = make_doc()
    nfqs = family()
    group = PatternGroup({rq.target_uid: rq.pattern for rq in nfqs})
    group.evaluate(document)
    target = next(
        n for n in document.iter_nodes() if n.label == "nearby"
    )
    document.insert_subtree(
        target, E("restaurant", E("name", V("New Place")))
    )
    result = group.evaluate(document)
    for rq in nfqs:
        assert rows_of(result.match_sets[rq.target_uid]) == rows_of(
            Matcher(rq.pattern).evaluate(document)
        )


# -- canonicalization --------------------------------------------------------


def test_identical_members_share_all_classes():
    pattern = parse_pattern(QUERY_TEXT)
    twin = parse_pattern(QUERY_TEXT)
    group = PatternGroup({"a": pattern, "b": twin})
    solo = PatternGroup({"a": parse_pattern(QUERY_TEXT)})
    assert group.canonical_classes == solo.canonical_classes


def test_family_classes_collapse():
    nfqs = NFQBuilder(parse_pattern(QUERY_TEXT)).build_all(dedupe=False)
    group = PatternGroup({rq.target_uid: rq.pattern for rq in nfqs})
    total_nodes = sum(len(list(rq.pattern.nodes())) for rq in nfqs)
    assert group.canonical_classes < total_nodes / 2


# -- label summaries and projection ------------------------------------------


def test_label_summary_collects_tests():
    summary = LabelSummary.from_pattern(parse_pattern(QUERY_TEXT))
    assert "hotel" in summary.data_labels
    assert "restaurant" in summary.data_labels
    assert "Best Western" in summary.data_labels  # value tests count
    assert not summary.any_data
    # The pattern root's own label is excluded: it only maps to the
    # document root.
    assert "hotels" not in summary.data_labels


def test_label_summary_wildcards():
    assert LabelSummary.from_pattern(parse_pattern("/r/*[a]")).any_data
    assert LabelSummary.from_pattern(parse_pattern("/r/x[$V]")).any_data
    nfq = build_nfqs(parse_pattern("/r//a"))[0]
    summary = LabelSummary.from_pattern(nfq.pattern)
    assert summary.any_function or summary.function_names


def test_projection_prunes_only_unreachable_subtrees():
    """The ``park`` subtree carries no family label: with projection in
    force it must be skipped, and answers must be unaffected (soundness
    is implied by the oracle parity above; here we pin the pruning)."""
    document = make_doc()
    nfqs = family()
    group = PatternGroup({rq.target_uid: rq.pattern for rq in nfqs})
    result = group.evaluate(document)
    assert result.projected
    assert result.projection_size > 0
    park = next(n for n in document.iter_nodes() if n.label == "park")
    assert park.node_id not in group._projected if group._projected else True
    # The pass never entered the park subtree: fewer nodes visited than
    # a full walk would touch, and at least one subtree pruned whenever
    # a descendant walk passed by it.
    assert result.nodes_visited < document.stats().total_nodes * len(nfqs)


def test_projection_sources_from_guide():
    """With no index, a live F-guide on the same document serves the
    function extents without a document walk."""
    document = make_doc()
    guide = FGuide(document)
    nfqs = family()
    group = PatternGroup(
        {rq.target_uid: rq.pattern for rq in nfqs}, call_source=guide
    )
    result = group.evaluate(document)
    for rq in nfqs:
        assert rows_of(result.match_sets[rq.target_uid]) == rows_of(
            Matcher(rq.pattern).evaluate(document)
        )
    guide.detach()


def test_guide_function_extents_filter():
    document = make_doc()
    guide = FGuide(document)
    all_calls = {n.node_id for n in guide.function_extents()}
    assert all_calls == {n.node_id for n in document.function_nodes()}
    named = guide.function_extents(["more_restaurants"])
    assert {n.node_id for n in named} == all_calls
    assert guide.function_extents(["absent_service"]) == []
    guide.detach()


# -- composition with the relevance cache ------------------------------------


def test_lookup_store_roundtrip_and_group_screen():
    document = make_doc()
    nfqs = family()
    rcache = RelevanceCache(document)
    group = PatternGroup({rq.target_uid: rq.pattern for rq in nfqs})

    assert all(rcache.lookup(rq) is None for rq in nfqs)
    result = group.evaluate(document)
    for rq in nfqs:
        rcache.store(
            rq, result.match_sets[rq.target_uid].distinct_nodes()
        )
    stored = {rq.target_uid: rcache.lookup(rq) for rq in nfqs}
    assert all(calls is not None for calls in stored.values())

    # A footprint-disjoint insertion is dismissed by the *merged*
    # footprint in one check...
    park = next(n for n in document.iter_nodes() if n.label == "park")
    document.insert_subtree(park, E("bench", V("green")))
    assert rcache.group_screens == 1
    assert all(rcache.lookup(rq) is not None for rq in nfqs)

    # ...while a touching insertion invalidates the affected entries.
    nearby = next(n for n in document.iter_nodes() if n.label == "nearby")
    document.insert_subtree(
        nearby, E("restaurant", E("name", V("Novel")))
    )
    assert rcache.invalidations > 0
    missed = [rq for rq in nfqs if rcache.lookup(rq) is None]
    assert missed
    refreshed = group.evaluate(
        document, keys=[rq.target_uid for rq in missed]
    )
    for rq in missed:
        assert rows_of(refreshed.match_sets[rq.target_uid]) == rows_of(
            Matcher(rq.pattern).evaluate(document)
        )
    rcache.detach()


def test_counters_accumulate():
    document = make_doc()
    counter = MatchCounter()
    nfqs = family()
    group = PatternGroup(
        {rq.target_uid: rq.pattern for rq in nfqs}, counter=counter
    )
    group.evaluate(document)
    assert counter.can_checks > 0
    assert counter.evaluations == len(nfqs)
