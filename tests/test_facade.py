"""Tests for the one-shot ``repro.evaluate`` facade."""

import pytest

import repro
from repro.axml.builder import C, E, V
from repro.axml.xmlio import serialize_document
from repro.lazy.config import EngineConfig, FaultPolicy, Strategy
from repro.obs.trace import EVALUATE, InMemorySink
from repro.services.catalog import StaticService
from repro.services.registry import ServiceBus, ServiceRegistry
from repro.workloads.hotels import (
    figure_1_document,
    figure_1_registry,
    paper_query,
)

QUERY = "/r/x/$V"
EXPECTED_FIG1_ROWS = {
    ("Jo Mama", "75, 2nd Av."),
    ("In Delis", "2nd Ave."),
    ("Liberty Diner", "2 Liberty Pl."),
}


def services():
    return [
        StaticService("f", [E("x", V("1"))]),
        StaticService("g", [E("x", V("2"))]),
    ]


def root():
    return E("r", C("f"), C("g"), E("x", V("0")))


def test_facade_is_exported_at_top_level():
    assert repro.evaluate is not None
    outcome = repro.evaluate(
        paper_query(), figure_1_document(), services=figure_1_registry()
    )
    assert outcome.value_rows() == EXPECTED_FIG1_ROWS


def test_accepts_string_query_and_node_document():
    outcome = repro.evaluate(QUERY, root(), services=services())
    assert outcome.value_rows() == {("0",), ("1",), ("2",)}


def test_accepts_xml_text_document():
    text = serialize_document(figure_1_document())
    outcome = repro.evaluate(
        paper_query(), text, services=figure_1_registry()
    )
    assert outcome.value_rows() == EXPECTED_FIG1_ROWS


def test_accepts_service_list_registry_and_bus():
    by_list = repro.evaluate(QUERY, root(), services=services())
    by_registry = repro.evaluate(
        QUERY, root(), services=ServiceRegistry(services())
    )
    bus = ServiceBus(ServiceRegistry(services()))
    by_bus = repro.evaluate(QUERY, root(), services=bus)
    assert (
        by_list.value_rows() == by_registry.value_rows() == by_bus.value_rows()
    )
    assert bus.log.call_count == by_bus.metrics.calls_invoked  # bus reused


def test_strategy_shorthand_and_string_coercion():
    lazy = repro.evaluate(QUERY, root(), services=services())
    naive = repro.evaluate(
        QUERY, root(), services=services(), strategy="naive"
    )
    assert naive.metrics.strategy == "naive"
    assert naive.value_rows() == lazy.value_rows()


def test_config_passes_through():
    outcome = repro.evaluate(
        QUERY,
        root(),
        services=services(),
        config=EngineConfig(
            strategy=Strategy.NAIVE, fault_policy=FaultPolicy.FREEZE
        ),
    )
    assert outcome.metrics.strategy == "naive"


def test_conflicting_strategy_and_config_raise():
    with pytest.raises(ValueError, match="conflicting strategies"):
        repro.evaluate(
            QUERY,
            root(),
            services=services(),
            strategy=Strategy.NAIVE,
            config=EngineConfig(strategy=Strategy.TOP_DOWN),
        )


def test_trace_kwarg_collects_spans():
    sink = InMemorySink()
    repro.evaluate(QUERY, root(), services=services(), trace=sink)
    assert len(sink.roots) == 1
    assert sink.roots[0].name == EVALUATE


def test_trace_kwarg_does_not_mutate_the_given_config():
    sink = InMemorySink()
    config = EngineConfig()
    repro.evaluate(
        QUERY, root(), services=services(), config=config, trace=sink
    )
    assert config.trace is None
    assert sink.roots
