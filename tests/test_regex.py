"""Unit tests for the content-model regex AST and parser."""

import pytest

from repro.schema.regex import (
    ANY,
    ANY_CONTENT,
    Alt,
    Concat,
    Epsilon,
    Letter,
    Maybe,
    Plus,
    RegexSyntaxError,
    Star,
    letter_sequence,
    parse_regex,
)


def test_parse_single_letter():
    r = parse_regex("hotel")
    assert isinstance(r, Letter)
    assert r.name == "hotel"


def test_parse_concatenation():
    r = parse_regex("name.address.rating")
    assert isinstance(r, Concat)
    assert [p.name for p in r.parts] == ["name", "address", "rating"]


def test_parse_alternation_binds_loosest():
    r = parse_regex("a.b | c")
    assert isinstance(r, Alt)
    assert isinstance(r.parts[0], Concat)


def test_parse_postfix_operators():
    assert isinstance(parse_regex("a*"), Star)
    assert isinstance(parse_regex("a+"), Plus)
    assert isinstance(parse_regex("a?"), Maybe)
    nested = parse_regex("(a|b)*")
    assert isinstance(nested, Star)
    assert isinstance(nested.inner, Alt)


def test_parse_figure_2_lines():
    r = parse_regex("restaurant*.getNearbyRestos*.museum*.getNearbyMuseums*")
    assert isinstance(r, Concat)
    assert r.letters() == {
        "restaurant",
        "getNearbyRestos",
        "museum",
        "getNearbyMuseums",
    }


def test_empty_keyword_is_epsilon():
    assert isinstance(parse_regex("empty"), Epsilon)
    assert parse_regex("empty").nullable()


def test_nullable():
    assert parse_regex("a*").nullable()
    assert parse_regex("a?").nullable()
    assert not parse_regex("a").nullable()
    assert not parse_regex("a.b*").nullable()
    assert parse_regex("a* | b").nullable()
    assert not parse_regex("a+").nullable()


def test_letters_excludes_any():
    r = parse_regex("a.any.b")
    assert r.letters() == {"a", "b"}
    assert r.mentions_any()
    assert not parse_regex("a.b").mentions_any()


def test_any_content_constant():
    assert ANY_CONTENT.nullable()
    assert ANY_CONTENT.mentions_any()
    assert ANY_CONTENT.letters() == set()


def test_render_roundtrip():
    for text in ["a", "a.b", "(a | b)", "a*", "(a.b)* | c?", "a.(b | c)+"]:
        r = parse_regex(text)
        again = parse_regex(r.render())
        assert again == r


def test_equality_and_hash_by_rendering():
    assert parse_regex("a.b") == parse_regex("a . b")
    assert hash(parse_regex("a|b")) == hash(parse_regex("a | b"))


@pytest.mark.parametrize("bad", ["", "a..b", "(a", "a)", "*", "a |", "a %"])
def test_syntax_errors(bad):
    with pytest.raises(RegexSyntaxError):
        parse_regex(bad)


def test_letter_sequence_of_fixed_words():
    assert letter_sequence(parse_regex("a.b.c")) == ["a", "b", "c"]
    assert letter_sequence(parse_regex("empty")) == []
    assert letter_sequence(parse_regex("a*")) is None
    assert letter_sequence(parse_regex("a|b")) is None
    assert letter_sequence(parse_regex("any")) is None
