"""Unit tests for the pattern surface-syntax parser."""

import pytest

from repro.pattern.nodes import EdgeKind, PatternKind
from repro.pattern.parse import PatternSyntaxError, parse_pattern


def test_simple_path():
    q = parse_pattern("/a/b/c")
    assert q.root.label == "a"
    b = q.root.children[0]
    c = b.children[0]
    assert (b.label, c.label) == ("b", "c")
    assert b.edge is EdgeKind.CHILD


def test_descendant_step():
    q = parse_pattern("/a//b")
    assert q.root.children[0].edge is EdgeKind.DESCENDANT


def test_leading_descendant_gets_star_root():
    q = parse_pattern("//b")
    assert q.root.kind is PatternKind.STAR
    assert q.root.children[0].label == "b"
    assert q.root.children[0].edge is EdgeKind.DESCENDANT


def test_value_predicate():
    q = parse_pattern('/show[title="The Hours"]/schedule')
    title = q.root.children[0]
    assert title.label == "title"
    assert title.children[0].kind is PatternKind.VALUE
    assert title.children[0].label == "The Hours"


def test_variable_comparison():
    q = parse_pattern("/r[name=$X]")
    name = q.root.children[0]
    var = name.children[0]
    assert var.kind is PatternKind.VARIABLE
    assert var.label == "X"
    assert var.is_result  # variables default to result nodes


def test_multiple_predicates_and_spine():
    q = parse_pattern('/hotel[name="h"][rating="5"]/nearby')
    labels = [c.label for c in q.root.children]
    assert labels == ["name", "rating", "nearby"]


def test_nested_predicate_paths():
    q = parse_pattern('/a[b/c="1"]/d')
    b = q.root.children[0]
    assert b.label == "b"
    assert b.children[0].label == "c"
    assert b.children[0].children[0].label == "1"


def test_predicate_with_descendant():
    q = parse_pattern("/a[//x]/b")
    x = q.root.children[0]
    assert x.label == "x"
    assert x.edge is EdgeKind.DESCENDANT


def test_star_step():
    q = parse_pattern("/a/*/c")
    assert q.root.children[0].kind is PatternKind.STAR


def test_star_function_step():
    q = parse_pattern("/a/nearby/()")
    fn = q.root.children[0].children[0]
    assert fn.kind is PatternKind.FUNCTION
    assert fn.function_names is None
    assert fn.is_result  # last spine step


def test_named_function_step():
    q = parse_pattern("//rating/getRating()")
    fn = [n for n in q.nodes() if n.kind is PatternKind.FUNCTION][0]
    assert fn.function_names == frozenset({"getRating"})


def test_multi_named_function_step():
    q = parse_pattern("/a/(f|g)()")
    fn = q.root.children[0]
    assert fn.function_names == frozenset({"f", "g"})


def test_explicit_result_marker_overrides_default():
    q = parse_pattern("/a/b!/c")
    marked = [n.label for n in q.result_nodes()]
    assert marked == ["b"]


def test_default_result_is_last_spine_step_not_predicate():
    q = parse_pattern("/a[b]")
    assert [n.label for n in q.result_nodes()] == ["a"]
    q2 = parse_pattern("/a[b]/c[d]")
    assert [n.label for n in q2.result_nodes()] == ["c"]


def test_result_variables_parameter():
    q = parse_pattern("/r[name=$X][addr=$Y]", result_variables=["Y"])
    assert [n.label for n in q.result_nodes()] == ["Y"]


def test_result_variables_unknown_name_raises():
    with pytest.raises(ValueError):
        parse_pattern("/r[name=$X]", result_variables=["Z"])


@pytest.mark.parametrize(
    "bad",
    [
        "a/b",          # missing leading slash
        "/a[",          # unterminated predicate
        '/a[b="x]',     # unterminated string
        "/a/$",         # missing variable name
        "/a]]",         # trailing garbage
        "/a/(f|)()",    # missing alternative name
        "",             # empty
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(PatternSyntaxError):
        parse_pattern(bad)


def test_paper_query_roundtrip_shape(fig1_query):
    q = fig1_query
    assert q.root.label == "hotels"
    hotel = q.root.children[0]
    assert hotel.label == "hotel"
    restaurant = [n for n in q.nodes() if n.label == "restaurant"][0]
    assert restaurant.edge is EdgeKind.DESCENDANT
    assert sorted(q.variables()) == ["X", "Y"]
    assert len(q.result_nodes()) == 2
