"""Unit tests for NFQ generation (Figure 5) and refinement (Section 5)."""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.lazy.relevance import NFQBuilder, RelevanceKind, build_nfqs
from repro.pattern.match import Matcher
from repro.pattern.nodes import EdgeKind, PatternKind
from repro.pattern.parse import parse_pattern
from repro.schema.graphschema import LenientSatisfiability
from repro.schema.satisfiability import ExactSatisfiability
from repro.schema.schema import parse_schema
from repro.workloads.hotels import (
    HOTELS_SCHEMA_TEXT,
    figure_1_document,
    paper_query,
)


def nfq_by_target_label(nfqs, query, label):
    nodes = {n.uid: n for n in query.nodes()}
    out = [rq for rq in nfqs if nodes[rq.target_uid].label == label]
    assert out, f"no NFQ for {label}"
    return out[0]


def test_every_non_root_node_gets_an_nfq():
    query = paper_query()
    nfqs = build_nfqs(query)
    non_root = sum(1 for n in query.nodes() if n.parent is not None)
    targets = set()
    for rq in nfqs:
        targets |= rq.all_target_uids
    assert len(targets) == non_root
    assert all(rq.kind is RelevanceKind.NFQ for rq in nfqs)


def test_output_node_is_the_only_result():
    for rq in build_nfqs(paper_query()):
        results = rq.pattern.result_nodes()
        assert results == [rq.output]
        assert rq.output.kind is PatternKind.FUNCTION


def test_path_nodes_have_no_function_alternative():
    """Step 11 of Figure 5: ORs on the root-to-output path are removed."""
    query = paper_query()
    rq = nfq_by_target_label(build_nfqs(query), query, "restaurant")
    spine = rq.pattern.spine_nodes(rq.output)
    for node in spine[:-1]:
        assert not node.is_or
        assert node.kind is PatternKind.ELEMENT


def test_condition_nodes_are_or_wrapped():
    query = paper_query()
    rq = nfq_by_target_label(build_nfqs(query), query, "restaurant")
    hotel = rq.pattern.spine_nodes(rq.output)[1]
    condition_kinds = {
        c.children and c.is_or for c in hotel.children if c is not hotel
    }
    or_children = [c for c in hotel.children if c.is_or]
    # name and rating conditions are OR(data, ()); nearby is on the spine.
    assert len(or_children) == 2
    for or_node in or_children:
        kinds = {alt.kind for alt in or_node.children}
        assert PatternKind.FUNCTION in kinds


def test_or_wrapping_is_recursive():
    q = parse_pattern("/a[b/c]/d")
    nfqs = build_nfqs(q)
    rq = nfq_by_target_label(nfqs, q, "d")
    b_or = [c for c in rq.pattern.root.children if c.is_or][0]
    b_data = [alt for alt in b_or.children if alt.kind is PatternKind.ELEMENT][0]
    assert b_data.label == "b"
    assert b_data.children[0].is_or  # c is OR-wrapped inside the data branch


def test_output_edge_follows_target_edge():
    query = paper_query()
    nfqs = build_nfqs(query)
    restaurant = nfq_by_target_label(nfqs, query, "restaurant")
    assert restaurant.output.edge is EdgeKind.DESCENDANT
    assert restaurant.descendant_tail
    name = nfq_by_target_label(nfqs, query, "name")
    assert name.output.edge is EdgeKind.CHILD


def test_nfq_retrieves_exactly_the_relevant_calls_of_figure_1():
    """Section 2's discussion: on Figure 1, the relevant calls are the
    two getNearbyRestos/getRating of "Best Western" hotels with
    compatible conditions, plus getHotels.  With our Figure 1 variant
    (distinct hotel names), the relevant calls are those under the
    first hotel plus getHotels."""
    doc = figure_1_document()
    nfqs = build_nfqs(paper_query())
    retrieved = {}
    for rq in nfqs:
        for node in Matcher(rq.pattern).evaluate(doc).distinct_nodes():
            retrieved[node.node_id] = node.label
    # Hotel 1 ("Best Western", rating 5): its two nearby calls qualify.
    # Hotels 2-4 have non-matching names -> all their calls irrelevant.
    # getHotels can return new qualifying hotels.
    assert sorted(retrieved.values()) == [
        "getHotels",
        "getNearbyMuseums",
        "getNearbyRestos",
    ]


def test_conditions_satisfied_by_presence_of_calls():
    # A hotel whose rating is an embedded call still qualifies: the ()
    # alternative of the rating condition matches the call.
    doc = build_document(
        E(
            "hotels",
            E(
                "hotel",
                E("name", V("Best Western")),
                E("address", V("x")),
                E("rating", C("getRating", V("x"))),
                E("nearby", C("getNearbyRestos", V("x"))),
            ),
        )
    )
    nfqs = build_nfqs(paper_query())
    retrieved = set()
    for rq in nfqs:
        for node in Matcher(rq.pattern).evaluate(doc).distinct_nodes():
            retrieved.add(node.label)
    assert retrieved == {"getRating", "getNearbyRestos"}


def test_refined_nfqs_list_concrete_function_names():
    schema = parse_schema(HOTELS_SCHEMA_TEXT)
    query = paper_query()
    builder = NFQBuilder(
        query,
        oracle=LenientSatisfiability(schema),
        function_names=schema.function_names(),
    )
    nfqs = builder.build_all()
    restaurant = nfq_by_target_label(nfqs, query, "restaurant")
    assert restaurant.output.function_names == frozenset(
        {"getNearbyRestos", "getHotels"}
    ) or restaurant.output.function_names == frozenset({"getNearbyRestos"})


def test_refinement_drops_hopeless_targets():
    schema = parse_schema(
        """
        functions:
          getA = [in: data, out: a*]
        elements:
          root = a*.b*
          a = data
          b = data
        """
    )
    q = parse_pattern("/root/b")
    builder = NFQBuilder(
        q,
        oracle=ExactSatisfiability(schema),
        function_names=["getA"],
    )
    b_node = [n for n in q.nodes() if n.label == "b"][0]
    assert builder.build_for(b_node) is None


def test_refinement_requires_function_names():
    with pytest.raises(ValueError):
        NFQBuilder(paper_query(), oracle=object())  # type: ignore[arg-type]


def test_add_function_names_reports_novelty():
    builder = NFQBuilder(paper_query())
    assert builder.add_function_names(["x"]) is True
    assert builder.add_function_names(["x"]) is False


def test_excluded_targets_remove_function_alternatives():
    query = paper_query()
    builder = NFQBuilder(query)
    rating_value = [
        n
        for n in query.nodes()
        if n.kind is PatternKind.VALUE and n.parent.label == "rating"
        and n.parent.parent.label == "hotel"
    ][0]
    restaurant = [n for n in query.nodes() if n.label == "restaurant"][0]
    with_branch = builder.build_for(restaurant)
    without_branch = builder.build_for(
        restaurant, excluded_targets={rating_value.uid}
    )
    def count_or(rq):
        return sum(1 for n in rq.pattern.nodes() if n.is_or)
    assert count_or(without_branch) < count_or(with_branch)


def test_drop_value_joins_replaces_variables():
    query = paper_query()
    builder = NFQBuilder(query, drop_value_joins=True)
    for rq in builder.build_all():
        assert not any(
            n.kind is PatternKind.VARIABLE for n in rq.pattern.nodes()
        )


def test_nfq_results_subset_of_lpq_results():
    """NFQs are at least as precise as LPQs on any document."""
    from repro.lazy.relevance import linear_path_queries

    doc = figure_1_document()
    query = paper_query()
    def retrieved(queries):
        out = set()
        for rq in queries:
            for node in Matcher(rq.pattern).evaluate(doc).distinct_nodes():
                out.add(node.node_id)
        return out

    assert retrieved(build_nfqs(query)) <= retrieved(linear_path_queries(query))
