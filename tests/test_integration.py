"""Integration tests: full pipelines across workloads and configs."""

import itertools

import pytest

from repro.lazy.config import EngineConfig, Strategy, TypingMode
from repro.lazy.engine import LazyQueryEvaluator
from repro.services.service import PushMode
from repro.workloads.hotels import HotelsWorkloadParams, build_hotels_workload
from repro.workloads.nightlife import NightlifeParams, build_nightlife_workload
from repro.workloads.queries import ALL_HOTELS_QUERIES


def evaluate(workload, query, **config_kwargs):
    bus = workload.make_bus()
    engine = LazyQueryEvaluator(
        bus, schema=workload.schema, config=EngineConfig(**config_kwargs)
    )
    return engine.evaluate(query, workload.make_document()), bus


CONFIG_GRID = [
    dict(strategy=Strategy.NAIVE),
    dict(strategy=Strategy.TOP_DOWN),
    dict(strategy=Strategy.LAZY_LPQ),
    dict(strategy=Strategy.LAZY_NFQ),
    dict(strategy=Strategy.LAZY_NFQ, use_layers=False),
    dict(strategy=Strategy.LAZY_NFQ, parallel=False),
    dict(strategy=Strategy.LAZY_NFQ, use_fguide=True),
    dict(strategy=Strategy.LAZY_NFQ, push_mode=PushMode.FILTERED),
    dict(strategy=Strategy.LAZY_NFQ, push_mode=PushMode.BINDINGS),
    dict(strategy=Strategy.LAZY_NFQ, dedupe_relevance_queries=False),
    dict(strategy=Strategy.LAZY_NFQ_TYPED),
    dict(strategy=Strategy.LAZY_NFQ_TYPED, typing=TypingMode.EXACT),
    dict(strategy=Strategy.LAZY_NFQ_TYPED, use_fguide=True),
    dict(
        strategy=Strategy.LAZY_NFQ_TYPED,
        push_mode=PushMode.BINDINGS,
        use_fguide=True,
    ),
]


@pytest.mark.parametrize("config_kwargs", CONFIG_GRID)
def test_hotels_all_configs_agree_with_naive(config_kwargs):
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=12, seed=21))
    baseline, _ = evaluate(wl, wl.query, strategy=Strategy.NAIVE)
    outcome, _ = evaluate(wl, wl.query, **config_kwargs)
    assert outcome.value_rows() == baseline.value_rows(), config_kwargs
    assert outcome.metrics.completed


@pytest.mark.parametrize("query_name", sorted(ALL_HOTELS_QUERIES))
def test_hotels_query_variants_agree(query_name):
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=10, seed=31))
    query = ALL_HOTELS_QUERIES[query_name]()
    baseline, _ = evaluate(wl, query, strategy=Strategy.NAIVE)
    for strategy in (Strategy.LAZY_LPQ, Strategy.LAZY_NFQ, Strategy.LAZY_NFQ_TYPED):
        outcome, _ = evaluate(wl, query, strategy=strategy)
        assert outcome.value_rows() == baseline.value_rows(), (
            query_name,
            strategy,
        )


def test_lazy_strictly_cheaper_on_selective_queries():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=30, seed=41))
    naive, _ = evaluate(wl, wl.query, strategy=Strategy.NAIVE)
    nfq, _ = evaluate(wl, wl.query, strategy=Strategy.LAZY_NFQ)
    typed, _ = evaluate(wl, wl.query, strategy=Strategy.LAZY_NFQ_TYPED)
    assert typed.metrics.calls_invoked <= nfq.metrics.calls_invoked
    assert nfq.metrics.calls_invoked < naive.metrics.calls_invoked
    assert typed.metrics.total_bytes < naive.metrics.total_bytes


def test_call_count_hierarchy_lpq_nfq_typed():
    """Prop. 1 + Section 5: typed ⊆ NFQ ⊆ LPQ ⊆ naive invocations."""
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=20, seed=51))
    counts = {}
    for strategy in (
        Strategy.NAIVE,
        Strategy.LAZY_LPQ,
        Strategy.LAZY_NFQ,
        Strategy.LAZY_NFQ_TYPED,
    ):
        outcome, _ = evaluate(wl, wl.query, strategy=strategy)
        counts[strategy] = outcome.metrics.calls_invoked
    assert (
        counts[Strategy.LAZY_NFQ_TYPED]
        <= counts[Strategy.LAZY_NFQ]
        <= counts[Strategy.LAZY_LPQ]
        <= counts[Strategy.NAIVE]
    )


def test_nightlife_push_and_guide_combined():
    wl = build_nightlife_workload(NightlifeParams(n_theaters=6, n_restaurants=8))
    baseline, _ = evaluate(wl, wl.query, strategy=Strategy.NAIVE)
    combo, bus = evaluate(
        wl,
        wl.query,
        strategy=Strategy.LAZY_NFQ_TYPED,
        use_fguide=True,
        push_mode=PushMode.BINDINGS,
    )
    assert combo.value_rows() == baseline.value_rows()
    assert set(bus.log.calls_by_service()) == {"getShows"}


def test_repeated_evaluation_on_materialised_document_is_free():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=8, seed=61))
    bus = wl.make_bus()
    doc = wl.make_document()
    engine = LazyQueryEvaluator(
        bus, schema=wl.schema, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    first = engine.evaluate(wl.query, doc)
    second = engine.evaluate(wl.query, doc)
    assert second.value_rows() == first.value_rows()
    assert second.metrics.calls_invoked == 0  # document already complete


def test_simulated_times_are_consistent():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=10, seed=71))
    outcome, _ = evaluate(wl, wl.query, strategy=Strategy.LAZY_NFQ)
    m = outcome.metrics
    assert 0 <= m.simulated_parallel_s <= m.simulated_sequential_s
    assert m.total_time_s >= m.analysis_wall_s
    assert m.total_time_parallel_s <= m.total_time_s
