"""Property: XML serialisation round-trips arbitrary AXML trees."""

from hypothesis import given, settings, strategies as st

from repro.axml.node import Activation, call, element, value
from repro.axml.xmlio import parse, serialize

LABELS = ["a", "b", "long-name", "ns.like", "x_1"]
# Values must survive the whitespace-stripping convention: no leading/
# trailing whitespace and not whitespace-only.
VALUES = ["1", "hello world", "éàü", "<>&\"'", "5 stars"]


@st.composite
def axml_trees(draw, depth=3):
    kind = draw(st.sampled_from(["element", "element", "value", "call"]))
    if depth == 0 or kind == "value":
        return value(draw(st.sampled_from(VALUES)))
    if kind == "call":
        node = call(
            draw(st.sampled_from(["svcA", "svcB"])),
            activation=draw(st.sampled_from(list(Activation))),
        )
    else:
        node = element(draw(st.sampled_from(LABELS)))
    for child in draw(st.lists(axml_trees(depth=depth - 1), max_size=3)):
        node.append(child)
    return node


@st.composite
def rooted_trees(draw):
    root = element("root")
    for child in draw(st.lists(axml_trees(), max_size=4)):
        root.append(child)
    return root


def normalized(node):
    """Merge adjacent value siblings — two adjacent text nodes are one
    text node in XML, an inherent model fact, not a round-trip bug."""
    from repro.axml.node import Node

    copy = Node(node.kind, node.label, activation=node.activation)
    pending_text = None
    for child in node.children:
        if child.is_value:
            pending_text = (
                child.label
                if pending_text is None
                else pending_text + child.label
            )
            continue
        if pending_text is not None:
            copy.append(value(pending_text))
            pending_text = None
        copy.append(normalized(child))
    if pending_text is not None:
        copy.append(value(pending_text))
    return copy


@settings(max_examples=150, deadline=None)
@given(tree=rooted_trees())
def test_serialize_parse_roundtrip(tree):
    again = parse(serialize(tree))
    assert again.structurally_equal(normalized(tree))


@settings(max_examples=60, deadline=None)
@given(tree=rooted_trees())
def test_roundtrip_preserves_activation(tree):
    again = parse(serialize(tree))
    original_calls = [n for n in tree.iter_subtree() if n.is_function]
    parsed_calls = [n for n in again.iter_subtree() if n.is_function]
    assert [c.activation for c in original_calls] == [
        c.activation for c in parsed_calls
    ]


@settings(max_examples=60, deadline=None)
@given(tree=rooted_trees())
def test_double_roundtrip_is_stable(tree):
    once = serialize(parse(serialize(tree)))
    twice = serialize(parse(once))
    assert once == twice
