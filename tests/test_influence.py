"""Unit tests for the may-influence relation (Prop. 3) and condition (*)."""

import pytest

from repro.lazy.influence import InfluenceAnalyzer
from repro.lazy.relevance import build_nfqs
from repro.pattern.parse import parse_pattern
from repro.workloads.hotels import paper_query


def analyzer_for(query):
    nfqs = build_nfqs(query)
    return InfluenceAnalyzer(nfqs), nfqs


def by_label(nfqs, query, label, which=0):
    nodes = {n.uid: n for n in query.nodes()}
    out = [
        rq
        for rq in nfqs
        if any(nodes[uid].label == label for uid in rq.all_target_uids)
    ]
    return out[which]


def test_shallower_positions_influence_deeper_ones():
    query = paper_query()
    analyzer, nfqs = analyzer_for(query)
    hotel = by_label(nfqs, query, "hotel")
    restaurant = by_label(nfqs, query, "restaurant")
    assert analyzer.may_influence(hotel, restaurant)
    assert not analyzer.may_influence(restaurant, hotel)


def test_equal_positions_influence_each_other():
    # Calls at a position can return calls at that very position.
    q = parse_pattern("/root[a][b]")
    nfqs = build_nfqs(q)
    analyzer = InfluenceAnalyzer(nfqs)
    a = by_label(nfqs, q, "a")
    b = by_label(nfqs, q, "b")
    assert analyzer.may_influence(a, b)
    assert analyzer.may_influence(b, a)


def test_figure_6_influence_pattern():
    """The paper: NFQ (a) [hotel] may influence (b) [restaurant] and
    (c) [rating value], which are mutually incomparable in the
    original example — but with the descendant-position correction,
    restaurant positions (nearby//*) do cover rating positions."""
    query = paper_query()
    analyzer, nfqs = analyzer_for(query)
    hotel = by_label(nfqs, query, "hotel")
    restaurant = by_label(nfqs, query, "restaurant")
    rating_value = by_label(nfqs, query, "5", which=0)
    assert analyzer.may_influence(hotel, restaurant)
    assert analyzer.may_influence(hotel, rating_value)


def test_sibling_branches_do_not_influence():
    q = parse_pattern("/root/left/x[y]")
    nfqs = build_nfqs(q)
    analyzer = InfluenceAnalyzer(nfqs)
    x = by_label(nfqs, q, "x")
    y = by_label(nfqs, q, "y")
    # y is below x: x's positions (root/left) prefix y's (root/left/x).
    assert analyzer.may_influence(x, y)
    assert not analyzer.may_influence(y, x)


def test_descendant_tail_extends_influence():
    q = parse_pattern("/root/a//b/c")
    nfqs = build_nfqs(q)
    analyzer = InfluenceAnalyzer(nfqs)
    b = by_label(nfqs, q, "b")
    c = by_label(nfqs, q, "c")
    # b's positions are root/a/Σ*: they include c's positions entirely.
    assert analyzer.may_influence(b, c)
    assert analyzer.may_influence(c, b)  # c's position is one of b's


def test_influence_edges_cover_all_pairs():
    query = paper_query()
    analyzer, nfqs = analyzer_for(query)
    edges = analyzer.influence_edges()
    assert set(edges) == {rq.target_uid for rq in nfqs}
    hotel = by_label(nfqs, query, "hotel")
    assert edges[hotel.target_uid]  # influences someone


def test_position_overlap_and_independence():
    q = parse_pattern("/root[a/x][b/y]")
    nfqs = build_nfqs(q)
    analyzer = InfluenceAnalyzer(nfqs)
    x = by_label(nfqs, q, "x")
    y = by_label(nfqs, q, "y")
    assert not analyzer.positions_overlap(x, y)
    assert analyzer.is_independent(x, [x, y])
    a = by_label(nfqs, q, "a")
    b = by_label(nfqs, q, "b")
    assert analyzer.positions_overlap(a, b)  # both at /root
    assert not analyzer.is_independent(a, [a, b])


def test_independence_ignores_self():
    q = parse_pattern("/root/a")
    nfqs = build_nfqs(q)
    analyzer = InfluenceAnalyzer(nfqs)
    (a,) = nfqs
    assert analyzer.is_independent(a, [a])


def test_section_4_3_example_same_layer():
    """Two NFQs with linear paths //a and //b belong together: paths
    ending in b may have a prefix ending in a, and vice versa."""
    q = parse_pattern("/r[//a/p][//b/q]")
    nfqs = build_nfqs(q)
    analyzer = InfluenceAnalyzer(nfqs)
    p = by_label(nfqs, q, "p")
    qq = by_label(nfqs, q, "q")
    assert analyzer.may_influence(p, qq)
    assert analyzer.may_influence(qq, p)


def test_section_4_4_example_independent():
    """...and with linear paths //a vs //b the *intersection* is empty,
    so both are independent (Section 4.4's closing example)."""
    q = parse_pattern("/r[//a/p][//b/q]")
    nfqs = build_nfqs(q)
    analyzer = InfluenceAnalyzer(nfqs)
    p = by_label(nfqs, q, "p")
    qq = by_label(nfqs, q, "q")
    assert analyzer.is_independent(p, [p, qq])
    assert analyzer.is_independent(qq, [p, qq])
