"""The column matcher: slot-space plans pinned to the object walk.

Contract under test (:mod:`repro.pattern.columnmatch`): a compiled
plan, run entirely over the arena's int columns, must reproduce the
object walk's rows *and* first-witness bindings in the object walk's
order — candidate enumeration in sibling-chain order for child edges
and node-id order for descendant edges — across plain, scoped and
post-splice evaluations.  The plan compiler must stand down (return
``None``) on OR nodes and interior data wildcards, and the dead-filter
early exit (an un-interned label) must yield an empty answer without
touching the columns.
"""

from __future__ import annotations

import pytest

from repro.axml.arena import DocumentArena
from repro.axml.builder import C, E, V, build_document
from repro.pattern.columnmatch import ColumnMatcher, compile_plan
from repro.pattern.match import Matcher, MatchCounter, MatchOptions
from repro.pattern.nodes import EdgeKind, pelem, pfunc, por, pvar
from repro.pattern.parse import parse_pattern
from repro.pattern.pattern import TreePattern


def sample_document():
    return build_document(
        E(
            "root",
            E(
                "hotel",
                E("name", V("Best Western")),
                E("rating", V("5")),
                E("nearby", C("getRestos", V("2nd Av."))),
            ),
            E("hotel", E("name", V("Ritz")), E("rating", V("5"))),
            E("hotel", E("name", V("Dive")), E("rating", V("1"))),
        )
    )


def row_ids(match_set):
    return [
        (tuple(id(n) for n in row.nodes), row.bindings) for row in match_set
    ]


def run_column(pattern, document, arena, counter=None):
    plan = compile_plan(pattern)
    assert plan is not None, pattern
    matcher = ColumnMatcher(
        plan, arena, MatchOptions(), counter or MatchCounter()
    )
    return matcher.run(arena.slot_for(document.root))


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------


def test_compile_refuses_or_nodes():
    root = pelem("root", por(pelem("a"), pelem("b")))
    assert compile_plan(TreePattern(root)) is None


def test_compile_refuses_interior_data_wildcards():
    star = pelem("root", pvar("x", result=True))
    assert compile_plan(TreePattern(star)) is not None  # leaf: supported
    interior = parse_pattern("/root/*//$v")
    assert compile_plan(interior) is None


def test_compile_partitions_enum_and_condition_children():
    pattern = parse_pattern('/root/hotel[rating="5"]/name/$x')
    plan = compile_plan(pattern)
    assert plan is not None
    hotel = plan.root.enum_children[0]
    # The rating predicate carries no bindings: a pure condition.  The
    # name step continues the output spine: enumeration.
    assert [c.label for c in hotel.cond_children] == ["rating"]
    assert [c.label for c in hotel.enum_children] == ["name"]
    assert plan.result_uids == tuple(
        r.uid for r in pattern.result_nodes()
    )


def test_compile_keeps_variable_predicates_enumerable():
    # [rating=$r] binds a variable, so the predicate branch must be
    # enumerated, not merely existence-checked.
    pattern = parse_pattern("/root/hotel[rating=$r]/name/$x")
    plan = compile_plan(pattern)
    assert plan is not None
    hotel = plan.root.enum_children[0]
    assert {c.label for c in hotel.enum_children} == {"rating", "name"}
    assert hotel.cond_children == ()


# ---------------------------------------------------------------------------
# Equivalence against the object walk
# ---------------------------------------------------------------------------

EQUIVALENCE_QUERIES = [
    '/root/hotel/name/"Ritz"',
    "/root//name/$x",
    "/root//getRestos()",
    '/root/hotel[rating="5"]/name/$x',
    "/root//hotel[rating=$r]/name/$x",
    "/root/hotel[nearby//getRestos()]/name",
    "/root//hotel[name=$n][rating=$n]",  # a variable join (never true here)
]


@pytest.mark.parametrize("text", EQUIVALENCE_QUERIES)
def test_rows_and_bindings_match_the_object_walk(text):
    document = sample_document()
    arena = DocumentArena(document)
    pattern = parse_pattern(text)
    plain = Matcher(pattern).evaluate(document)
    column = Matcher(
        pattern, arena=arena, column_match=True
    ).evaluate(document)
    assert row_ids(column) == row_ids(plain), text


def test_variable_join_binds_by_label_identity():
    document = build_document(
        E(
            "root",
            E("pair", E("a", V("x")), E("b", V("x"))),
            E("pair", E("a", V("x")), E("b", V("y"))),
        )
    )
    arena = DocumentArena(document)
    pattern = parse_pattern("/root/pair[a/$v][b/$v]")
    plain = Matcher(pattern).evaluate(document)
    column = Matcher(
        pattern, arena=arena, column_match=True
    ).evaluate(document)
    assert row_ids(column) == row_ids(plain)
    assert len(column) == 1  # only the agreeing pair survives the join


def test_slot_rows_render_bindings_from_the_label_table():
    document = sample_document()
    arena = DocumentArena(document)
    rows = run_column(parse_pattern("/root//name/$x"), document, arena)
    assert [bindings for _, bindings in rows] == [
        (("x", "Best Western"),),
        (("x", "Ritz"),),
        (("x", "Dive"),),
    ]


def test_descendant_candidates_come_in_node_id_order():
    document = sample_document()
    arena = DocumentArena(document)
    rows = run_column(parse_pattern("/root//name"), document, arena)
    slots = [slots[0] for slots, _ in rows]
    ids = [arena.node_id[s] for s in slots]
    assert ids == sorted(ids)


def test_function_name_sets_filter_by_interned_ids():
    document = sample_document()
    arena = DocumentArena(document)
    named = run_column(parse_pattern("/root//getRestos()"), document, arena)
    assert len(named) == 1
    star = run_column(
        TreePattern(
            pelem(
                "root", pfunc(None, edge=EdgeKind.DESCENDANT, result=True)
            )
        ),
        document,
        arena,
    )
    assert len(star) == 1  # the star function matches any call
    missing = run_column(
        parse_pattern("/root//neverServed()"), document, arena
    )
    assert missing == []


def test_uninterned_label_is_a_dead_filter_not_a_fallback():
    document = sample_document()
    arena = DocumentArena(document)
    counter = MatchCounter()
    rows = run_column(
        parse_pattern("/root//nosuchlabel/$x"), document, arena, counter
    )
    assert rows == []
    assert counter.column_fallbacks == 0
    assert counter.column_pass_nodes == 0  # dead exit: no scan ran


def test_function_parameters_are_a_barrier():
    document = sample_document()
    arena = DocumentArena(document)
    # "2nd Av." lives inside the getRestos call's parameters: invisible
    # to descendant steps unless options descend into parameters.
    pattern = parse_pattern('/root//"2nd Av."')
    rows = run_column(pattern, document, arena)
    assert rows == []
    plan = compile_plan(pattern)
    opened = ColumnMatcher(
        plan,
        arena,
        MatchOptions(descend_into_parameters=True),
        MatchCounter(),
    ).run(arena.slot_for(document.root))
    assert len(opened) == 1


def test_scoped_run_sees_only_the_scope_children():
    document = sample_document()
    arena = DocumentArena(document)
    pattern = parse_pattern("/root//name/$x")
    plan = compile_plan(pattern)
    scope = [arena.slot_for(document.root.children[1])]
    rows = ColumnMatcher(plan, arena, MatchOptions(), MatchCounter()).run(
        arena.slot_for(document.root), scope
    )
    assert [bindings for _, bindings in rows] == [(("x", "Ritz"),)]
    plain = Matcher(pattern).evaluate_scoped(
        document, document.root.children[1]
    )
    assert [r.bindings for r in plain] == [bindings for _, bindings in rows]


def test_run_resolves_labels_fresh_after_a_splice():
    document = sample_document()
    arena = DocumentArena(document)
    pattern = parse_pattern("/root//brandnew/$x")
    plan = compile_plan(pattern)
    matcher = ColumnMatcher(plan, arena, MatchOptions(), MatchCounter())
    assert matcher.run(arena.slot_for(document.root)) == []
    # The label interns only now — a run caching filters across calls
    # would keep answering "dead".
    document.replace_call(
        document.function_nodes()[0], [E("brandnew", V("fresh"))]
    )
    rows = matcher.run(arena.slot_for(document.root))
    assert [bindings for _, bindings in rows] == [(("x", "fresh"),)]


def test_counters_attribute_column_work_separately():
    document = sample_document()
    arena = DocumentArena(document)
    counter = MatchCounter()
    matcher = Matcher(
        parse_pattern("/root//name/$x"),
        counter=counter,
        arena=arena,
        column_match=True,
    )
    result = matcher.evaluate(document)
    assert counter.column_rows == len(result) == 3
    assert counter.column_pass_nodes > 0
    assert counter.embeddings_found == 3
    # The object walk's cost counters stay untouched: the column pass
    # never mixes its effort into them.
    assert counter.can_checks == 0
    assert counter.candidates_visited == 0
