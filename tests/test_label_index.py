"""LabelIndex maintenance: splice deltas keep it equal to a rebuild."""

from __future__ import annotations

import pytest

from repro.axml import LabelIndex, SpliceDelta, build_document
from repro.axml.builder import C, E, V
from repro.axml.node import Activation


def snapshot(index: LabelIndex) -> dict:
    """The index's content as comparable primitives."""
    return {
        "labels": {
            label: sorted(members)
            for label, members in index.labels.items()
        },
        "functions": {
            name: sorted(members)
            for name, members in index.functions.items()
        },
    }


def rebuilt_snapshot(index: LabelIndex) -> dict:
    fresh = LabelIndex(index.document)
    try:
        return snapshot(fresh)
    finally:
        fresh.detach()


def make_document():
    return build_document(
        E(
            "hotels",
            E(
                "hotel",
                E("name", V("Ritz")),
                E("rating", C("getRating", V("Ritz"))),
            ),
            C("getHotels", V("all")),
        )
    )


def test_build_covers_every_node():
    doc = make_document()
    index = LabelIndex(doc)
    assert index.node_count() == doc.stats().total_nodes
    assert {n.label for n in index.data_nodes("hotel")} == {"hotel"}
    assert len(index.function_nodes("getRating")) == 1
    assert len(index.function_nodes()) == 2
    assert snapshot(index) == rebuilt_snapshot(index)


def test_replace_call_updates_both_sides():
    doc = make_document()
    index = LabelIndex(doc)
    (call,) = [c for c in doc.function_nodes() if c.label == "getRating"]
    doc.replace_call(call, [V("5")])
    assert index.function_nodes("getRating") == []
    assert [n.label for n in index.data_nodes("5")] == ["5"]
    assert index.splices_applied == 1
    assert snapshot(index) == rebuilt_snapshot(index)


def test_nested_splices_track_every_generation():
    """A call returning calls returning calls: the index follows each
    splice, including the parameters that leave with each call."""
    doc = make_document()
    index = LabelIndex(doc)
    (outer,) = [c for c in doc.function_nodes() if c.label == "getHotels"]
    doc.replace_call(
        outer,
        [E("hotel", E("rating", C("getRating", V("Carlton"))))],
    )
    # The outer call (and its "all" parameter) left; a nested call came.
    assert index.function_nodes("getHotels") == []
    assert "all" not in index.labels
    assert len(index.function_nodes("getRating")) == 2
    assert snapshot(index) == rebuilt_snapshot(index)

    (nested,) = [
        c for c in doc.function_nodes() if c.produced_by is not None
    ]
    doc.replace_call(nested, [V("3"), C("getRating", V("again"))])
    assert len(index.function_nodes("getRating")) == 2
    assert "Carlton" not in index.labels
    assert snapshot(index) == rebuilt_snapshot(index)


def test_frozen_calls_stay_indexed():
    """Freezing is an activation flip, not a removal — the call remains
    part of the document and of the index."""
    doc = make_document()
    index = LabelIndex(doc)
    (call,) = [c for c in doc.function_nodes() if c.label == "getRating"]
    call.activation = Activation.FROZEN
    assert call in index.function_nodes("getRating")
    assert snapshot(index) == rebuilt_snapshot(index)


def test_insert_and_remove_subtree():
    doc = make_document()
    index = LabelIndex(doc)
    new_hotel = E("hotel", E("name", V("Savoy")), C("getRating", V("Savoy")))
    doc.insert_subtree(doc.root, new_hotel)
    assert len(index.data_nodes("hotel")) == 2
    assert len(index.function_nodes("getRating")) == 2
    assert snapshot(index) == rebuilt_snapshot(index)

    doc.remove_subtree(new_hotel)
    assert len(index.data_nodes("hotel")) == 1
    assert "Savoy" not in index.labels
    assert len(index.function_nodes("getRating")) == 1
    assert snapshot(index) == rebuilt_snapshot(index)


def test_empty_result_forest_only_removes():
    doc = make_document()
    index = LabelIndex(doc)
    (call,) = [c for c in doc.function_nodes() if c.label == "getHotels"]
    doc.replace_call(call, [])
    assert index.function_nodes("getHotels") == []
    assert snapshot(index) == rebuilt_snapshot(index)


def test_detach_stops_maintenance():
    doc = make_document()
    index = LabelIndex(doc)
    index.detach()
    (call,) = [c for c in doc.function_nodes() if c.label == "getRating"]
    doc.replace_call(call, [V("5")])
    # Stale on purpose: the detached index still lists the old call.
    assert len(index.function_nodes("getRating")) == 1
    assert "5" not in index.labels


def test_splice_delta_iterates_whole_subtrees():
    doc = make_document()
    deltas: list[SpliceDelta] = []

    class Recorder:
        def call_removed(self, document, node):
            pass

        def calls_added(self, document, nodes):
            pass

        def splice(self, document, delta):
            deltas.append(delta)

    doc.add_observer(Recorder())
    (call,) = [c for c in doc.function_nodes() if c.label == "getRating"]
    doc.replace_call(call, [E("rated", V("5"))])
    (delta,) = deltas
    assert [n.label for n in delta.removed] == ["getRating"]
    # iter_removed reaches the call's parameter subtree too.
    assert sorted(n.label for n in delta.iter_removed()) == [
        "Ritz",
        "getRating",
    ]
    assert sorted(n.label for n in delta.iter_added()) == ["5", "rated"]
    assert delta.parent is not None and delta.parent.label == "rating"


def test_legacy_observers_are_not_called_for_splices():
    """Observers without a ``splice`` method keep working untouched."""
    doc = make_document()
    events: list[str] = []

    class Legacy:
        def call_removed(self, document, node):
            events.append(f"removed:{node.label}")

        def calls_added(self, document, nodes):
            events.append(f"added:{len(nodes)}")

    doc.add_observer(Legacy())
    (call,) = [c for c in doc.function_nodes() if c.label == "getRating"]
    doc.replace_call(call, [C("getRating", V("x"))])
    assert events == ["removed:getRating", "added:1"]


@pytest.mark.parametrize("rounds", [1, 3])
def test_random_invocation_sequence_equals_rebuild(rounds):
    """Drive the document through every live call repeatedly; after
    each splice the maintained index equals a from-scratch build."""
    doc = make_document()
    index = LabelIndex(doc)
    counter = 0
    for _ in range(rounds):
        for call in list(doc.function_nodes()):
            if not doc.contains(call):
                continue
            counter += 1
            forest = (
                [E("hotel", E("name", V(f"h{counter}")))]
                if counter % 2
                else [C("getRating", V(f"k{counter}"))]
                if counter < 6
                else [V(str(counter))]
            )
            doc.replace_call(call, forest)
            assert snapshot(index) == rebuilt_snapshot(index)
    assert index.splices_applied == counter
