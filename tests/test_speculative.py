"""Tests for speculative parallelism (Section 4.4's closing remark)."""

from repro.axml.builder import C, E, V, build_document
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.pattern.parse import parse_pattern
from repro.services.catalog import StaticService, TableService
from repro.services.registry import ServiceBus, ServiceRegistry
from repro.workloads.hotels import (
    HotelsWorkloadParams,
    build_hotels_workload,
)


def dependent_scenario():
    """getRating and getNearbyRestos under one hotel: not independent
    (a low rating kills the restaurants call's relevance)."""
    document = build_document(
        E(
            "hotels",
            E(
                "hotel",
                E("name", V("Best Western")),
                E("address", V("a")),
                E("rating", C("getRating", V("a"))),
                E("nearby", C("getNearbyRestos", V("a"))),
            ),
        )
    )
    registry = ServiceRegistry(
        [
            TableService("getRating", {"a": [V("2")]}),  # low rating!
            StaticService(
                "getNearbyRestos",
                [
                    E(
                        "restaurant",
                        E("name", V("r")),
                        E("address", V("x")),
                        E("rating", V("5")),
                    )
                ],
            ),
        ]
    )
    query = parse_pattern(
        '/hotels/hotel[name="Best Western"][rating="5"]'
        '/nearby//restaurant[name=$X][address=$Y][rating="5"]'
    )
    return document, registry, query


def run(document, registry, query, **kw):
    bus = ServiceBus(registry)
    outcome = LazyQueryEvaluator(
        bus, config=EngineConfig(strategy=Strategy.LAZY_NFQ, **kw)
    ).evaluate(query, document)
    return outcome, bus


def test_careful_mode_spares_the_wasted_call():
    document, registry, query = dependent_scenario()
    outcome, bus = run(document, registry, query, speculative=False)
    # getRating fires first, returns 2, getNearbyRestos becomes
    # irrelevant: exactly one invocation.
    assert outcome.metrics.calls_invoked == 1
    assert bus.log.calls_by_service() == {"getRating": 1}
    assert outcome.value_rows() == set()


def test_speculative_mode_trades_a_call_for_a_round():
    document, registry, query = dependent_scenario()
    outcome, bus = run(document, registry, query, speculative=True)
    # Both calls fire in one round; the restaurants call was wasted.
    assert outcome.metrics.calls_invoked == 2
    assert outcome.metrics.invocation_rounds == 1
    assert outcome.value_rows() == set()  # the answer is unchanged


def test_speculation_never_changes_results():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=15, seed=23))

    def evaluate(**kw):
        bus = wl.make_bus()
        return LazyQueryEvaluator(
            bus, schema=wl.schema, config=EngineConfig(**kw)
        ).evaluate(wl.query, wl.make_document())

    careful = evaluate(strategy=Strategy.LAZY_NFQ)
    speculative = evaluate(strategy=Strategy.LAZY_NFQ, speculative=True)
    assert speculative.value_rows() == careful.value_rows()
    assert speculative.metrics.calls_invoked >= careful.metrics.calls_invoked
    assert (
        speculative.metrics.invocation_rounds
        <= careful.metrics.invocation_rounds
    )
    assert (
        speculative.metrics.simulated_parallel_s
        <= careful.metrics.simulated_parallel_s + 1e-9
    )


def test_speculative_label():
    config = EngineConfig(strategy=Strategy.LAZY_NFQ, speculative=True)
    assert "spec" in config.label
