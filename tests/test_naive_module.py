"""Direct tests for the naive fixpoint driver."""

from repro.axml.builder import C, E, V, build_document
from repro.lazy.naive import naive_fixpoint


def invoker(results_by_service):
    def invoke(call):
        forest = [t.clone() for t in results_by_service.get(call.label, [])]
        document = invoke.document
        document.replace_call(call, forest)
        return 0.1

    return invoke


def drive(document, results_by_service, max_invocations=100):
    rounds = []
    invoke = invoker(results_by_service)
    invoke.document = document
    count, completed = naive_fixpoint(
        document, invoke, max_invocations, rounds.append
    )
    return count, completed, rounds


def test_fixpoint_on_extensional_document():
    doc = build_document(E("r", E("a", V("1"))))
    count, completed, rounds = drive(doc, {})
    assert (count, completed) == (0, True)
    assert rounds == []


def test_fixpoint_cascades_through_result_calls():
    doc = build_document(E("r", C("outer")))
    count, completed, rounds = drive(
        doc,
        {
            "outer": [E("mid", C("inner"))],
            "inner": [V("leaf")],
        },
    )
    assert (count, completed) == (2, True)
    assert len(rounds) == 2  # one sweep per nesting level
    assert not doc.function_nodes()


def test_budget_exhaustion_reports_incomplete():
    doc = build_document(E("r", C("a"), C("b"), C("c")))
    count, completed, rounds = drive(doc, {}, max_invocations=2)
    assert count == 2
    assert not completed
    assert len(doc.function_nodes()) == 1


def test_calls_consumed_as_parameters_are_skipped():
    # `inner` is a parameter of `outer`; invoking outer (document order
    # puts it first) detaches inner before its turn comes.
    doc = build_document(E("r", C("outer", E("arg", C("inner")))))
    count, completed, rounds = drive(
        doc, {"outer": [V("done")], "inner": [V("never")]}
    )
    assert (count, completed) == (1, True)


def test_round_times_are_reported():
    doc = build_document(E("r", C("a"), C("b")))
    _, _, rounds = drive(doc, {})
    assert rounds == [[0.1, 0.1]]
