"""Tests for the relaxed (Section 6.1) relevance analysis.

The "XPath approximation" drops value-based joins from the NFQs: it is
cheaper to evaluate but may let join-inconsistent (hence irrelevant)
calls through — always safely.
"""

from repro.axml.builder import C, E, V, build_document
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.lazy.relevance import NFQBuilder
from repro.pattern.match import Matcher
from repro.pattern.nodes import PatternKind
from repro.pattern.parse import parse_pattern
from repro.services.catalog import StaticService
from repro.services.registry import ServiceBus, ServiceRegistry
from repro.workloads.hotels import (
    HotelsWorkloadParams,
    build_hotels_workload,
    paper_query,
)


def join_scenario():
    """A call that only a join-aware NFQ can prove irrelevant.

    Query: /r[s/a=$V][t/b=$V]/c — the two $V conditions are satisfied
    extensionally by *different* values (1 vs 2) and no call can ever
    add more a/b elements, so the call under c cannot contribute.
    """
    document = build_document(
        E(
            "r",
            E("s", E("a", V("1"))),
            E("t", E("b", V("2"))),
            E("c", C("getMore", V("k"))),
        )
    )
    registry = ServiceRegistry([StaticService("getMore", [E("x", V("3"))])])
    query = parse_pattern("/r[s/a=$V][t/b=$V]/c/x")
    return document, registry, query


def retrieved_calls(query, document, drop_value_joins):
    builder = NFQBuilder(query, drop_value_joins=drop_value_joins)
    out = set()
    for rq in builder.build_all():
        for node in Matcher(rq.pattern).evaluate(document).distinct_nodes():
            out.add(node.label)
    return out


def test_join_aware_nfq_prunes_inconsistent_call():
    document, _, query = join_scenario()
    assert retrieved_calls(query, document, drop_value_joins=False) == set()


def test_relaxed_nfq_lets_the_call_through():
    document, _, query = join_scenario()
    assert retrieved_calls(query, document, drop_value_joins=True) == {
        "getMore"
    }


def test_relaxed_engine_is_safe_but_busier():
    document, registry, query = join_scenario()
    exact_doc = document
    relaxed_doc = exact_doc.copy()

    exact = LazyQueryEvaluator(
        ServiceBus(registry), config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    ).evaluate(query, exact_doc)
    relaxed = LazyQueryEvaluator(
        ServiceBus(ServiceRegistry([StaticService("getMore", [E("x", V("3"))])])),
        config=EngineConfig(strategy=Strategy.LAZY_NFQ, drop_value_joins=True),
    ).evaluate(query, relaxed_doc)

    assert exact.value_rows() == relaxed.value_rows() == set()
    assert exact.metrics.calls_invoked == 0
    assert relaxed.metrics.calls_invoked == 1


def test_relaxed_patterns_contain_no_variables():
    builder = NFQBuilder(paper_query(), drop_value_joins=True)
    for rq in builder.build_all():
        assert all(
            node.kind is not PatternKind.VARIABLE
            for node in rq.pattern.nodes()
        )


def test_relaxed_agrees_on_the_hotels_workload():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=10, seed=3))

    def run(**kw):
        bus = wl.make_bus()
        return LazyQueryEvaluator(
            bus, schema=wl.schema, config=EngineConfig(**kw)
        ).evaluate(wl.query, wl.make_document())

    exact = run(strategy=Strategy.LAZY_NFQ)
    relaxed = run(strategy=Strategy.LAZY_NFQ, drop_value_joins=True)
    assert relaxed.value_rows() == exact.value_rows()
    assert relaxed.metrics.calls_invoked >= exact.metrics.calls_invoked
