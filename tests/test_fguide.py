"""Unit tests for function-call guides (Section 6.2)."""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.axml.node import element, call
from repro.lazy.fguide import FGuide
from repro.lazy.relevance import linear_path_queries
from repro.pattern.match import Matcher
from repro.pattern.parse import parse_pattern
from repro.workloads.hotels import (
    build_hotels_workload,
    HotelsWorkloadParams,
    figure_1_document,
    paper_query,
)


@pytest.fixture
def doc():
    return figure_1_document()


@pytest.fixture
def guide(doc):
    return FGuide(doc)


def test_guide_summarises_call_positions(doc, guide):
    assert guide.call_count() == len(doc.function_nodes())
    assert set(guide.paths()) == {
        ("hotels",),
        ("hotels", "hotel", "rating"),
        ("hotels", "hotel", "nearby"),
    }


def test_guide_is_compact(doc, guide):
    # One trie node per distinct path, not per call.
    assert guide.size() < doc.stats().total_nodes
    assert guide.size() == 4  # hotels, hotel, rating, nearby


def test_lpq_on_guide_equals_lpq_on_document(doc, guide):
    """The key Section 6.2 property, checked for every LPQ of the paper
    query."""
    for rq in linear_path_queries(paper_query(), dedupe=False):
        on_doc = {
            n.node_id
            for n in Matcher(rq.pattern).evaluate(doc).distinct_nodes()
        }
        on_guide = {
            n.node_id
            for n in guide.candidates(
                rq.linear_steps, descendant_tail=rq.descendant_tail
            )
        }
        assert on_doc == on_guide, rq.pattern.to_string()


def test_type_filter_restricts_names(doc, guide):
    q = parse_pattern("/hotels/hotel/nearby/()")
    steps = [
        s for s in linear_path_queries(paper_query(), dedupe=False)
        if s.pattern.to_string() == "/hotels[hotel[nearby[//()!]]]"
    ][0].linear_steps
    all_calls = guide.candidates(steps, descendant_tail=True)
    only_restos = guide.candidates(
        steps, frozenset({"getNearbyRestos"}), descendant_tail=True
    )
    assert {n.label for n in all_calls} == {
        "getNearbyRestos",
        "getNearbyMuseums",
    }
    assert {n.label for n in only_restos} == {"getNearbyRestos"}


def test_maintenance_on_invocation(doc, guide):
    f = [n for n in doc.function_nodes() if n.label == "getHotels"][0]
    doc.replace_call(
        f,
        [element("hotel", element("rating", call("getRating", element("p")))),],
    )
    assert ("hotels",) not in guide.paths()
    assert guide.call_count() == len(doc.function_nodes())
    # The fresh nested call is discoverable at its position.
    q = parse_pattern("/hotels/hotel/rating/()")
    steps = [
        rq
        for rq in linear_path_queries(paper_query(), dedupe=False)
        if rq.pattern.to_string() == "/hotels[hotel[rating[()!]]]"
    ][0].linear_steps
    names = {n.label for n in guide.candidates(steps)}
    assert "getRating" in names


def test_pruning_keeps_guide_minimal(doc, guide):
    size_before = guide.size()
    for f in list(doc.function_nodes()):
        doc.replace_call(f, [])
    assert guide.call_count() == 0
    assert guide.size() == 1  # only the root remains
    assert guide.size() < size_before


def test_rebuild_equals_incremental(doc, guide):
    f = doc.function_nodes()[0]
    doc.replace_call(f, [element("x", call("newCall"))])
    incremental = set(guide.paths())
    guide.rebuild()
    assert set(guide.paths()) == incremental


def test_detach_stops_maintenance(doc, guide):
    guide.detach()
    before = guide.call_count()
    doc.replace_call(doc.function_nodes()[0], [])
    assert guide.call_count() == before  # stale by design


def test_guide_scales_sublinearly():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=50, seed=3))
    doc = wl.make_document()
    guide = FGuide(doc)
    stats = doc.stats()
    assert guide.call_count() == stats.function_nodes
    # 50 hotels share a handful of positions.
    assert guide.size() <= 6
