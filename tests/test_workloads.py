"""Tests for the workload generators themselves."""

from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.schema.schema import parse_schema
from repro.workloads.hotels import (
    HotelsWorkloadParams,
    build_hotels_workload,
    figure_1_document,
    figure_1_registry,
    figure_1_schema,
)
from repro.workloads.nightlife import NightlifeParams, build_nightlife_workload
from repro.workloads.queries import ALL_HOTELS_QUERIES
from repro.workloads.synthetic import SyntheticWorld


def test_figure_1_document_is_schema_valid():
    assert figure_1_schema().validate_document(figure_1_document()) == []


def test_figure_1_services_produce_schema_valid_outputs():
    schema = figure_1_schema()
    registry = figure_1_registry()
    from repro.axml.builder import V

    for name, key in [
        ("getNearbyRestos", "75, 2nd Av."),
        ("getNearbyMuseums", "any"),
        ("getRating", "22 Madison Av."),
        ("getHotels", "NY"),
    ]:
        forest = registry.resolve(name).produce([V(key)])
        assert schema.validate_output(name, forest) == [], name


def test_hotels_workload_documents_are_deterministic():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=8, seed=5))
    a, b = wl.make_document(), wl.make_document()
    assert a.root.structurally_equal(b.root)


def test_hotels_workload_is_schema_valid():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=8, seed=5))
    assert wl.schema.validate_document(wl.make_document()) == []


def test_hotels_workload_scales():
    small = build_hotels_workload(HotelsWorkloadParams(n_hotels=5, seed=1))
    large = build_hotels_workload(HotelsWorkloadParams(n_hotels=40, seed=1))
    assert (
        large.make_document().stats().total_nodes
        > small.make_document().stats().total_nodes * 4
    )


def test_hotels_queries_parse_against_workload():
    wl = build_hotels_workload(HotelsWorkloadParams(n_hotels=6, seed=2))
    bus = wl.make_bus()
    for name, factory in ALL_HOTELS_QUERIES.items():
        q = factory()
        out = LazyQueryEvaluator(
            bus, schema=wl.schema, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
        ).evaluate(q, wl.make_document())
        assert out.metrics.completed, name


def test_nightlife_lazy_never_touches_restaurants():
    wl = build_nightlife_workload(NightlifeParams(n_theaters=4, n_restaurants=6))
    bus = wl.make_bus()
    out = LazyQueryEvaluator(
        bus, schema=wl.schema, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    ).evaluate(wl.query, wl.make_document())
    services = bus.log.calls_by_service()
    assert "getRestaurantList" not in services
    assert "getMenu" not in services
    assert out.metrics.completed


def test_nightlife_typed_also_skips_reviews():
    wl = build_nightlife_workload(NightlifeParams(n_theaters=4, n_restaurants=6))
    bus = wl.make_bus()
    out = LazyQueryEvaluator(
        bus,
        schema=wl.schema,
        config=EngineConfig(strategy=Strategy.LAZY_NFQ_TYPED),
    ).evaluate(wl.query, wl.make_document())
    services = bus.log.calls_by_service()
    assert set(services) == {"getShows"}


def test_nightlife_results_mention_target_schedule():
    wl = build_nightlife_workload(NightlifeParams(seed=1))
    bus = wl.make_bus()
    out = LazyQueryEvaluator(
        bus, schema=wl.schema, config=EngineConfig(strategy=Strategy.NAIVE)
    ).evaluate(wl.query, wl.make_document())
    assert out.rows
    for row in out.rows:
        assert row.nodes[0].label == "schedule"


def test_synthetic_world_is_deterministic():
    w1, w2 = SyntheticWorld(seed=5), SyntheticWorld(seed=5)
    d1, d2 = w1.make_document(3), w2.make_document(3)
    assert d1.root.structurally_equal(d2.root)
    f1 = w1.result_forest("svc0", "1:x")
    f2 = w2.result_forest("svc0", "1:x")
    assert len(f1) == len(f2)
    assert all(a.structurally_equal(b) for a, b in zip(f1, f2))


def test_synthetic_budget_bounds_nesting():
    world = SyntheticWorld(seed=6)
    doc = world.make_document(0, call_budget=1)
    bus = world.bus()
    # Materialise fully: must terminate well within the guard.
    world._materialize(doc, max_calls=400)
    assert not doc.function_nodes()


def test_synthetic_queries_are_well_formed():
    world = SyntheticWorld(seed=7)
    for i in range(5):
        doc = world.make_document(i)
        q = world.sample_query(doc, i)
        q.validate()
        assert q.root.label == "root"
        assert q.result_nodes()
