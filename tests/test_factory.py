"""The workload factory itself: determinism, regime invariants, and the
fallback paths the regimes exist to reach.

The factory's contract is that every artefact is a pure function of the
spec — two `GeneratedWorkload`s over equal specs must agree
byte-for-byte on documents, service results, queries, and traces.  On
top of that, each named regime must actually *be* what its description
claims (recursion must reach the projection screen, the distinct-key
flood must starve the cache, multi-child roots must defeat AnswerCache
scoping, BINDINGS pushing must record overlay rows), and the fallback
paths those shapes trigger must stay invisible next to the naive
oracle.
"""

from __future__ import annotations

import pytest

from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.continuous import ContinuousQuery
from repro.lazy.engine import LazyQueryEvaluator
from repro.services.service import PushMode
from repro.workloads.factory import (
    REGIMES,
    GeneratedWorkload,
    WorkloadSpec,
    fuzz_spec,
    generate,
    regime,
)

# ---------------------------------------------------------------------------
# Determinism and spec plumbing
# ---------------------------------------------------------------------------


def _structure(node):
    return (node.kind, node.label, tuple(_structure(c) for c in node.children))


def test_generation_is_a_pure_function_of_the_spec():
    """Two workloads over equal specs agree on every artefact."""
    spec = REGIMES["baseline"]
    a, b = generate(spec), generate(spec)
    assert _structure(a.make_document(0).root) == _structure(
        b.make_document(0).root
    )
    assert [q.to_string() for q in a.queries()] == [
        q.to_string() for q in b.queries()
    ]
    assert a.result_forest("svc0", "1:x") is not None
    assert [_structure(n) for n in a.result_forest("svc0", "1:x")] == [
        _structure(n) for n in b.result_forest("svc0", "1:x")
    ]
    assert a.arrival_trace() == b.arrival_trace()
    # And documents rebuild identically across calls (the twin idiom).
    assert _structure(a.make_document(0).root) == _structure(
        a.make_document(0).root
    )


def test_different_seeds_change_the_world():
    base = generate(REGIMES["baseline"])
    other = regime("baseline", seed=REGIMES["baseline"].seed + 1)
    assert _structure(base.make_document(0).root) != _structure(
        other.make_document(0).root
    )


def test_spec_round_trips_through_json():
    for spec in REGIMES.values():
        assert WorkloadSpec.from_json(spec.to_json()) == spec
    with pytest.raises(ValueError):
        WorkloadSpec.from_json({"name": "x", "no_such_field": 1})


def test_fuzz_specs_stay_small():
    for name in REGIMES:
        spec = fuzz_spec(name, seed=7)
        gen = generate(spec)
        assert gen.make_document(0).root.subtree_size() < 5_000
        assert spec.seed == 7


# ---------------------------------------------------------------------------
# Regime invariants: each regime is what it claims to be
# ---------------------------------------------------------------------------


def test_regimes_cover_the_required_adversaries():
    names = set(REGIMES)
    assert len(names) >= 8
    assert {
        "deep-recursion",
        "bindings-push",
        "cache-flood",
        "multi-root-standing",
        "bursty-tenants",
        "large-document",
    } <= names
    for name, spec in REGIMES.items():
        assert spec.name == name
        assert spec.description


def test_large_document_regime_is_pinned_to_a_million_nodes():
    """Spec invariants of the 1M-node arena regime, asserted without
    building it (the full-scale build belongs to the E16 bench)."""
    spec = REGIMES["large-document"]
    assert spec.min_nodes >= 1_000_000
    assert spec.arena_build is True
    assert spec.descendant_probability == 0.0


def test_large_document_compat_regime_reaches_100k_nodes():
    """The pre-arena 100k object-graph twin still builds at full size."""
    gen = regime("large-document-100k")
    assert gen.spec.arena_build is False
    assert gen.make_document(0).root.subtree_size() >= 100_000


def test_arena_build_regimes_attach_a_consistent_mirror():
    """A downsized build of the arena regime must carry a column mirror
    that agrees with the object graph node for node."""
    gen = regime("large-document", min_nodes=2_000)
    document = gen.make_document(0)
    arena = document.arena
    assert arena is not None and arena.document is document
    assert arena.live_nodes == document.root.subtree_size()
    assert arena.consistency_errors() == []


def test_cache_flood_keys_are_distinct():
    gen = regime("cache-flood")
    document = gen.make_document(0)
    keys = [
        (call.label, call.children[0].label)
        for call in document.function_nodes()
    ]
    assert len(keys) > 50
    assert len(set(keys)) == len(keys), "flood keys must not repeat"


def test_multi_root_regime_queries_have_multi_child_roots():
    gen = regime("multi-root-standing")
    for i in range(gen.spec.n_queries):
        assert len(gen.query_for(i).root.children) >= 2


def test_bursty_trace_is_jittered_not_lockstep():
    gen = regime("bursty-tenants")
    trace = gen.arrival_trace()
    assert len(trace) == gen.spec.n_rounds
    n_docs = gen.spec.n_documents
    assert any(len(due) < n_docs for due in trace), "never jitters"
    assert any(due for due in trace), "nothing ever arrives"


def test_recursive_regime_prunes_projection():
    """The regression ISSUE 8 asks for: recursive data must reach the
    projection screen and actually skip cold subtrees (E12 always
    reported this counter as zero), without changing a single row."""
    gen = regime("deep-recursion")
    query = gen.query_for(0)
    per_query, pq_log = gen.evaluate(query, strategy=Strategy.LAZY_NFQ)
    shared, sh_log = gen.evaluate(
        query, strategy=Strategy.LAZY_NFQ, shared_matching=True
    )
    assert shared.value_rows() == per_query.value_rows()
    assert sh_log == pq_log
    assert shared.metrics.group_passes > 0
    assert shared.metrics.projection_skipped_subtrees > 0


# ---------------------------------------------------------------------------
# Fallback path: multi-child-root answer maintenance (AnswerCache)
# ---------------------------------------------------------------------------


def test_multi_child_root_maintenance_takes_the_fallback():
    """A standing query with a multi-child root defeats AnswerCache
    scoping: every relevant splice dirties the whole cache and forces a
    full re-match — which must stay invisible next to the naive oracle
    and the unmaintained twin."""
    gen = regime("multi-root-standing")
    query = gen.query_for(0)

    def standing(maintain):
        bus = gen.make_bus()
        config = gen.engine_config(
            strategy=Strategy.LAZY_NFQ, maintain_answers=maintain
        )
        engine = LazyQueryEvaluator(bus, config=config)
        return ContinuousQuery(engine, query, gen.make_document(0)), bus

    kept, kept_bus = standing(True)
    full, full_bus = standing(False)
    cache = kept.answer_cache
    assert cache is not None
    assert cache._scoped is False, "multi-child root must defeat scoping"

    for step in gen.mutation_trace():
        gen.apply_mutation(step, (kept.document, full.document))
        assert kept.refresh().value_rows() == full.refresh().value_rows()
        assert [
            (r.service_name, r.call_node_id) for r in kept_bus.log.records
        ] == [(r.service_name, r.call_node_id) for r in full_bus.log.records]

    counters = cache.counters()
    assert counters["full_matches"] > 0, "the fallback never fired"
    # The final maintained rows equal the from-scratch naive answer.
    assert set(kept.refresh().value_rows()) == gen.oracle_rows(query)
    kept.close()
    full.close()


# ---------------------------------------------------------------------------
# Fallback paths: BINDINGS overlays (engine + continuous queries)
# ---------------------------------------------------------------------------


def test_bindings_regime_records_overlay_rows_and_matches_naive():
    """BINDINGS pushing must engage (overlay rows recorded, on at least
    one query of the regime's set) while returning exactly the naive
    oracle's rows — including rows whose replies land at call positions
    *deep* in the document, visible only to descendant steps."""
    gen = regime("bindings-push")
    assert gen.engine_config().push_mode is PushMode.BINDINGS
    total_overlay_rows = 0
    for i in range(gen.spec.n_queries):
        query = gen.query_for(i)
        out, _ = gen.evaluate(query, strategy=Strategy.LAZY_NFQ)
        assert out.overlay is not None
        total_overlay_rows += out.overlay.row_count
        assert set(out.value_rows()) == gen.oracle_rows(query), i
    assert total_overlay_rows > 0, "pushing never engaged"


def test_bindings_overlay_disables_shared_matching_and_maintenance():
    """Under a BINDINGS overlay the engine must take its fallback
    paths: no group passes even with shared_matching on, no AnswerCache
    attached even with maintain_answers on — and both stay correct."""
    gen = regime("bindings-push")
    query = gen.query_for(1)  # a query known to record overlay rows
    reference = gen.oracle_rows(query)

    shared, _ = gen.evaluate(
        query,
        strategy=Strategy.LAZY_NFQ,
        shared_matching=True,
        incremental=True,
    )
    assert set(shared.value_rows()) == reference
    assert shared.metrics.group_passes == 0, "overlay must force per-query"
    assert shared.metrics.relevance_cache_hits == 0

    bus = gen.make_bus()
    config = gen.engine_config(
        strategy=Strategy.LAZY_NFQ, maintain_answers=True
    )
    engine = LazyQueryEvaluator(bus, config=config)
    loop = ContinuousQuery(engine, query, gen.make_document(0))
    assert loop.answer_cache is None, "overlay must disable maintenance"
    assert set(loop.refresh().value_rows()) == reference
    loop.close()


def test_overlay_rows_at_deep_positions_reach_descendant_steps():
    """Regression for the overlay-visibility bug the bindings regime
    flushed out: a reply recorded at a call position deep in the
    document stands for embeddings a *descendant* step from any
    ancestor would have found in the spliced forest.  Matching with the
    overlay must agree with naive materialisation even when the pushed
    call sits levels below the node the descendant step is consulted
    at."""
    spec = WorkloadSpec(
        name="deep-overlay",
        seed=10,
        push_bindings=True,
        variable_probability=1.0,
        call_probability=0.5,
        root_subtrees=(2, 4),
    )
    gen = GeneratedWorkload(spec)
    checked = 0
    for doc_index in range(3):
        for qi in range(3):
            query = gen.query_for(qi)
            out, _ = gen.evaluate(
                query, doc_index, strategy=Strategy.LAZY_NFQ
            )
            naive = gen.oracle_rows(query, doc_index)
            assert set(out.value_rows()) == naive, (doc_index, qi)
            checked += 1
    assert checked == 9


# ---------------------------------------------------------------------------
# Interop
# ---------------------------------------------------------------------------


def test_as_workload_view_evaluates():
    gen = regime("baseline")
    workload = gen.as_workload()
    bus = workload.make_bus()
    engine = LazyQueryEvaluator(
        bus, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    outcome = engine.evaluate(workload.query, workload.make_document())
    assert set(outcome.value_rows()) == gen.oracle_rows(workload.query)


def test_fault_regimes_wrap_the_registry():
    transient = regime("flaky-retry").registry()
    names = sorted(transient.names())
    assert names == [f"svc{k}" for k in range(REGIMES["flaky-retry"].n_services)]
    # Fresh registries carry fresh fault state: two evaluations of the
    # same faulty regime must not contaminate each other.
    gen = regime("flaky-retry")
    first = gen.oracle_rows()
    second = gen.oracle_rows()
    assert first == second
