"""Call-result memoization: keys, TTL, invalidation, engine wiring.

The cache treats a service as a function of its request — service
name, argument forest, and the pushed-subquery shape.  Everything here
guards the two ways that assumption can go wrong in practice: stale
replies after the world changes (TTL + invalidation) and shared trees
between the cache and live documents (clone-in/clone-out).
"""

from __future__ import annotations

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.axml.node import call as call_node
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.continuous import ContinuousQuery
from repro.lazy.engine import LazyQueryEvaluator
from repro.obs.trace import EVENT_CACHE_HIT, InMemorySink, tracer_for
from repro.pattern.parse import parse_pattern
from repro.services.catalog import SequenceService, StaticService
from repro.services.registry import ServiceBus, ServiceCall, ServiceRegistry
from repro.services.scheduler import CallCache, SchedulerPolicy, cache_key
from repro.workloads.chains import build_chain_workload

# ------------------------------------------------------------------- the key


def test_cache_key_depends_on_service_and_arguments():
    a = ServiceCall(service="s", parameters=[V("x")])
    same = ServiceCall(service="s", parameters=[V("x")], call_node_id=99)
    other_arg = ServiceCall(service="s", parameters=[V("y")])
    other_svc = ServiceCall(service="t", parameters=[V("x")])
    assert cache_key(a) == cache_key(same)  # node identity is irrelevant
    assert cache_key(a) != cache_key(other_arg)
    assert cache_key(a) != cache_key(other_svc)


def test_cache_key_sees_tree_arguments_and_pushed_queries():
    tree = ServiceCall(service="s", parameters=[E("arg", V("x"))])
    value = ServiceCall(service="s", parameters=[V("x")])
    assert cache_key(tree) != cache_key(value)
    pushed = parse_pattern("/a/$B", name="sub")
    with_push = ServiceCall(service="s", parameters=[V("x")], pushed=pushed)
    assert cache_key(with_push) != cache_key(value)


# --------------------------------------------------------- the cache proper


def reply_of(bus, service="s"):
    return bus.invoke(ServiceCall(service=service)).reply


def static_bus(**kwargs):
    return ServiceBus(
        ServiceRegistry([StaticService("s", [E("item", V("1"))])]), **kwargs
    )


def test_ttl_expires_on_the_simulated_clock():
    cache = CallCache(ttl_s=10.0)
    reply = reply_of(static_bus())
    cache.store("k", reply, now_s=0.0)
    assert cache.lookup("k", now_s=5.0) is not None
    assert cache.lookup("k", now_s=10.5) is None  # expired
    assert cache.lookup("k", now_s=5.0) is None  # expiry evicted it
    assert cache.hits == 1 and cache.misses == 2


def test_invalidate_all_and_per_service():
    cache = CallCache()
    reply = reply_of(static_bus())
    cache.store("alpha|d1", reply, 0.0)
    cache.store("alpha|d2", reply, 0.0)
    cache.store("beta|d1", reply, 0.0)
    assert cache.invalidate("alpha") == 2
    assert cache.lookup("beta|d1", 0.0) is not None
    assert cache.invalidate() == 1
    assert len(cache) == 0


def test_bounded_cache_evicts_the_stalest_entry():
    cache = CallCache(max_entries=2)
    reply = reply_of(static_bus())
    cache.store("a", reply, 0.0)
    cache.store("b", reply, 1.0)
    cache.store("c", reply, 2.0)  # evicts "a"
    assert len(cache) == 2
    assert cache.lookup("a", 3.0) is None
    assert cache.lookup("b", 3.0) is not None


def test_hits_are_clones_not_shared_trees():
    cache = CallCache()
    reply = reply_of(static_bus())
    cache.store("k", reply, 0.0)
    first = cache.lookup("k", 0.0)
    # Mutating a hit (as document splicing does) must not leak back.
    first.forest[0].children.clear()
    second = cache.lookup("k", 0.0)
    assert second.forest[0].children, "cache entry was corrupted by a hit"
    assert second.forest is not reply.forest


# ------------------------------------------------------------- bus wiring


def test_bus_cache_hit_is_free_and_traced():
    bus = static_bus(cache=CallCache())
    sink = InMemorySink()
    tracer = tracer_for(sink, sim_clock=lambda: bus.clock_s)
    call = ServiceCall(service="s")
    miss = bus.invoke(call)
    clock_after_miss = bus.clock_s
    with tracer.span("caller"):
        hit = bus.invoke(call, trace=tracer)
    assert miss.succeeded and hit.succeeded
    assert hit.cache_hit and not miss.cache_hit
    assert bus.clock_s == clock_after_miss  # a hit costs no simulated time
    assert bus.log.call_count == 1  # and no invocation-log entry
    assert [n.label for n in hit.reply.forest] == ["item"]
    (root,) = sink.roots
    assert root.event_names() == [EVENT_CACHE_HIT]


def test_nondeterministic_service_is_pinned_by_the_cache():
    # The paper notes two calls to the same service may differ (a stock
    # ticker); memoization deliberately pins the first answer until
    # TTL/invalidation — that is the documented trade-off.
    seq = SequenceService("tick", [[V("1")], [V("2")]])
    bus = ServiceBus(ServiceRegistry([seq]), cache=CallCache())
    first = bus.invoke(ServiceCall(service="tick"))
    second = bus.invoke(ServiceCall(service="tick"))
    assert first.reply.forest[0].label == "1"
    assert second.reply.forest[0].label == "1"  # pinned, not "2"
    assert bus.invalidate_cache("tick") == 1
    third = bus.invoke(ServiceCall(service="tick"))
    assert third.reply.forest[0].label == "2"


def test_batch_coalesces_duplicates_into_one_execution():
    bus = static_bus(cache=CallCache())
    calls = [ServiceCall(service="s") for _ in range(4)]
    result = bus.invoke_batch(
        calls, scheduler=SchedulerPolicy(max_concurrency=4)
    )
    assert all(o.succeeded for o in result.outcomes)
    assert bus.log.call_count == 1  # one live execution
    assert result.cache_hits == 3  # three coalesced duplicates
    assert bus.cache.stores == 1


# ---------------------------------------------------------- engine wiring


def test_engine_config_attaches_cache_and_counts_hits():
    workload = build_chain_workload(depth=3, width=6, distinct_keys=2)
    bus = ServiceBus(workload.registry)
    config = EngineConfig(
        strategy=Strategy.LAZY_NFQ, call_cache=True, call_cache_ttl_s=60.0
    )
    engine = LazyQueryEvaluator(bus, schema=workload.schema, config=config)
    outcome = engine.evaluate(workload.query, workload.make_document())
    assert bus.cache is not None and bus.cache.ttl_s == 60.0
    # 6 branches over 2 distinct keys: ~2/3 of the work is memoized.
    assert outcome.metrics.cache_hits > 0
    assert bus.cache.hits == outcome.metrics.cache_hits


def test_continuous_query_invalidates_cache_on_stale_refresh():
    seq = SequenceService("feed", [[E("v", V("old"))], [E("v", V("new"))]])
    bus = ServiceBus(ServiceRegistry([seq]), cache=CallCache())
    document = build_document(
        E("root", C("feed")), name="feed-doc"
    )
    engine = LazyQueryEvaluator(
        bus, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    query = parse_pattern("/root/v/$X", name="feed-query")
    standing = ContinuousQuery(engine, query, document)
    assert standing.value_rows() == {("old",)}
    # Mutate the document out from under the standing query: the next
    # refresh must drop memoized replies before re-evaluating.
    document.insert_subtree(document.root, call_node("feed"))
    before = bus.cache.invalidations
    standing.refresh()
    assert bus.cache.invalidations > before
    assert standing.value_rows() == {("old",), ("new",)}
