"""Tests for call-activation modes (Section 1's AXML system features)."""

from repro.axml.builder import C, E, V, build_document
from repro.axml.node import Activation, call
from repro.axml.xmlio import parse, serialize
from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.pattern.parse import parse_pattern
from repro.services.catalog import StaticService
from repro.services.registry import ServiceBus, ServiceRegistry


def make_engine(strategy=Strategy.LAZY_NFQ, **services):
    registry = ServiceRegistry(
        [StaticService(name, forest) for name, forest in services.items()]
    )
    bus = ServiceBus(registry)
    return LazyQueryEvaluator(bus, config=EngineConfig(strategy=strategy)), bus


def test_default_activation_is_lazy():
    assert call("f").activation is Activation.LAZY
    assert C("f").activation is Activation.LAZY


def test_activation_survives_clone_and_xml_roundtrip():
    node = E("r", C("f", activation=Activation.FROZEN),
             C("g", activation=Activation.IMMEDIATE), C("h"))
    assert node.clone().children[0].activation is Activation.FROZEN
    xml = serialize(node)
    assert 'mode="frozen"' in xml
    assert 'mode="immediate"' in xml
    assert xml.count("mode=") == 2  # lazy stays implicit
    again = parse(xml)
    assert [c.activation for c in again.children] == [
        Activation.FROZEN,
        Activation.IMMEDIATE,
        Activation.LAZY,
    ]


def test_frozen_calls_are_never_invoked_lazily():
    doc = build_document(
        E("r", E("x", C("f", activation=Activation.FROZEN)))
    )
    engine, bus = make_engine(f=[V("1")])
    out = engine.evaluate(parse_pattern("/r/x/$V"), doc)
    assert bus.log.call_count == 0
    assert out.value_rows() == set()
    assert out.metrics.completed
    assert len(doc.function_nodes()) == 1  # still intensional


def test_frozen_calls_are_skipped_by_naive_too():
    doc = build_document(
        E("r", C("f", activation=Activation.FROZEN), C("g"))
    )
    engine, bus = make_engine(
        strategy=Strategy.NAIVE, f=[V("1")], g=[E("x", V("2"))]
    )
    out = engine.evaluate(parse_pattern("/r/x/$V"), doc)
    assert bus.log.calls_by_service() == {"g": 1}
    assert out.metrics.completed
    assert out.value_rows() == {("2",)}


def test_immediate_calls_fire_before_the_analysis():
    # The immediate call sits on a path the query never touches.
    doc = build_document(
        E(
            "r",
            E("queried", E("x", V("1"))),
            E("other", C("eager", activation=Activation.IMMEDIATE)),
            E("also", C("lazy_one")),
        )
    )
    engine, bus = make_engine(eager=[V("now")], lazy_one=[V("later")])
    out = engine.evaluate(parse_pattern("/r/queried/x/$V"), doc)
    # Eager fired despite being irrelevant; the lazy one did not.
    assert bus.log.calls_by_service() == {"eager": 1}
    assert out.value_rows() == {("1",)}


def test_immediate_results_cascade():
    doc = build_document(
        E("r", C("outer", activation=Activation.IMMEDIATE))
    )
    registry = ServiceRegistry(
        [
            StaticService(
                "outer",
                [E("wrap", C("inner", activation=Activation.IMMEDIATE))],
            ),
            StaticService("inner", [V("deep")]),
        ]
    )
    engine = LazyQueryEvaluator(
        ServiceBus(registry), config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    out = engine.evaluate(parse_pattern("/r/wrap/$V"), doc)
    assert out.value_rows() == {("deep",)}


def _frozen_condition_world():
    doc = build_document(
        E(
            "r",
            E("a", C("maybe", activation=Activation.FROZEN)),
            E("b", C("fetch")),
        )
    )
    registry = ServiceRegistry(
        [
            StaticService("maybe", [V("1")]),
            StaticService("fetch", [E("x", V("2"))]),
        ]
    )
    return doc, ServiceBus(registry), parse_pattern('/r[a="1"]/b/x/$V')


def test_layered_engine_proves_frozen_conditions_hopeless():
    """With layers, the a-position layer finishes without firing the
    frozen call, its () alternative is dropped, and the engine proves
    that a="1" can never hold — so fetch is never invoked at all."""
    doc, bus, query = _frozen_condition_world()
    engine = LazyQueryEvaluator(
        bus, config=EngineConfig(strategy=Strategy.LAZY_NFQ)
    )
    out = engine.evaluate(query, doc)
    assert bus.log.call_count == 0
    assert out.value_rows() == set()


def test_plain_nfqa_stays_optimistic_about_frozen_conditions():
    """Without the layer simplification the () branch keeps matching the
    frozen call, so the sibling call fires (safely, for nothing)."""
    doc, bus, query = _frozen_condition_world()
    engine = LazyQueryEvaluator(
        bus,
        config=EngineConfig(strategy=Strategy.LAZY_NFQ, use_layers=False),
    )
    out = engine.evaluate(query, doc)
    assert bus.log.calls_by_service() == {"fetch": 1}
    assert out.value_rows() == set()
