"""Semantic tests for Definitions 2-4: rewriting, relevance, completeness.

These check the *definitions* rather than the algorithms: NFQ-retrieved
calls really can contribute transitively-produced data to the query
result, and non-retrieved calls really cannot.
"""

from repro.axml.builder import C, E, V, build_document
from repro.lazy.relevance import build_nfqs
from repro.pattern.match import Matcher, snapshot_result
from repro.pattern.parse import parse_pattern
from repro.services.registry import ServiceBus, ServiceCall
from repro.workloads.hotels import (
    figure_1_document,
    figure_1_registry,
    paper_query,
)


def nfq_retrieved(query, doc):
    out = {}
    for rq in build_nfqs(query):
        for node in Matcher(rq.pattern).evaluate(doc).distinct_nodes():
            out[node.node_id] = node
    return out


def test_retrieved_call_contributes_transitively_produced_data():
    """Invoke a retrieved call with a witness result and check nodes it
    (transitively) produced contribute to the snapshot result."""
    doc = figure_1_document()
    query = paper_query()
    bus = ServiceBus(figure_1_registry())
    retrieved = nfq_retrieved(query, doc)
    resto_call = next(
        n for n in retrieved.values() if n.label == "getNearbyRestos"
    )
    call_id = resto_call.node_id
    reply = bus.invoke(
        ServiceCall(service=resto_call.label, parameters=resto_call.children)
    ).reply
    doc.replace_call(resto_call, reply.forest)
    rows = snapshot_result(query, doc)
    assert rows  # "Jo Mama" qualifies
    contributing = {id(n) for row in rows for n in row.nodes}
    produced = {
        id(n)
        for n in doc.iter_nodes()
        if doc.transitively_produced_by(n, call_id)
    }
    assert contributing & produced


def test_unretrieved_calls_cannot_contribute():
    """Calls under hotels with failed extensional conditions are not
    retrieved; whatever they return can never produce new rows."""
    doc = figure_1_document()
    query = paper_query()
    retrieved = set(nfq_retrieved(query, doc))
    unretrieved = [
        n for n in doc.function_nodes() if n.node_id not in retrieved
    ]
    assert unretrieved
    # Hand every unretrieved call an adversarially helpful result: a
    # five-star restaurant.  The snapshot result must stay empty
    # (conditions above those positions are extensionally violated).
    for call in unretrieved:
        doc.replace_call(
            call,
            [
                E(
                    "restaurant",
                    E("name", V("Trap")),
                    E("address", V("Nowhere")),
                    E("rating", V("5")),
                )
            ],
        )
    assert not snapshot_result(query, doc).value_rows()


def test_relevance_is_optimistic():
    """A call is relevant if SOME output could help, even if the actual
    service never returns helpful data (Definition 3's optimism)."""
    doc = build_document(
        E(
            "hotels",
            E(
                "hotel",
                E("name", V("Best Western")),
                E("address", V("a")),
                E("rating", C("getRating", V("a"))),
                E("nearby", E("restaurant",
                              E("name", V("n")), E("address", V("ad")),
                              E("rating", V("5")))),
            ),
        )
    )
    retrieved = nfq_retrieved(paper_query(), doc)
    assert {n.label for n in retrieved.values()} == {"getRating"}


def test_relevance_lost_after_contradicting_result():
    """Section 4's motivating case: once getRating returns a low rating,
    the sibling getNearbyRestos stops being relevant."""
    doc = build_document(
        E(
            "hotels",
            E(
                "hotel",
                E("name", V("Best Western")),
                E("address", V("a")),
                E("rating", C("getRating", V("a"))),
                E("nearby", C("getNearbyRestos", V("a"))),
            ),
        )
    )
    query = paper_query()
    before = {n.label for n in nfq_retrieved(query, doc).values()}
    assert before == {"getRating", "getNearbyRestos"}
    rating_call = [n for n in doc.function_nodes() if n.label == "getRating"][0]
    doc.replace_call(rating_call, [V("2")])
    after = {n.label for n in nfq_retrieved(query, doc).values()}
    assert after == set()


def test_relevance_gained_by_new_calls():
    """Invocations may bring new relevant calls (Section 4.1, item 1)."""
    doc = figure_1_document()
    query = paper_query()
    bus = ServiceBus(figure_1_registry())
    resto_call = next(
        n
        for n in nfq_retrieved(query, doc).values()
        if n.label == "getNearbyRestos"
    )
    reply = bus.invoke(
        ServiceCall(service=resto_call.label, parameters=resto_call.children)
    ).reply
    doc.replace_call(resto_call, reply.forest)
    after = {n.label for n in nfq_retrieved(query, doc).values()}
    # Figure 3: the In Delis restaurant arrives with a nested getRating.
    assert "getRating" in after
