"""Property tests for F-guides: the Section 6.2 equivalence and
incremental-maintenance correctness under random invocation sequences."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lazy.fguide import FGuide
from repro.lazy.relevance import linear_path_queries
from repro.pattern.match import Matcher
from repro.services.registry import ServiceCall
from repro.workloads.synthetic import SyntheticWorld


def guide_snapshot(guide):
    return sorted(
        (path, tuple(sorted(bucket)))
        for call_id, path in guide._position_of.items()
        for bucket in [[call_id]]
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    world_seed=st.integers(0, 10_000),
    doc_seed=st.integers(0, 30),
)
def test_lpq_on_guide_equals_lpq_on_document(world_seed, doc_seed):
    world = SyntheticWorld(seed=world_seed)
    document = world.make_document(doc_seed)
    query = world.sample_query(document, doc_seed)
    guide = FGuide(document)
    try:
        for rq in linear_path_queries(query, dedupe=False):
            on_doc = {
                n.node_id
                for n in Matcher(rq.pattern).evaluate(document).distinct_nodes()
            }
            on_guide = {
                n.node_id
                for n in guide.candidates(
                    rq.linear_steps, descendant_tail=rq.descendant_tail
                )
            }
            assert on_doc == on_guide, rq.pattern.to_string()
    finally:
        guide.detach()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    world_seed=st.integers(0, 10_000),
    doc_seed=st.integers(0, 30),
    picks=st.lists(st.integers(0, 100), min_size=1, max_size=8),
)
def test_incremental_maintenance_equals_rebuild(world_seed, doc_seed, picks):
    world = SyntheticWorld(seed=world_seed)
    document = world.make_document(doc_seed)
    bus = world.bus()
    guide = FGuide(document)
    try:
        for pick in picks:
            calls = document.function_nodes()
            if not calls:
                break
            target = calls[pick % len(calls)]
            reply = bus.invoke(
                ServiceCall(service=target.label, parameters=target.children)
            ).reply
            document.replace_call(target, reply.forest)
            incremental = set(guide.paths()), guide.call_count()
            guide.rebuild()
            rebuilt = set(guide.paths()), guide.call_count()
            assert incremental == rebuilt
    finally:
        guide.detach()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(world_seed=st.integers(0, 10_000), doc_seed=st.integers(0, 30))
def test_guide_never_larger_than_document(world_seed, doc_seed):
    world = SyntheticWorld(seed=world_seed)
    document = world.make_document(doc_seed)
    guide = FGuide(document)
    try:
        assert guide.size() <= document.stats().total_nodes
        assert guide.call_count() == document.stats().function_nodes
    finally:
        guide.detach()
