"""Property: every strategy computes the same full result.

The central correctness invariant of the whole system — lazy evaluation
with any combination of refinements must agree with naive
materialisation on arbitrary (seeded random) worlds, documents and
queries.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lazy.config import EngineConfig, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.services.service import PushMode
from repro.workloads.synthetic import SyntheticWorld

LAZY_VARIANTS = [
    dict(strategy=Strategy.LAZY_LPQ),
    dict(strategy=Strategy.LAZY_NFQ),
    dict(strategy=Strategy.LAZY_NFQ, use_layers=False),
    dict(strategy=Strategy.LAZY_NFQ, use_fguide=True),
    dict(strategy=Strategy.LAZY_NFQ, push_mode=PushMode.FILTERED),
    dict(strategy=Strategy.LAZY_NFQ, push_mode=PushMode.BINDINGS),
]


def full_result(world, doc_seed, query, **config_kwargs):
    document = world.make_document(doc_seed)
    bus = world.bus()
    engine = LazyQueryEvaluator(bus, config=EngineConfig(**config_kwargs))
    outcome = engine.evaluate(query, document)
    return outcome


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=50),
)
def test_nfq_agrees_with_naive(world_seed, doc_seed):
    world = SyntheticWorld(seed=world_seed)
    query = world.sample_query(world.make_document(doc_seed), doc_seed)
    naive = full_result(world, doc_seed, query, strategy=Strategy.NAIVE)
    lazy = full_result(world, doc_seed, query, strategy=Strategy.LAZY_NFQ)
    assert lazy.value_rows() == naive.value_rows()
    assert lazy.metrics.calls_invoked <= naive.metrics.calls_invoked


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=20),
    variant=st.sampled_from(range(len(LAZY_VARIANTS))),
)
def test_all_lazy_variants_agree_with_naive(world_seed, doc_seed, variant):
    world = SyntheticWorld(seed=world_seed)
    query = world.sample_query(world.make_document(doc_seed), doc_seed)
    naive = full_result(world, doc_seed, query, strategy=Strategy.NAIVE)
    lazy = full_result(world, doc_seed, query, **LAZY_VARIANTS[variant])
    assert lazy.value_rows() == naive.value_rows()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=30),
)
def test_nfq_never_invokes_more_than_lpq(world_seed, doc_seed):
    world = SyntheticWorld(seed=world_seed)
    query = world.sample_query(world.make_document(doc_seed), doc_seed)
    lpq = full_result(world, doc_seed, query, strategy=Strategy.LAZY_LPQ)
    nfq = full_result(world, doc_seed, query, strategy=Strategy.LAZY_NFQ)
    assert nfq.metrics.calls_invoked <= lpq.metrics.calls_invoked


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=30),
)
def test_lazy_leaves_a_complete_document(world_seed, doc_seed):
    """After the rewriting, re-running the NFQs finds nothing
    (Proposition 2: the obtained document is complete for the query)."""
    from repro.lazy.relevance import build_nfqs
    from repro.pattern.match import Matcher

    world = SyntheticWorld(seed=world_seed)
    query = world.sample_query(world.make_document(doc_seed), doc_seed)
    lazy = full_result(world, doc_seed, query, strategy=Strategy.LAZY_NFQ)
    for rq in build_nfqs(query):
        leftovers = Matcher(rq.pattern).evaluate(lazy.document).distinct_nodes()
        assert not leftovers


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    world_seed=st.integers(min_value=0, max_value=10_000),
    doc_seed=st.integers(min_value=0, max_value=20),
)
def test_speculative_and_typed_combos_agree(world_seed, doc_seed):
    """The richer option combinations also preserve the full result."""
    world = SyntheticWorld(seed=world_seed)
    query = world.sample_query(world.make_document(doc_seed), doc_seed)
    naive = full_result(world, doc_seed, query, strategy=Strategy.NAIVE)
    for kwargs in (
        dict(strategy=Strategy.LAZY_NFQ, speculative=True),
        dict(strategy=Strategy.LAZY_NFQ, drop_value_joins=True),
        dict(
            strategy=Strategy.LAZY_NFQ,
            use_fguide=True,
            push_mode=PushMode.BINDINGS,
        ),
    ):
        lazy = full_result(world, doc_seed, query, **kwargs)
        assert lazy.value_rows() == naive.value_rows(), kwargs
