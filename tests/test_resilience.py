"""Resilience layer: retry, backoff, breaker, fault injection, accounting.

Covers the fault-handling subsystem end to end — the policy objects in
``repro.services.resilience``, the bus's resilient invocation loop, the
engine's FREEZE/RETRY fault policies, and the three regression fixes:
schema mutation through ``schema_with_signatures``, fault-only rounds
bypassing ``max_rounds``, and faulted attempts missing from the log.
"""

import pytest

from repro.axml.builder import C, E, V, build_document
from repro.axml.node import Activation
from repro.lazy.config import EngineConfig, FaultPolicy, Strategy
from repro.lazy.engine import LazyQueryEvaluator
from repro.pattern.parse import parse_pattern
from repro.schema.schema import Schema
from repro.services.catalog import (
    FailingService,
    FlakyService,
    ServiceFault,
    SlowService,
    StaticService,
    TimeoutFault,
)
from repro.services.registry import ServiceBus, ServiceCall, ServiceRegistry
from repro.services.resilience import (
    BreakerState,
    CircuitBreaker,
    CircuitBreakerPolicy,
    CircuitOpenFault,
    InvocationPolicy,
    RetryPolicy,
    deterministic_jitter,
)

QUERY = parse_pattern("/r/x/$V")


def failing_registry(failures=2, extra=()):
    services = [
        FailingService(
            "f", StaticService("inner", [E("x", V("1"))]), failures=failures
        )
    ]
    services.extend(extra)
    return ServiceRegistry(services)


def engine_for(registry, **config_kwargs):
    config = EngineConfig(strategy=Strategy.LAZY_NFQ, **config_kwargs)
    return LazyQueryEvaluator(ServiceBus(registry), config=config)


# -- policy objects ----------------------------------------------------------


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(
        max_attempts=5,
        base_backoff_s=1.0,
        backoff_multiplier=2.0,
        max_backoff_s=3.0,
        jitter_fraction=0.0,
    )
    assert policy.backoff_before(1) == 0.0
    assert policy.backoff_before(2) == 1.0
    assert policy.backoff_before(3) == 2.0
    assert policy.backoff_before(4) == 3.0  # capped
    assert policy.backoff_before(5) == 3.0


def test_retry_policy_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(jitter_fraction=0.5, jitter_seed=7)
    first = policy.backoff_before(2, key="svc")
    again = policy.backoff_before(2, key="svc")
    other = policy.backoff_before(2, key="other")
    assert first == again
    assert first != other
    assert policy.base_backoff_s <= first <= policy.base_backoff_s * 1.5
    assert 0.0 <= deterministic_jitter(1, "a", 2) < 1.0


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        CircuitBreakerPolicy(failure_threshold=0)


def test_breaker_state_machine():
    breaker = CircuitBreaker(
        CircuitBreakerPolicy(failure_threshold=2, reset_after_s=10.0)
    )
    assert breaker.allow(0.0)
    assert not breaker.record_failure(0.0)
    assert breaker.record_failure(1.0)  # trips
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow(5.0)
    assert breaker.allow(11.5)  # cool-down elapsed: half-open probe
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.record_failure(12.0)  # probe failed: re-open
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2
    assert breaker.allow(30.0)
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.consecutive_faults == 0


# -- fault-injection services -------------------------------------------------


def test_flaky_service_is_seeded_deterministic():
    def pattern(seed):
        svc = FlakyService(
            StaticService("s", [E("ok")]), fault_rate=0.5, seed=seed
        )
        out = []
        for _ in range(20):
            try:
                svc.produce([])
                out.append(True)
            except ServiceFault:
                out.append(False)
        return out

    assert pattern(42) == pattern(42)
    assert pattern(42) != pattern(43)


def test_flaky_service_rate_one_always_fails_with_chosen_kind():
    svc = FlakyService(
        StaticService("s", [E("ok")]),
        fault_rate=1.0,
        fault_kind="timeout",
    )
    with pytest.raises(TimeoutFault):
        svc.produce([])
    assert svc.injected_faults == 1
    with pytest.raises(ValueError):
        FlakyService(StaticService("s", []), fault_rate=1.5)


def test_slow_service_trips_the_bus_timeout():
    slow = SlowService(StaticService("s", [E("x", V("1"))]), extra_latency_s=2.0)
    bus = ServiceBus(ServiceRegistry([slow]))
    outcome = bus.invoke(
        ServiceCall(service="s"),
        policy=InvocationPolicy(
            retry=RetryPolicy(max_attempts=1, timeout_s=1.0)
        ),
    )
    assert isinstance(outcome.fault, TimeoutFault)
    record = bus.log.records[-1]
    assert record.fault and record.fault_kind == "timeout"
    assert record.simulated_time_s == 1.0  # charged exactly the deadline
    # Without the deadline the same service answers fine.
    outcome = bus.invoke(ServiceCall(service="s"))
    assert outcome.reply.forest and not outcome.record.fault


# -- the bus's resilient loop --------------------------------------------------


def test_bus_logs_faulted_attempts_with_bytes_and_time():
    bus = ServiceBus(failing_registry(failures=1))
    outcome = bus.invoke(
        ServiceCall(service="f", parameters=[V("key")]),
        policy=InvocationPolicy.single_attempt(),
    )
    assert isinstance(outcome.fault, ServiceFault)
    assert bus.log.call_count == 1
    record = bus.log.records[0]
    assert record.fault and record.fault_kind == "fault"
    assert record.request_bytes > 0
    assert record.response_bytes == 0
    assert record.simulated_time_s > 0
    assert bus.log.fault_count == 1 and bus.log.successful_count == 0
    assert bus.log.faults_by_service() == {"f": 1}


def test_invoke_retries_to_success():
    bus = ServiceBus(failing_registry(failures=2))
    outcome = bus.invoke(
        ServiceCall(service="f"),
        policy=InvocationPolicy(
            retry=RetryPolicy(max_attempts=3, base_backoff_s=0.5)
        ),
    )
    assert outcome.succeeded
    assert outcome.attempts == 3
    assert outcome.retries == 2 and outcome.faults == 2
    assert outcome.backoff_s > 0 and outcome.fault_time_s > 0
    assert outcome.simulated_time_s > outcome.record.simulated_time_s
    assert [r.attempt for r in bus.log.records] == [1, 2, 3]
    assert [r.fault for r in bus.log.records] == [True, True, False]


def test_invoke_exhaustion_returns_fault_not_raises():
    bus = ServiceBus(failing_registry(failures=5))
    outcome = bus.invoke(
        ServiceCall(service="f"),
        policy=InvocationPolicy(retry=RetryPolicy(max_attempts=2)),
    )
    assert not outcome.succeeded
    assert isinstance(outcome.fault, ServiceFault)
    assert outcome.attempts == 2 and outcome.faults == 2


def test_invoke_breaker_opens_and_short_circuits():
    flaky = FlakyService(StaticService("s", [E("ok")]), fault_rate=1.0)
    bus = ServiceBus(ServiceRegistry([flaky]))
    policy = CircuitBreakerPolicy(failure_threshold=3, reset_after_s=None)
    outcome = bus.invoke(
        ServiceCall(service="s"),
        policy=InvocationPolicy(
            retry=RetryPolicy(max_attempts=10, base_backoff_s=0.01),
            breaker=policy,
        ),
    )
    assert not outcome.succeeded
    assert outcome.breaker_trips == 1
    assert outcome.short_circuited
    assert outcome.attempts == 3  # stopped at the threshold, not at 10
    assert bus.log.call_count == 3
    # Subsequent invocations are answered by the breaker alone.
    again = bus.invoke(
        ServiceCall(service="s"), policy=InvocationPolicy(breaker=policy)
    )
    assert again.short_circuited and again.attempts == 0
    assert isinstance(again.fault, CircuitOpenFault)
    assert bus.log.call_count == 3


def test_breaker_half_open_probe_recovers_service():
    svc = FailingService("s", StaticService("inner", [E("ok")]), failures=2)
    bus = ServiceBus(ServiceRegistry([svc]))
    policy = CircuitBreakerPolicy(failure_threshold=2, reset_after_s=0.0)
    first = bus.invoke(
        ServiceCall(service="s"),
        policy=InvocationPolicy(
            retry=RetryPolicy(max_attempts=2, base_backoff_s=0.01),
            breaker=policy,
        ),
    )
    assert not first.succeeded and first.breaker_trips == 1
    # reset_after 0 simulated seconds: next call is the half-open probe,
    # the delegate has recovered, and the breaker closes again.
    second = bus.invoke(
        ServiceCall(service="s"), policy=InvocationPolicy(breaker=policy)
    )
    assert second.succeeded
    assert bus.breakers["s"].state is BreakerState.CLOSED


def test_deprecated_invoke_resilient_still_works_but_warns():
    bus = ServiceBus(failing_registry(failures=2))
    with pytest.warns(DeprecationWarning, match="invoke_resilient"):
        outcome = bus.invoke_resilient(
            "f", [], retry=RetryPolicy(max_attempts=3, base_backoff_s=0.5)
        )
    assert outcome.succeeded
    assert outcome.attempts == 3
    assert outcome.retries == 2 and outcome.faults == 2


def test_deprecated_invoke_resilient_breaker_path_warns():
    flaky = FlakyService(StaticService("s", [E("ok")]), fault_rate=1.0)
    bus = ServiceBus(ServiceRegistry([flaky]))
    policy = CircuitBreakerPolicy(failure_threshold=2, reset_after_s=None)
    with pytest.warns(DeprecationWarning):
        outcome = bus.invoke_resilient(
            "s",
            [],
            retry=RetryPolicy(max_attempts=5, base_backoff_s=0.01),
            breaker_policy=policy,
        )
    assert not outcome.succeeded
    assert outcome.breaker_trips == 1 and outcome.short_circuited


# -- engine fault policies -----------------------------------------------------


def test_retry_policy_recovers_full_answer():
    registry = failing_registry(
        failures=2, extra=[StaticService("g", [E("x", V("2"))])]
    )
    engine = engine_for(
        registry,
        fault_policy=FaultPolicy.RETRY,
        retry=RetryPolicy(max_attempts=3),
    )
    doc = build_document(E("r", C("f"), C("g")))
    out = engine.evaluate(QUERY, doc)
    assert out.value_rows() == {("1",), ("2",)}
    assert out.metrics.retries == 2
    assert out.metrics.faults == 2
    assert out.metrics.backoff_s > 0
    records = [r for r in engine.bus.log.records if r.service_name == "f"]
    assert len(records) == 3
    assert [r.fault for r in records] == [True, True, False]


def test_freeze_policy_preserves_the_document():
    registry = failing_registry(
        failures=99, extra=[StaticService("g", [E("x", V("2"))])]
    )
    engine = engine_for(registry, fault_policy=FaultPolicy.FREEZE)
    doc = build_document(E("r", C("f"), C("g")))
    out = engine.evaluate(QUERY, doc)
    assert out.value_rows() == {("2",)}
    frozen = [c for c in doc.function_nodes() if c.label == "f"]
    assert len(frozen) == 1
    assert frozen[0].activation is Activation.FROZEN
    assert out.metrics.calls_frozen == 1
    assert out.metrics.calls_skipped == 0
    assert out.metrics.completed


def test_skip_policy_still_deletes_behind_explicit_opt_in():
    registry = failing_registry(
        failures=99, extra=[StaticService("g", [E("x", V("2"))])]
    )
    engine = engine_for(registry, fault_policy=FaultPolicy.SKIP)
    doc = build_document(E("r", C("f"), C("g")))
    out = engine.evaluate(QUERY, doc)
    assert out.value_rows() == {("2",)}
    assert all(c.label != "f" for c in doc.function_nodes())  # lossy!
    assert out.metrics.calls_skipped == 1


def test_retry_exhaustion_freezes_instead_of_deleting():
    registry = failing_registry(failures=99)
    engine = engine_for(
        registry,
        fault_policy=FaultPolicy.RETRY,
        retry=RetryPolicy(max_attempts=2),
    )
    doc = build_document(E("r", C("f")))
    out = engine.evaluate(QUERY, doc)
    assert out.metrics.calls_frozen == 1
    assert [c.label for c in doc.function_nodes()] == ["f"]
    assert out.metrics.faults == 2 and out.metrics.retries == 1


def test_engine_breaker_opens_and_stops_logging():
    flaky = FlakyService(StaticService("h", [E("x", V("3"))]), fault_rate=1.0)
    bus = ServiceBus(ServiceRegistry([flaky]))
    config = EngineConfig(
        strategy=Strategy.LAZY_NFQ,
        fault_policy=FaultPolicy.RETRY,
        retry=RetryPolicy(max_attempts=10, base_backoff_s=0.01),
        breaker=CircuitBreakerPolicy(failure_threshold=4, reset_after_s=None),
    )
    engine = LazyQueryEvaluator(bus, config=config)
    doc = build_document(E("r", C("h"), C("h")))
    out = engine.evaluate(QUERY, doc)
    assert bus.log.call_count == 4  # exactly the threshold, ever
    assert out.metrics.breaker_trips == 1
    assert out.metrics.breaker_short_circuits >= 1
    assert out.metrics.calls_frozen == 2


def test_timeout_deadline_with_retry_policy():
    slow = SlowService(StaticService("s", [E("x", V("9"))]), extra_latency_s=5.0)
    engine = engine_for(
        ServiceRegistry([slow]),
        fault_policy=FaultPolicy.RETRY,
        retry=RetryPolicy(max_attempts=2, timeout_s=0.5),
    )
    doc = build_document(E("r", C("s")))
    out = engine.evaluate(QUERY, doc)
    assert out.metrics.faults == 2
    assert out.metrics.calls_frozen == 1
    assert all(r.fault_kind == "timeout" for r in engine.bus.log.records)
    # Each attempt is charged exactly the missed deadline.
    assert all(r.simulated_time_s == 0.5 for r in engine.bus.log.records)


# -- regression fixes ---------------------------------------------------------


def test_schema_with_signatures_does_not_mutate_base():
    from repro.services.catalog import make_signature

    base = Schema()
    base.declare_element("r", "x*")
    registry = ServiceRegistry(
        [
            StaticService(
                "svc", [E("x")], signature=make_signature("svc", "data", "x*")
            )
        ]
    )
    merged = registry.schema_with_signatures(base=base)
    assert "svc" in merged.functions
    assert base.functions == {}  # the caller's schema is untouched
    assert merged.elements == base.elements


def test_shared_evaluator_schema_stays_clean_across_evaluations():
    from repro.services.catalog import make_signature

    user_schema = Schema()
    registry = ServiceRegistry(
        [
            StaticService(
                "svc",
                [E("x", V("1"))],
                signature=make_signature("svc", "data", "x*"),
            )
        ]
    )
    engine = LazyQueryEvaluator(
        ServiceBus(registry),
        schema=user_schema,
        config=EngineConfig(strategy=Strategy.LAZY_NFQ_TYPED),
    )
    for _ in range(2):
        doc = build_document(E("r", C("svc", V("k"))))
        engine.evaluate(QUERY, doc)
        assert user_schema.functions == {}


def test_fault_only_rounds_respect_the_round_budget():
    flaky = FlakyService(StaticService("h", [E("x", V("3"))]), fault_rate=1.0)
    engine = engine_for(
        ServiceRegistry([flaky]),
        fault_policy=FaultPolicy.FREEZE,
        breaker=None,
        max_rounds=1,
    )
    doc = build_document(E("r", C("h"), C("h"), C("h")))
    out = engine.evaluate(QUERY, doc)
    # The only round was all-faults; it must still count.
    assert out.metrics.invocation_rounds == 1
    assert not out.metrics.completed or out.metrics.calls_frozen == 3


def test_faulted_attempts_are_visible_to_accounting():
    registry = failing_registry(failures=99)
    engine = engine_for(registry, fault_policy=FaultPolicy.FREEZE, breaker=None)
    doc = build_document(E("r", C("f", V("param"))))
    out = engine.evaluate(QUERY, doc)
    bus = engine.bus
    assert out.metrics.calls_invoked == 1
    assert bus.log.call_count == 1  # the fault is in the log now
    assert out.metrics.bytes_sent == bus.log.records[0].request_bytes > 0
    assert out.metrics.failed_attempt_time_s > 0
    assert out.metrics.simulated_sequential_s > 0


def test_faults_count_toward_simulated_round_time():
    registry = failing_registry(failures=1)
    engine = engine_for(
        registry,
        fault_policy=FaultPolicy.RETRY,
        retry=RetryPolicy(max_attempts=2, base_backoff_s=1.0),
    )
    doc = build_document(E("r", C("f")))
    out = engine.evaluate(QUERY, doc)
    # One failed attempt + one backoff + one success, all on the clock.
    assert out.metrics.simulated_sequential_s >= 1.0
    assert out.metrics.backoff_s >= 1.0


# -- config surface -----------------------------------------------------------


def test_tolerant_config_defaults_to_freeze():
    assert EngineConfig.tolerant().fault_policy is FaultPolicy.FREEZE
    assert FaultPolicy.default_non_raising() is FaultPolicy.FREEZE
    explicit = EngineConfig.tolerant(fault_policy=FaultPolicy.RETRY)
    assert explicit.fault_policy is FaultPolicy.RETRY


def test_single_attempt_reduction():
    policy = RetryPolicy(max_attempts=7, timeout_s=1.5)
    single = policy.single_attempt()
    assert single.max_attempts == 1
    assert single.timeout_s == 1.5
    assert RetryPolicy(max_attempts=1).single_attempt().max_attempts == 1
