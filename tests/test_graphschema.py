"""Unit tests for the lenient (graph-schema) oracle (Section 6.1)."""

import pytest

from repro.pattern.nodes import EdgeKind
from repro.pattern.parse import parse_pattern
from repro.schema.graphschema import GraphSchema, LenientSatisfiability
from repro.schema.regex import DATA
from repro.schema.satisfiability import ExactSatisfiability
from repro.schema.schema import parse_schema
from repro.workloads.hotels import HOTELS_SCHEMA_TEXT


@pytest.fixture
def schema():
    return parse_schema(HOTELS_SCHEMA_TEXT)


@pytest.fixture
def lenient(schema):
    return LenientSatisfiability(schema)


def test_graph_edges_follow_derived_children(schema):
    graph = GraphSchema(schema)
    assert graph.edge_exists("hotel", "name")
    assert graph.edge_exists("nearby", "restaurant")  # via getNearbyRestos
    assert not graph.edge_exists("museum", "rating")
    letters, top = graph.successors("rating")
    assert letters == {DATA} and not top


def test_reachability_closure(schema):
    graph = GraphSchema(schema)
    below, top = graph.reachable_below("hotels")
    assert {"hotel", "restaurant", "museum", DATA} <= below
    assert not top


def test_agrees_with_exact_on_simple_cases(schema, lenient):
    exact = ExactSatisfiability(schema)
    cases = [
        ("getNearbyRestos", '/restaurant[rating="5"]', EdgeKind.CHILD),
        ("getNearbyMuseums", '/restaurant[rating="5"]', EdgeKind.CHILD),
        ("getHotels", "/restaurant", EdgeKind.DESCENDANT),
        ("getHotels", "/restaurant", EdgeKind.CHILD),
        ("getRating", "/hotel", EdgeKind.CHILD),
    ]
    for fname, qtext, edge in cases:
        q = parse_pattern(qtext)
        assert lenient.function_satisfies(fname, q, edge) == (
            exact.function_satisfies(fname, q, edge)
        ), (fname, qtext)


def test_lenient_overapproximates_exclusive_alternation():
    schema = parse_schema(
        """
        functions:
          f = [in: data, out: root]
        elements:
          root = (a | b)
          a = data
          b = data
        """
    )
    lenient = LenientSatisfiability(schema)
    exact = ExactSatisfiability(schema)
    q = parse_pattern("/root[a][b]")
    assert lenient.function_satisfies("f", q)       # ignores exclusivity
    assert not exact.function_satisfies("f", q)     # the exact one does not


def test_lenient_is_never_stricter_than_exact(schema, lenient):
    """Safety: lenient yes ⊇ exact yes on a grid of subqueries."""
    exact = ExactSatisfiability(schema)
    queries = [
        "/hotel",
        '/hotel[rating="5"]',
        "/restaurant[name=$X]",
        "/museum/name",
        "/nearby//restaurant",
        "/rating",
    ]
    for fname in schema.function_names():
        for qtext in queries:
            for edge in (EdgeKind.CHILD, EdgeKind.DESCENDANT):
                q = parse_pattern(qtext)
                if exact.function_satisfies(fname, q, edge):
                    assert lenient.function_satisfies(fname, q, edge), (
                        fname,
                        qtext,
                        edge,
                    )


def test_any_output_short_circuits(lenient):
    assert lenient.function_satisfies("unknown", parse_pattern("/x[y]/z"))


def test_value_patterns(lenient):
    from repro.pattern.nodes import PatternKind, PatternNode
    from repro.pattern.pattern import TreePattern

    vp = TreePattern(PatternNode(PatternKind.VALUE, "5"))
    assert lenient.function_satisfies("getRating", vp)
    assert not lenient.function_satisfies("getNearbyMuseums", vp)


def test_rejects_extended_patterns(lenient):
    from repro.pattern.nodes import pelem, pfunc, por
    from repro.pattern.pattern import TreePattern

    bad = TreePattern(pelem("hotel", por(pelem("a"), pfunc(None))))
    with pytest.raises(ValueError):
        lenient.function_satisfies("getHotels", bad)
