"""Unit tests for EngineConfig and Metrics."""

import pytest

from repro.lazy.config import EngineConfig, FaultPolicy, Strategy, TypingMode
from repro.lazy.metrics import Metrics
from repro.services.service import PushMode


def test_defaults_are_the_papers_full_system():
    config = EngineConfig()
    assert config.strategy is Strategy.LAZY_NFQ
    assert config.use_layers and config.parallel
    assert not config.use_fguide
    assert config.push_mode is PushMode.NONE
    assert config.typing is TypingMode.NONE
    assert config.fault_policy is FaultPolicy.RAISE


def test_typed_strategy_defaults_to_lenient_oracle():
    config = EngineConfig(strategy=Strategy.LAZY_NFQ_TYPED)
    assert config.typing is TypingMode.LENIENT
    explicit = EngineConfig(
        strategy=Strategy.LAZY_NFQ_TYPED, typing=TypingMode.EXACT
    )
    assert explicit.typing is TypingMode.EXACT


def test_baselines_disable_layering():
    assert EngineConfig(strategy=Strategy.NAIVE).use_layers is False
    top_down = EngineConfig(strategy=Strategy.TOP_DOWN)
    assert top_down.use_layers is False
    assert top_down.parallel is False


@pytest.mark.parametrize(
    "kwargs,expected",
    [
        (dict(strategy=Strategy.LAZY_NFQ), "lazy-nfq"),
        (
            dict(strategy=Strategy.LAZY_NFQ_TYPED),
            "lazy-nfq-typed+lenient",
        ),
        (
            dict(strategy=Strategy.LAZY_NFQ, use_fguide=True),
            "lazy-nfq+fguide",
        ),
        (
            dict(strategy=Strategy.LAZY_NFQ, push_mode=PushMode.BINDINGS),
            "lazy-nfq+push-bindings",
        ),
        (
            dict(strategy=Strategy.LAZY_NFQ, speculative=True),
            "lazy-nfq+spec",
        ),
        (
            dict(strategy=Strategy.LAZY_NFQ, arena=True, column_match=True),
            "lazy-nfq+arena+colmatch",
        ),
    ],
)
def test_labels(kwargs, expected):
    assert EngineConfig(**kwargs).label == expected


def test_fields_are_keyword_only():
    with pytest.raises(TypeError):
        EngineConfig(Strategy.NAIVE)


def test_enum_fields_accept_string_values():
    config = EngineConfig(strategy="naive", fault_policy="retry")
    assert config.strategy is Strategy.NAIVE
    assert config.fault_policy is FaultPolicy.RETRY


@pytest.mark.parametrize(
    "kwargs,field",
    [
        (dict(strategy="eager"), "strategy"),
        (dict(typing="psychic"), "typing"),
        (dict(push_mode="shove"), "push_mode"),
        (dict(fault_policy="panic"), "fault_policy"),
        (dict(max_invocations=0), "max_invocations"),
        (dict(max_rounds=-3), "max_rounds"),
        (dict(max_rounds=True), "max_rounds"),
    ],
)
def test_bad_values_fail_fast_naming_the_field(kwargs, field):
    with pytest.raises(ValueError, match=f"EngineConfig.{field}"):
        EngineConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs,field",
    [
        (dict(parallel="yes"), "parallel"),
        (dict(use_layers=1), "use_layers"),
        (dict(column_match=1), "column_match"),
        (dict(retry=3), "retry"),
        (dict(breaker="open"), "breaker"),
        (dict(trace="stdout"), "trace"),
    ],
)
def test_bad_types_fail_fast_naming_the_field(kwargs, field):
    with pytest.raises(TypeError, match=f"EngineConfig.{field}"):
        EngineConfig(**kwargs)


def test_trace_accepts_sink_and_tracer():
    from repro.obs.trace import InMemorySink, Tracer

    sink = InMemorySink()
    assert EngineConfig(trace=sink).trace is sink
    tracer = Tracer(sink)
    assert EngineConfig(trace=tracer).trace is tracer
    assert EngineConfig(trace=None).trace is None


def test_metrics_derived_quantities():
    metrics = Metrics(
        strategy="x",
        analysis_wall_s=0.5,
        simulated_sequential_s=2.0,
        simulated_parallel_s=0.75,
        bytes_sent=100,
        bytes_received=400,
    )
    assert metrics.total_time_s == 2.5
    assert metrics.total_time_parallel_s == 1.25
    assert metrics.total_bytes == 500


def test_metrics_summary_mentions_key_figures():
    metrics = Metrics(strategy="demo", calls_invoked=7, result_rows=3)
    text = metrics.summary()
    assert "demo" in text and "calls=7" in text and "rows=3" in text
